"""BOUNDANALYSIS: symbolic lower/upper running-time bounds per trail.

Given a procedure CFG and (optionally) a trail DFA, computes a
:class:`~repro.bounds.cost.CostBound` covering the running time (in
bytecode instruction units) of every *accepted, terminating* execution
described by the trail:

1. run the trail-restricted abstract interpreter to get invariants on
   the product graph (CFG × trail DFA) and prune infeasible nodes — this
   is what catches trails like the vulnerable-looking-but-infeasible
   path of ``loopAndBranch_safe``;
2. find the natural loops of the live product graph; for each loop
   (innermost first) compute a seeded transition relation and match it
   against the lemma database for iteration bounds;
3. collapse loops into summary edges (``iterations × per-iteration cost
   + tail``) and propagate min/max costs through the resulting DAG from
   the entry to the *accepting* exit nodes.

Call costs: extern procedures use the registered symbolic summaries
(Section 5's "manually-specified bound summaries"); calls to defined
procedures use bounds supplied by the caller (computed callee-first),
instantiated by substituting argument symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.absint.engine import AnalysisResult, Engine, Node
from repro.absint.transfer import TransferFunctions, len_var, operand_expr
from repro.automata.dfa import DFA
from repro.bounds.cost import CostBound, Poly
from repro.bounds.graphops import (
    GraphLoop,
    IrreducibleGraphError,
    natural_loops,
    topo_order_dag,
)
from repro.bounds.lemmas import (
    IterationBound,
    RankCandidate,
    linexpr_to_poly,
    match_iteration_lemmas,
    seed_name,
    symbolic_form,
)
from repro.bounds.summaries import SummaryRegistry, default_summaries
from repro.cfg.graph import ControlFlowGraph
from repro.domains.base import AbstractState, Domain
from repro.domains.linexpr import LinExpr, RelOp
from repro.ir import instr as ir
from repro.lang import ast
from repro.obs.trace import span as trace_span
from repro.perf import runtime

if False:  # pragma: no cover - import for type checkers only
    from repro.bounds.interproc import ProcBound


def _cfg_meta(cfg: ControlFlowGraph, slot: str, compute):
    """Memoize a pure per-CFG derived value on the CFG object itself.

    Used by :func:`input_symbols` / :func:`nonneg_symbols` /
    :func:`symbol_levels`, which are called once per leaf trail by the
    driver — sharing the result avoids re-walking the parameter list for
    every leaf.  Mutable containers are copied by the public wrappers so
    callers can never corrupt the cached value.
    """
    if not runtime.enabled():
        return compute(cfg)
    memo = runtime.cfg_memo(cfg)
    if slot in memo:
        runtime.STATS.hit("cfg_meta")
        return memo[slot]
    runtime.STATS.miss("cfg_meta")
    memo[slot] = value = compute(cfg)
    return value


def input_symbols(cfg: ControlFlowGraph) -> List[str]:
    """The designated input symbols: int params and array-length params."""
    return list(_cfg_meta(cfg, "input_symbols", _input_symbols))


def _input_symbols(cfg: ControlFlowGraph) -> List[str]:
    out: List[str] = []
    for param in cfg.params:
        if param.declared.is_array:
            out.append(len_var(param.name))
        elif param.declared.is_numeric or param.declared == ast.BOOL:
            out.append(param.name)
    return out


def nonneg_symbols(cfg: ControlFlowGraph) -> FrozenSet[str]:
    """Symbols known non-negative (array lengths, booleans)."""
    return _cfg_meta(cfg, "nonneg_symbols", _nonneg_symbols)


def _nonneg_symbols(cfg: ControlFlowGraph) -> FrozenSet[str]:
    out = set()
    for param in cfg.params:
        if param.declared.is_array:
            out.add(len_var(param.name))
        elif param.declared in (ast.BOOL, ast.UINT):
            out.add(param.name)
    return frozenset(out)


def symbol_levels(cfg: ControlFlowGraph) -> Dict[str, ast.SecLevel]:
    """Security level of each input symbol (for narrowness checking)."""
    return dict(_cfg_meta(cfg, "symbol_levels", _symbol_levels))


def _symbol_levels(cfg: ControlFlowGraph) -> Dict[str, ast.SecLevel]:
    levels: Dict[str, ast.SecLevel] = {}
    for param in cfg.params:
        name = len_var(param.name) if param.declared.is_array else param.name
        levels[name] = param.level
    return levels


def subst_poly(poly: Poly, mapping: Dict[str, Poly]) -> Optional[Poly]:
    """Substitute symbols in ``poly``; None if a symbol has no mapping."""
    out = Poly.constant(0)
    for mono, coeff in poly.terms.items():
        term = Poly.constant(coeff)
        for sym in mono:
            replacement = mapping.get(sym)
            if replacement is None:
                return None
            term = term * replacement
        out = out + term
    return out


@dataclass
class BoundResult:
    """Outcome of one BOUNDANALYSIS run."""

    feasible: bool
    bound: Optional[CostBound]
    main: Optional[AnalysisResult] = None
    loop_bounds: Dict[Node, IterationBound] = field(default_factory=dict)
    # True when this is a ⊤ placeholder substituted by the driver after
    # budget exhaustion, not a computed analysis result.  A degraded
    # bound soundly covers the trail (it claims nothing) but can never
    # certify safety (⊤ is never narrow).
    degraded: bool = False

    def __str__(self) -> str:
        if not self.feasible:
            return "<infeasible trail>"
        if self.degraded:
            return "%s (degraded: budget exhausted)" % self.bound
        return str(self.bound)


class BoundAnalysis:
    def __init__(
        self,
        cfg: ControlFlowGraph,
        domain: Domain,
        summaries: Optional[SummaryRegistry] = None,
        trail_dfa: Optional[DFA] = None,
        proc_bounds: Optional[Dict[str, "ProcBound"]] = None,
        budget=None,
        trail=None,
    ):
        self._cfg = cfg
        self._domain = domain
        self._summaries = summaries if summaries is not None else default_summaries()
        self._dfa = trail_dfa
        self._proc_bounds = proc_bounds or {}
        # Cooperative budget (repro.resilience.budget), shared with the
        # fixpoint engine; None disables every checkpoint.
        self._budget = budget
        # The trail being analyzed (when the caller has one): carries the
        # RefinementDelta that directs the incremental plane, and the
        # lineage fingerprint its artifacts are published under.  None
        # keeps every incremental path inert for this analysis.
        self._trail = trail
        self._delta = getattr(trail, "delta", None) if trail is not None else None
        self._engine = Engine(
            cfg, domain, trail_dfa, summaries=self._summaries, budget=budget
        )
        self._transfer = TransferFunctions(cfg, self._summaries)
        self._symbols = input_symbols(cfg)
        self._nonneg = nonneg_symbols(cfg)
        # Populated during compute():
        self._main: Optional[AnalysisResult] = None
        self._adjacency: Dict[Node, list] = {}
        self._live: Set[Node] = set()
        self._loops: List[GraphLoop] = []
        self._loop_summaries: Dict[Node, Dict[Tuple[Node, Node], CostBound]] = {}
        self._iter_bounds: Dict[Node, IterationBound] = {}
        self._node_costs: Dict[Node, CostBound] = {}
        self._summaries_fp: Optional[str] = None
        # Incremental plane: canonical loop encodings, the content key of
        # every iteration bound computed or served, and the predecessor
        # index that narrows entry-state scans.
        self._canon_cache: Dict[Node, Tuple[Dict[Node, int], tuple]] = {}
        self._iter_keys: Dict[Node, tuple] = {}
        self._preds: Optional[Dict[Node, Set[Node]]] = None

    # -- public entry point ------------------------------------------------------

    def compute(self) -> BoundResult:
        with trace_span(
            "bounds.compute",
            cfg=self._cfg.name,
            restricted=self._dfa is not None,
        ):
            return self._compute()

    def _compute(self) -> BoundResult:
        cfg = self._cfg
        if self._budget is not None:
            self._budget.checkpoint("bounds.compute")
        main = self._engine.analyze()
        self._main = main
        self._adjacency = self._engine.product_graph()
        self._live = {
            node for node, state in main.invariants.items() if not state.is_bottom()
        }
        root = self._engine.initial_node()
        targets = [node for node in self._live if self._is_accepting_exit(node)]
        if root not in self._live or not targets:
            return BoundResult(feasible=False, bound=None, main=main)

        adj_live = {
            u: [e.dst for e in self._adjacency.get(u, []) if e.dst in self._live]
            for u in self._live
        }
        try:
            self._loops = natural_loops(root, adj_live)
        except IrreducibleGraphError:
            # Occurrence splits can make the product graph irreducible
            # (the "taken" DFA state is entered mid-loop, so the q1 copy
            # of the loop header no longer dominates its latch).  Fall
            # back to the unrestricted CFG bound: L(trail) is a subset of
            # L(tr_mg), so the whole-program bound soundly covers the
            # trail — only lower-bound precision is lost.
            if self._dfa is not None:
                projected = self._unrestricted_fallback()
                return BoundResult(
                    feasible=True,
                    bound=projected.bound
                    if projected.bound is not None
                    else CostBound.unbounded(nonneg=self._nonneg),
                    main=main,
                    loop_bounds=dict(projected.loop_bounds),
                )
            return BoundResult(
                feasible=True,
                bound=CostBound.unbounded(nonneg=self._nonneg),
                main=main,
            )

        top_loops = [l for l in self._loops if l.parent is None]
        dist, _ = self._dag_costs(root, self._live, adj_live, top_loops)
        bound: Optional[CostBound] = None
        for target in targets:
            rep = self._rep_of(target, top_loops)
            cost = dist.get(rep)
            if cost is None:
                continue
            bound = cost if bound is None else bound.join(cost)
        self._publish_artifacts()
        if bound is None:
            return BoundResult(feasible=False, bound=None, main=main)
        iter_report = {l.header: self._iter_bounds[l.header] for l in self._loops if l.header in self._iter_bounds}
        return BoundResult(feasible=True, bound=bound, main=main, loop_bounds=iter_report)

    # -- helpers --------------------------------------------------------------------

    def _is_accepting_exit(self, node: Node) -> bool:
        if node[0] != self._cfg.exit_id:
            return False
        if self._dfa is None:
            return True
        return node[1] in self._dfa.accepting

    @staticmethod
    def _rep_of(node: Node, loops: Sequence[GraphLoop]) -> Node:
        for loop in loops:
            if node in loop.body:
                return loop.header
        return node

    # -- per-node cost -----------------------------------------------------------------

    def _node_cost(self, node: Node) -> CostBound:
        cached = self._node_costs.get(node)
        if cached is not None:
            return cached
        block = self._cfg.blocks[node[0]]
        cost = CostBound.of_constant(block.cost, self._nonneg)
        calls = [i for i in block.instrs if isinstance(i, ir.CallInstr)]
        if calls:
            assert self._main is not None
            inv = self._main.invariants.get(node, self._domain.bottom())
            for call in calls:
                cost = cost + self._call_cost(call, inv)
        self._node_costs[node] = cost
        return cost

    def _call_cost(self, call: ir.CallInstr, inv: AbstractState) -> CostBound:
        # Extern with a registered summary.
        summary = self._summaries.lookup(call.callee)
        if summary is not None:
            arg_lens: List[Optional[Poly]] = []
            for arg in call.args:
                arg_lens.append(self._array_length_poly(arg, inv))
            return summary.instantiate(arg_lens)
        # Defined procedure with a precomputed bound: substitute symbols.
        callee_bound = self._proc_bounds.get(call.callee)
        if callee_bound is not None:
            return self._instantiate_proc_bound(call, callee_bound, inv)
        # Unknown callee: no upper bound.
        return CostBound.unbounded(nonneg=self._nonneg)

    def _array_length_poly(self, arg: ir.Operand, inv: AbstractState) -> Optional[Poly]:
        if isinstance(arg, ir.ConstArr):
            return Poly.constant(len(arg.values))
        if isinstance(arg, ir.Reg) and self._cfg.reg_kinds.get(arg.name) == "arr":
            sym = symbolic_form(LinExpr.var(len_var(arg.name)), inv, self._symbols)
            return None if sym is None else linexpr_to_poly(sym)
        return None

    def _instantiate_proc_bound(
        self, call: ir.CallInstr, callee_bound: "ProcBound", inv: AbstractState
    ) -> CostBound:
        from repro.bounds import interproc

        return interproc.instantiate_call_bound(
            self._cfg, call, callee_bound, inv, self._symbols, self._nonneg
        )

    # -- DAG cost propagation --------------------------------------------------------------

    def _dag_costs(
        self,
        entry: Node,
        nodes: Set[Node],
        adj_prop: Dict[Node, List[Node]],
        child_loops: Sequence[GraphLoop],
    ) -> Tuple[Dict[Node, CostBound], Dict[Tuple[Node, Node], CostBound]]:
        """Min/max path costs through a region whose child loops collapse.

        Returns (dist, dist_edge):
        * ``dist[rep]`` — cost from region entry up to *entering* ``rep``
          (a plain node or a collapsed child-loop header);
        * ``dist_edge[(u, v)]`` — cost from region entry through
          *traversing* the product edge ``(u, v)`` (defined for every
          edge with ``u`` in the region, including edges leaving it).
        """
        rep_map: Dict[Node, Node] = {}
        for loop in child_loops:
            for member in loop.body:
                rep_map[member] = loop.header

        def rep_of(n: Node) -> Node:
            return rep_map.get(n, n)

        def local_weight(u: Node, v: Node) -> Optional[CostBound]:
            loop = next((l for l in child_loops if u in l.body), None)
            if loop is None:
                return self._node_cost(u)
            summary = self._loop_summary(loop)
            return summary.get((u, v))

        # Condensed propagation DAG.
        reps = {rep_of(n) for n in nodes}
        csucc: Dict[Node, List[Node]] = {r: [] for r in reps}
        cedges: List[Tuple[Node, Node, Node, Node]] = []  # (ru, rv, u, v)
        for u in sorted(nodes):
            for v in adj_prop.get(u, []):
                ru, rv = rep_of(u), rep_of(v)
                if ru == rv:
                    continue
                csucc[ru].append(rv)
                cedges.append((ru, rv, u, v))
        order = topo_order_dag(sorted(reps), csucc)

        dist: Dict[Node, CostBound] = {rep_of(entry): CostBound.ZERO}
        edges_by_src: Dict[Node, List[Tuple[Node, Node, Node]]] = {}
        for ru, rv, u, v in cedges:
            edges_by_src.setdefault(ru, []).append((rv, u, v))
        for r in order:
            if r not in dist:
                continue
            base = dist[r]
            for rv, u, v in edges_by_src.get(r, []):
                weight = local_weight(u, v)
                if weight is None:
                    continue
                through = base + weight
                old = dist.get(rv)
                dist[rv] = through if old is None else old.join(through)

        # Edge-traversal costs for every out-edge of the region.
        dist_edge: Dict[Tuple[Node, Node], CostBound] = {}
        for u in sorted(nodes):
            ru = rep_of(u)
            if ru not in dist:
                continue
            for e in self._adjacency.get(u, []):
                v = e.dst
                if v in nodes and rep_of(v) == ru:
                    continue  # internal to the same collapsed loop
                weight = local_weight(u, v)
                if weight is None:
                    continue
                dist_edge[(u, v)] = dist[ru] + weight
        return dist, dist_edge

    # -- loop machinery -----------------------------------------------------------------------

    def _loop_summary(self, loop: GraphLoop) -> Dict[Tuple[Node, Node], CostBound]:
        cached = self._loop_summaries.get(loop.header)
        if cached is not None:
            return cached
        inner = [l for l in self._loops if l.parent is loop]
        back = set(loop.back_edges)
        body_adj = {
            u: [
                v
                for v in (e.dst for e in self._adjacency.get(u, []))
                if v in loop.body and v in self._live and (u, v) not in back
            ]
            for u in loop.body
        }
        dist, dist_edge = self._dag_costs(loop.header, loop.body, body_adj, inner)

        periter: Optional[CostBound] = None
        for (latch, header) in loop.back_edges:
            cost = dist_edge.get((latch, header))
            if cost is None:
                continue
            periter = cost if periter is None else periter.join(cost)
        iters = self._iteration_bound(loop)
        self._iter_bounds[loop.header] = iters
        summary: Dict[Tuple[Node, Node], CostBound] = {}
        if periter is None:
            # The body cannot complete an iteration: only the partial
            # "tail" paths to the exits are possible.
            total_loop = CostBound.ZERO
        else:
            total_loop = periter.multiply(
                iters.as_cost(self._nonneg), iterations_nonneg=iters.lower_nonneg
            )
        adj_live_nodes = self._live
        for u in loop.body:
            for e in self._adjacency.get(u, []):
                v = e.dst
                if v in loop.body or v not in adj_live_nodes:
                    continue
                tail = dist_edge.get((u, v))
                if tail is None:
                    continue
                summary[(u, v)] = total_loop + tail
        self._loop_summaries[loop.header] = summary
        return summary

    def _iteration_bound(self, loop: GraphLoop) -> IterationBound:
        cached = self._iter_bounds.get(loop.header)
        if cached is not None:
            return cached
        if self._budget is not None:
            self._budget.checkpoint("bounds.loop")
        with trace_span(
            "bounds.loop", cfg=self._cfg.name, header=str(loop.header)
        ):
            return self._iteration_bound_uncached(loop)

    def _iteration_bound_uncached(self, loop: GraphLoop) -> IterationBound:
        assert self._main is not None
        inv = self._main.invariants
        entry = self._entry_state(loop)

        # Seeded transition relation over the loop body.
        tracked = self._tracked_vars(loop)
        header_inv = inv.get(loop.header, self._domain.bottom())
        seeded = header_inv
        for var in sorted(tracked):
            seeded = seeded.assign(seed_name(var), LinExpr.var(var))

        # Incremental plane: probe the reuse tiers before running the
        # transition fixpoint.  The whole iteration bound is a pure
        # function of the canonical inputs encoded in the key (the
        # candidates are hoisted so the key can cover them); a split
        # child consults its parent's lineage-indexed artifacts first,
        # except for loops the split's constructor touches, which are
        # dirty and recompute unconditionally.
        use_inc = runtime.incremental_enabled() and self._budget is None
        key = None
        candidates: Optional[List[RankCandidate]] = None
        single_exit: Optional[Node] = None
        inner_finite = True
        if use_inc:
            candidates, single_exit = self._rank_candidates(loop)
            inner_finite = self._inner_finite(loop)
            key = self._iteration_bound_key(
                loop, seeded, entry, tracked, candidates, single_exit, inner_finite
            )
        if key is not None:
            from repro.perf import incremental

            delta = self._delta
            blocks = {n[0] for n in loop.body}
            if delta is not None and incremental.delta_touches(delta, blocks):
                runtime.STATS.event("refine.dirty")
            else:
                served = incremental.lookup_iterbound(
                    delta, key, "%s:b%d" % (self._cfg.name, loop.header[0])
                )
                if served is not None:
                    self._iter_bounds[loop.header] = served
                    self._iter_keys[loop.header] = key
                    return served

        transition = self._loop_transition(loop, seeded)
        if transition.is_bottom():
            bound = IterationBound(lower=Poly.ZERO, upper=Poly.ZERO, exact=True)
            self._iter_bounds[loop.header] = bound
            self._record_iterbound(loop, key, bound)
            return bound

        if candidates is None:
            candidates, single_exit = self._rank_candidates(loop)
            inner_finite = self._inner_finite(loop)
        bound = match_iteration_lemmas(
            candidates=candidates,
            transition=transition,
            entry_state=entry,
            seeded_vars=tracked,
            symbols=self._symbols,
            single_exit_branch=single_exit,
            inner_loops_finite=inner_finite,
            header=loop.header,
        )
        self._iter_bounds[loop.header] = bound
        self._record_iterbound(loop, key, bound)
        return bound

    def _record_iterbound(
        self, loop: GraphLoop, key: Optional[tuple], bound: IterationBound
    ) -> None:
        if key is None:
            return
        from repro.perf import incremental

        self._iter_keys[loop.header] = key
        incremental.store_iterbound(key, bound)

    def _entry_state(self, loop: GraphLoop) -> AbstractState:
        """Join over edges entering the header from outside the loop.

        The incremental plane narrows the scan to the header's product
        predecessors before the (expensive) ``edge_out_states`` call;
        iteration stays over ``self._live`` itself, so contributing
        nodes are visited in exactly the seed order and the join
        sequence — hence the result — is unchanged.
        """
        assert self._main is not None
        inv = self._main.invariants
        entry = self._domain.bottom()
        preds = (
            self._header_preds(loop.header)
            if runtime.incremental_enabled()
            else None
        )
        for m in self._live:
            if m in loop.body:
                continue
            if preds is not None and m not in preds:
                continue
            state = inv.get(m)
            if state is None or state.is_bottom():
                continue
            for e, out_state in self._engine.edge_out_states(m, state):
                if e.dst == loop.header and not out_state.is_bottom():
                    entry = entry.join(out_state)
        if loop.header == self._engine.initial_node():
            entry = entry.join(self._transfer.entry_state(self._domain.top()))
        return entry

    def _header_preds(self, header: Node) -> Set[Node]:
        if self._preds is None:
            preds: Dict[Node, Set[Node]] = {}
            for u, edges in self._adjacency.items():
                for e in edges:
                    preds.setdefault(e.dst, set()).add(u)
            self._preds = preds
        return self._preds.get(header, set())

    def _inner_finite(self, loop: GraphLoop) -> bool:
        return all(
            self._iteration_bound(l).upper is not None
            for l in self._loops
            if l.parent is loop
        )

    def _rank_candidates(
        self, loop: GraphLoop
    ) -> Tuple[List[RankCandidate], Optional[Node]]:
        """Rank candidates from exiting branches, plus the single-exit
        branch node when the loop has exactly one exit edge."""
        assert self._main is not None
        inv = self._main.invariants
        candidates: List[RankCandidate] = []
        exit_edges: List[Tuple[Node, Node]] = []
        exit_branches: Set[Node] = set()
        for u in sorted(loop.body):
            for e in self._adjacency.get(u, []):
                if e.dst in loop.body or e.dst not in self._live:
                    continue
                exit_edges.append((u, e.dst))
                exit_branches.add(u)
                stay_edges = [
                    e2
                    for e2 in self._adjacency.get(u, [])
                    if e2.dst in loop.body and e2.dst in self._live
                ]
                if len(stay_edges) != 1 or e.branch_taken is None:
                    continue
                stay = stay_edges[0]
                if stay.branch_taken is None:
                    continue
                node_inv = inv.get(u)
                if node_inv is None or node_inv.is_bottom():
                    continue
                _, conds = self._transfer.block_effect(u[0], node_inv)
                cons = self._transfer.branch_constraint(u[0], stay.branch_taken, conds)
                if cons is not None and cons.op is RelOp.LE:
                    rank = -cons.expr
                    # Express the rank in terms of header-entry values so
                    # that block-local temps (dead across the back edge)
                    # do not defeat the transition-relation query.
                    rewritten = self._transfer.rewrite_to_block_entry(u[0], rank)
                    if rewritten is not None:
                        rank = rewritten
                    candidates.append(RankCandidate(rank=rank, branch_node=u))

        single_exit = None
        if len(set(exit_edges)) >= 1 and len(exit_branches) == 1:
            # All exits leave from one branch block.
            only = next(iter(exit_branches))
            if len([e for e in exit_edges]) == len(
                [e for e in exit_edges if e[0] == only]
            ) and len(set(exit_edges)) == 1:
                single_exit = only
        return candidates, single_exit

    # -- incremental re-analysis ---------------------------------------------------

    def _loop_transition(self, loop: GraphLoop, seeded: AbstractState) -> AbstractState:
        """The loop's seeded transition relation (join of the states
        flowing along its back edges), memoized by *content* so a
        refinement split reuses the parent trail's fixpoints.

        When REFINEPARTITION splits a trail at a branch, every loop the
        split does not touch reappears in each child with an isomorphic
        product subgraph (same blocks, same edge structure, different
        DFA-state numbers) and — whenever the split did not sharpen the
        header invariant — an equal seeded entry state.  The transition
        relation is a pure function of (a) the explored product subgraph
        up to DFA-state renaming, (b) the seeded state's content, and
        (c) the driver-fixed inputs (CFG, domain, summaries): the
        engine's exploration order, RPO, widening points and worklist
        order all derive from the adjacency *structure* (successor lists
        follow CFG edge order), never from the raw DFA state numbers,
        and ``collected_join()`` discards node labels entirely.  Keying
        the memo by a canonical (DFS-numbered) encoding of the subgraph
        therefore returns bit-identical results to a fresh run — this is
        the "delta on the split constructor": only loops the split
        actually changed are re-analyzed.

        Budget-carrying analyses bypass the memo: a hit would skip the
        engine's per-step budget checkpoints and change exhaustion
        behavior, and degraded results must never be reused.
        """
        back = set(loop.back_edges)
        key = None
        if runtime.enabled() and self._budget is None:
            key = self._loop_transition_key(loop, seeded)
            if key is not None:
                table = runtime.memo_table("bounds.transition")
                hit = table.get(key)
                if hit is not None:
                    runtime.STATS.hit("bounds.transition")
                    return hit
                runtime.STATS.miss("bounds.transition")
        result = self._engine.analyze(
            initial={loop.header: seeded},
            restrict=set(loop.body),
            collect=lambda s, d, e: (s, d) in back,
        )
        transition = result.collected_join()
        if key is not None:
            runtime.memo_table("bounds.transition")[key] = transition
        return transition

    def _loop_canon(self, loop: GraphLoop) -> Tuple[Dict[Node, int], tuple]:
        """Canonical numbering + encoding of one loop's product subgraph.

        Mirrors the engine's own DFS (``_explore``) from the header over
        the body-restricted adjacency to number nodes structurally, then
        encodes every node as (block id, ordered successors) with each
        successor as (canonical dst, branch polarity, is-back-edge).
        Equal encodings imply the engine sees identical inputs up to a
        DFA-state renaming its computation cannot observe.  Cached per
        header: both the transition memo and the iteration-bound key
        consume it.
        """
        cached = self._canon_cache.get(loop.header)
        if cached is not None:
            return cached
        back = set(loop.back_edges)
        body = loop.body
        adj = {
            u: [e for e in self._adjacency.get(u, []) if e.dst in body] for u in body
        }
        order: List[Node] = []
        seen: Set[Node] = set()
        stack: List[Node] = [loop.header]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            order.append(node)
            for e in adj.get(node, []):
                if e.dst not in seen:
                    stack.append(e.dst)
        canon = {node: i for i, node in enumerate(order)}
        enc = tuple(
            (
                node[0],
                tuple(
                    (canon[e.dst], e.branch_taken, (node, e.dst) in back)
                    for e in adj.get(node, [])
                ),
            )
            for node in order
        )
        self._canon_cache[loop.header] = (canon, enc)
        return canon, enc

    def _summaries_fingerprint(self) -> str:
        if self._summaries_fp is None:
            self._summaries_fp = self._summaries.fingerprint()
        return self._summaries_fp

    def _loop_transition_key(
        self, loop: GraphLoop, seeded: AbstractState
    ) -> Optional[tuple]:
        """Canonical content key for one seeded loop analysis, or None
        when the state offers no content key (see :meth:`_loop_canon`)."""
        key_of = getattr(seeded, "cache_key", None)
        if key_of is None:
            return None
        from repro.perf.fingerprint import cfg_fingerprint

        _, enc = self._loop_canon(loop)
        return (
            cfg_fingerprint(self._cfg),
            self._domain.name,
            self._summaries_fingerprint(),
            key_of(),
            enc,
        )

    def _iteration_bound_key(
        self,
        loop: GraphLoop,
        seeded: AbstractState,
        entry: AbstractState,
        tracked: Set[str],
        candidates: List[RankCandidate],
        single_exit: Optional[Node],
        inner_finite: bool,
    ) -> Optional[tuple]:
        """Canonical content key for one loop's whole iteration bound.

        Extends the transition key with everything else the lemma
        matcher reads: the entry state's content, the tracked/seeded
        variable set, the designated input symbols, every rank
        candidate (its linear expression plus the *canonical* index of
        its branch node — the matcher consumes branch nodes only via
        equality with the single-exit branch and the header, which the
        indices preserve), the single-exit branch's canonical index,
        and the inner-loop finiteness flag.  Node labels never enter
        the key, so parent/child artifacts with renamed DFA states
        compare equal exactly when the analysis would reproduce them.
        """
        seeded_key = getattr(seeded, "cache_key", None)
        entry_key = getattr(entry, "cache_key", None)
        if seeded_key is None or entry_key is None:
            return None
        from repro.perf.fingerprint import cfg_fingerprint

        canon, enc = self._loop_canon(loop)
        cand_enc: List[tuple] = []
        for cand in candidates:
            idx = canon.get(cand.branch_node)
            if idx is None:
                return None
            cand_enc.append(
                ((tuple(sorted(cand.rank.coeffs.items())), cand.rank.const), idx)
            )
        exit_idx = None if single_exit is None else canon.get(single_exit)
        return (
            "iterbound",
            cfg_fingerprint(self._cfg),
            self._domain.name,
            self._summaries_fingerprint(),
            enc,
            seeded_key(),
            entry_key(),
            tuple(sorted(tracked)),
            tuple(self._symbols),
            tuple(cand_enc),
            exit_idx,
            inner_finite,
        )

    def _unrestricted_fallback(self) -> BoundResult:
        """The whole-CFG bound used when a trail's product graph is
        irreducible — a pure function of (CFG, domain, summaries,
        proc_bounds), so under the incremental plane every irreducible
        child of every trail of the same procedure shares one run."""

        def compute() -> BoundResult:
            return BoundAnalysis(
                self._cfg,
                self._domain,
                self._summaries,
                trail_dfa=None,
                proc_bounds=self._proc_bounds,
                budget=self._budget,
            ).compute()

        if not (runtime.incremental_enabled() and self._budget is None):
            return compute()
        from repro.perf import incremental
        from repro.perf.fingerprint import cfg_fingerprint

        key = (
            cfg_fingerprint(self._cfg),
            self._domain.name,
            self._summaries_fingerprint(),
            incremental.proc_bounds_key(self._proc_bounds),
        )
        table = runtime.memo_table(incremental.UNRESTRICTED_TABLE)
        hit = table.get(key)
        if hit is not None:
            runtime.STATS.hit(incremental.UNRESTRICTED_TABLE)
            return hit
        runtime.STATS.miss(incremental.UNRESTRICTED_TABLE)
        result = compute()
        if not result.degraded:
            table[key] = result
        return result

    def _publish_artifacts(self) -> None:
        """Index this analysis's per-loop artifacts under its trail's
        delta-lineage fingerprint, for future split children to probe."""
        if self._trail is None or not self._iter_keys:
            return
        if not (runtime.incremental_enabled() and self._budget is None):
            return
        from repro.perf import incremental

        artifacts = {
            key: self._iter_bounds[header]
            for header, key in self._iter_keys.items()
            if header in self._iter_bounds
        }
        incremental.publish_loop_artifacts(self._trail, artifacts)

    def _tracked_vars(self, loop: GraphLoop) -> Set[str]:
        """Integer variables worth seeding for the transition relation."""
        tracked: Set[str] = set()
        blocks = {n[0] for n in loop.body}
        for bid in blocks:
            block = self._cfg.blocks[bid]
            regs: List[ir.Reg] = []
            for instr in block.instrs:
                regs.extend(instr.defs())
                regs.extend(instr.uses())
                if isinstance(instr, ir.ArrLen) and isinstance(instr.arr, ir.Reg):
                    tracked.add(len_var(instr.arr.name))
            if block.term is not None:
                regs.extend(block.term.uses())
            for reg in regs:
                kind = self._cfg.reg_kinds.get(reg.name, "int")
                if kind == "arr":
                    tracked.add(len_var(reg.name))
                else:
                    tracked.add(reg.name)
        return tracked


def compute_bound(
    cfg: ControlFlowGraph,
    domain: Domain,
    summaries: Optional[SummaryRegistry] = None,
    trail_dfa: Optional[DFA] = None,
    proc_bounds: Optional[Dict[str, "ProcBound"]] = None,
    budget=None,
    trail=None,
) -> BoundResult:
    """One-shot BOUNDANALYSIS convenience wrapper."""
    return BoundAnalysis(
        cfg, domain, summaries, trail_dfa, proc_bounds, budget=budget, trail=trail
    ).compute()
