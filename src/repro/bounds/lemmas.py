"""The complexity-lemma database: loop iteration bounds.

Blazer "leverage[s] the seeding technique to compute transition
invariants, and match[es] these invariants against a database of
complexity bound lemmas".  This module is that matcher.

Given a loop of the product graph, the facts available are:

* candidate *ranking expressions* ``r`` — from each branch that can exit
  the loop, the linear constraint of its *continue* side, normalized so
  that staying in the loop implies ``r >= 0``;
* the seeded *transition relation* T relating the variables at one visit
  of the header (``x``) to their values at the previous visit
  (``x@pre``);
* the loop's *entry state* (join of states on edges entering the header
  from outside the loop).

Lemmas:

``DECREASING_RANK`` (upper bounds)
    If T entails ``r - r@pre <= -δ`` for a constant δ >= 1, the loop
    makes at most ``r_entry/δ + 1`` back-edge traversals.  ``r_entry`` is
    expressed symbolically over the input symbols by rewriting each
    program variable as ``symbol + constant`` using the entry state.

``EXACT_COUNTER`` (lower bounds)
    Additionally, if the matched branch is the loop's *only* exit, the
    decrease per iteration is also bounded above (``r - r@pre >= -δ'``),
    and every inner loop is known finite, then the loop makes at least
    ``r_entry/δ' + 1`` traversals (clamped at 0 by the cost algebra).
    This is what distinguishes "must enter the for loop" trails (exact
    ``g.len`` iterations) from trails with early exits.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bounds.cost import CostBound, Poly
from repro.domains.base import AbstractState
from repro.domains.linexpr import LinCons, LinExpr


def seed_name(var: str) -> str:
    """The seeded (pre-iteration) copy of ``var``."""
    return var + "@pre"


def linexpr_to_poly(expr: LinExpr) -> Poly:
    poly = Poly.constant(expr.const)
    for var, coeff in expr.coeffs.items():
        poly = poly + Poly.symbol(var) * coeff
    return poly


def symbolic_form(
    expr: LinExpr,
    state: AbstractState,
    symbols: Sequence[str],
) -> Optional[LinExpr]:
    """Rewrite ``expr`` over the designated input symbols using ``state``.

    Each non-symbol variable must be provably equal (in ``state``) to a
    constant or to ``symbol + constant`` for some input symbol; returns
    None when some variable cannot be resolved.
    """
    out = LinExpr.constant(expr.const)
    for var, coeff in sorted(expr.coeffs.items()):
        if var in symbols:
            out = out + LinExpr.var(var) * coeff
            continue
        lo, hi = state.bounds_of(LinExpr.var(var))
        if lo is not None and lo == hi:
            out = out + coeff * lo
            continue
        resolved = False
        for sym in symbols:
            lo, hi = state.bounds_of(LinExpr.var(var) - LinExpr.var(sym))
            if lo is not None and lo == hi:
                out = out + (LinExpr.var(sym) + lo) * coeff
                resolved = True
                break
        if not resolved:
            return None
    return out


@dataclass(frozen=True)
class RankCandidate:
    """One continue-side constraint: staying in the loop implies r >= 0."""

    rank: LinExpr
    branch_node: Tuple[int, int]  # the product node of the branch


@dataclass
class IterationBound:
    """Back-edge traversal count of one loop: [lower, upper] polynomials.

    ``upper=None`` means the lemma database could not bound the loop.
    The lower bound is always sound (0 when nothing better is known).
    """

    lower: Poly
    upper: Optional[Poly]
    exact: bool = False  # lower == upper semantically (deterministic count)
    # The entry state proves the lower bound non-negative (lets the cost
    # algebra keep the precise product instead of clamping at zero).
    lower_nonneg: bool = False

    def as_cost(self, nonneg: FrozenSet[str]) -> CostBound:
        if self.upper is None:
            return CostBound.unbounded(self.lower, nonneg)
        return CostBound.range(self.lower, self.upper, nonneg)


def match_iteration_lemmas(
    candidates: Sequence[RankCandidate],
    transition: AbstractState,
    entry_state: AbstractState,
    seeded_vars: Set[str],
    symbols: Sequence[str],
    single_exit_branch: Optional[Tuple[int, int]],
    inner_loops_finite: bool,
    header: Optional[Tuple[int, int]] = None,
) -> IterationBound:
    """Try every rank candidate against the lemma database; combine.

    ``single_exit_branch`` is the product node of the loop's only exiting
    branch when there is exactly one, else None (disables EXACT_COUNTER).

    ``header`` is the loop's header node.  EXACT_COUNTER's lower bound
    counts stay-decisions at the ranked branch starting from the rank's
    value at loop entry — which is only the value at the *first check*
    when the branch is the header.  Occurrence-split product graphs
    rotate loops (the trail DFA's state change moves the natural-loop
    header into the body), so the rank may already have decreased by one
    step before the branch first fires; the lower bound then concedes
    one decrement, and exactness is never claimed.
    """
    best_upper: Optional[Poly] = None
    best_upper_key: Optional[Tuple] = None
    best_lower: Optional[Poly] = None
    best_lower_nonneg = False
    exact = False

    for cand in candidates:
        r = cand.rank
        if any(var not in seeded_vars for var in r.coeffs):
            continue
        pre = r.rename({v: seed_name(v) for v in r.coeffs})
        delta_lo, delta_hi = transition.bounds_of(r - pre)
        if delta_hi is None or delta_hi > -1:
            continue  # not provably decreasing
        delta_min = -delta_hi
        entry_sym = symbolic_form(r, entry_state, symbols)
        if entry_sym is None:
            # Fall back to a constant bound from the entry state.
            _, entry_hi = entry_state.bounds_of(r)
            if entry_hi is None:
                continue
            entry_sym = LinExpr.constant(entry_hi)
        if not entry_sym.coeffs:
            # Constant rank at entry: the iteration count is exactly
            # ceil((r+1)/δ) — integer arithmetic beats the polynomial
            # over-approximation r/δ + 1 (e.g. a step-2 loop over an
            # even constant range has no half-iteration slack).
            upper = Poly.constant(
                max(0, math.ceil((entry_sym.const + 1) / delta_min))
            )
        else:
            upper = linexpr_to_poly(entry_sym) * (
                Fraction(1) / delta_min
            ) + Poly.constant(1)
        key = (upper.degree(), str(upper))
        if best_upper is None or key < best_upper_key:  # type: ignore[operator]
            best_upper = upper
            best_upper_key = key

        # EXACT_COUNTER: lower bound.
        if (
            single_exit_branch is not None
            and cand.branch_node == single_exit_branch
            and inner_loops_finite
        ):
            delta_max = None if delta_lo is None else -delta_lo
            at_header = header is None or cand.branch_node == header
            if delta_max is not None and delta_max >= 1:
                entry_sym_exact = symbolic_form(r, entry_state, symbols)
                if entry_sym_exact is not None:
                    # iterations = ceil((r+1)/δ) >= (r+1)/δ.  (Using
                    # r/δ + 1 instead would overcount whenever δ does not
                    # divide r+1 — e.g. a step-2 loop over an odd range.)
                    # A rotated loop (branch below the header) concedes
                    # one decrement before the first check.
                    concede = 0 if at_header else 1
                    if not entry_sym_exact.coeffs:
                        lower = Poly.constant(
                            max(
                                0,
                                math.ceil((entry_sym_exact.const + 1) / delta_max)
                                - concede,
                            )
                        )
                    else:
                        lower = (
                            linexpr_to_poly(entry_sym_exact) + Poly.constant(1)
                        ) * (Fraction(1) / delta_max) - Poly.constant(concede)
                    entry_r_lo, _ = entry_state.bounds_of(r)
                    # The unclamped product is sound when the entry state
                    # proves r >= 0, and also whenever the decrement is
                    # exactly 1: then lb = r + 1, and by integrality
                    # lb > 0 implies r >= 0 (so the loop really runs);
                    # lb <= 0 makes the claim vacuous.
                    nonneg_here = (
                        entry_r_lo is not None and entry_r_lo >= 0
                    ) or delta_max == 1
                    lkey = (lower.degree(), str(lower))
                    if best_lower is None or lkey > (best_lower.degree(), str(best_lower)):
                        best_lower = lower
                        best_lower_nonneg = nonneg_here
                    if at_header and (
                        delta_max == delta_min == 1
                        or (delta_max == delta_min and not entry_sym_exact.coeffs)
                    ):
                        # Unit steps (symbolically) or constant ranks
                        # (exact ceiling) give lower == upper.
                        exact = True

    if best_upper is None:
        return IterationBound(lower=Poly.ZERO, upper=None)
    lower = best_lower if best_lower is not None else Poly.ZERO
    return IterationBound(
        lower=lower,
        upper=best_upper,
        exact=exact,
        lower_nonneg=best_lower_nonneg if best_lower is not None else False,
    )
