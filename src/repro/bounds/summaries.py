"""Symbolic running-time summaries for extern (library) procedures.

Blazer "relies on manually-specified bound summaries for interprocedural
function calls" (Section 5); this module is that mechanism.  A summary
gives the (lower, upper) cost of one call.  Costs may reference the
*byte lengths* of array arguments symbolically (``arg#len``-style) via
``per_byte`` factors, or be plain constants configured for an assumed
maximum operand size — exactly how the paper handles the BigInteger
benchmarks ("we assume some reasonable maximum for the input variables,
e.g., 4096 bits").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Sequence

from repro.bounds.cost import CostBound, Poly


@dataclass(frozen=True)
class CallSummary:
    """Cost of one call: ``[lo_const, hi_const] (+ per-arg-byte terms)``.

    ``per_byte_arg`` (optional) names the 0-based index of an array
    argument whose length scales the cost linearly with factor
    ``per_byte``; the symbolic argument length is substituted by the
    bound analysis at the call site.
    """

    name: str
    lo: Fraction
    hi: Fraction
    per_byte_arg: Optional[int] = None
    per_byte: Fraction = Fraction(0)
    # Optional facts about the *return value*, used by the abstract
    # interpreter: numeric range for int results, exact length for array
    # results.  bigBitLength's [max_bits, max_bits] range is what makes
    # the modPow loops statically bounded — the paper's "assume 4096-bit
    # inputs" modeling.
    ret_lo: Optional[Fraction] = None
    ret_hi: Optional[Fraction] = None
    ret_len: Optional[int] = None

    def instantiate(self, arg_length_polys: Sequence[Optional[Poly]]) -> CostBound:
        lo_poly = Poly.constant(self.lo)
        hi_poly = Poly.constant(self.hi)
        if self.per_byte_arg is not None:
            if (
                self.per_byte_arg < len(arg_length_polys)
                and arg_length_polys[self.per_byte_arg] is not None
            ):
                scaled = arg_length_polys[self.per_byte_arg] * self.per_byte
                lo_poly = lo_poly + scaled
                hi_poly = hi_poly + scaled
            else:
                # Length unknown: the upper bound is lost.
                return CostBound.range(lo_poly, None)
        return CostBound.range(lo_poly, hi_poly)


class SummaryRegistry:
    """Named collection of call summaries used by the bound analysis."""

    def __init__(self) -> None:
        self._summaries: Dict[str, CallSummary] = {}

    def register(self, summary: CallSummary) -> None:
        self._summaries[summary.name] = summary

    def lookup(self, name: str) -> Optional[CallSummary]:
        return self._summaries.get(name)

    def copy(self) -> "SummaryRegistry":
        clone = SummaryRegistry()
        clone._summaries = dict(self._summaries)
        return clone

    def fingerprint(self) -> str:
        """Content fingerprint of every registered summary.

        ``CallSummary`` is a frozen dataclass of strings and Fractions,
        so its ``repr`` is a canonical rendering; two registries with
        equal summaries (e.g. ``default_summaries`` at the same
        ``max_bits``) fingerprint identically across processes.  Used to
        scope persisted bound results (docs/SERVICE.md), which depend on
        the summary costs in effect when they were computed.
        """
        h = hashlib.sha256()
        for name in sorted(self._summaries):
            h.update(repr(self._summaries[name]).encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()


def default_summaries(max_bits: int = 4096) -> SummaryRegistry:
    """Summaries matching the concrete extern models of
    :mod:`repro.interp.externs`, evaluated at an assumed maximum operand
    size of ``max_bits`` bits for the BigInteger arithmetic.

    Library arithmetic is constant-cost per call at the assumed operand
    size (the concrete extern models charge the identical constants, so
    concrete runs and static bounds agree exactly).  The interesting
    narrowness question is about the *callers* (how many multiplies run),
    not the primitives — the paper's treatment.
    """
    from repro.interp.externs import big_mod_cost, big_multiply_cost

    registry = SummaryRegistry()
    mul = Fraction(big_multiply_cost(max_bits))
    mod = Fraction(big_mod_cost(max_bits))
    registry.register(CallSummary("md5", Fraction(500), Fraction(500), ret_len=16))
    registry.register(CallSummary("bigMultiply", mul, mul))
    registry.register(CallSummary("bigMod", mod, mod))
    registry.register(
        CallSummary(
            "bigTestBit", Fraction(5), Fraction(5), ret_lo=Fraction(0), ret_hi=Fraction(1)
        )
    )
    # Cryptographic operands are assumed to have exactly the modeled
    # width (fixed-size exponents), so bitLength is a known constant.
    registry.register(
        CallSummary(
            "bigBitLength",
            Fraction(5),
            Fraction(5),
            ret_lo=Fraction(max_bits),
            ret_hi=Fraction(max_bits),
        )
    )
    return registry
