"""Generic digraph algorithms over adjacency mappings.

The bound analysis works on the *product graph* (CFG × trail DFA), whose
nodes are ``(block, dfa_state)`` pairs, so the CFG-specific dominance and
loop modules do not apply directly.  This module provides the same
algorithms for arbitrary hashable nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple, TypeVar

N = TypeVar("N", bound=Hashable)

Adj = Dict[N, List[N]]


def reverse_postorder(roots: Sequence[N], succs: Adj) -> List[N]:
    seen: Set[N] = set()
    order: List[N] = []
    for root in roots:
        if root in seen:
            continue
        seen.add(root)
        stack: List[Tuple[N, int]] = [(root, 0)]
        while stack:
            node, idx = stack.pop()
            children = succs.get(node, [])
            if idx < len(children):
                stack.append((node, idx + 1))
                child = children[idx]
                if child not in seen:
                    seen.add(child)
                    stack.append((child, 0))
            else:
                order.append(node)
    return list(reversed(order))


def predecessors(succs: Adj) -> Adj:
    preds: Adj = {n: [] for n in succs}
    for src, dsts in succs.items():
        for dst in dsts:
            preds.setdefault(dst, []).append(src)
    return preds


def immediate_dominators(root: N, succs: Adj) -> Dict[N, Optional[N]]:
    """Cooper–Harvey–Kennedy over an arbitrary digraph."""
    rpo = reverse_postorder([root], succs)
    position = {node: i for i, node in enumerate(rpo)}
    preds = predecessors(succs)
    idom: Dict[N, Optional[N]] = {node: None for node in rpo}
    idom[root] = root

    def intersect(a: N, b: N) -> N:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]  # type: ignore[assignment]
            while position[b] > position[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == root:
                continue
            new_idom: Optional[N] = None
            for pred in preds.get(node, []):
                if pred in position and idom.get(pred) is not None:
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom[node] != new_idom:
                idom[node] = new_idom
                changed = True
    idom[root] = None
    return idom


def dominates(idom: Dict[N, Optional[N]], a: N, b: N) -> bool:
    node: Optional[N] = b
    while node is not None:
        if node == a:
            return True
        node = idom.get(node)
    return False


@dataclass
class GraphLoop:
    """A natural loop of a generic digraph."""

    header: N  # type: ignore[valid-type]
    body: Set = field(default_factory=set)
    back_edges: List[Tuple] = field(default_factory=list)
    parent: Optional["GraphLoop"] = None

    @property
    def depth(self) -> int:
        depth, cur = 0, self.parent
        while cur is not None:
            depth += 1
            cur = cur.parent
        return depth

    def exit_edges(self, succs: Adj) -> List[Tuple]:
        out = []
        for node in self.body:
            for dst in succs.get(node, []):
                if dst not in self.body:
                    out.append((node, dst))
        return sorted(out, key=repr)


def natural_loops(root: N, succs: Adj) -> List[GraphLoop]:
    """Natural loops, merged per header, sorted innermost-last.

    Returns an empty list (and the caller falls back to ∞ bounds) if the
    graph is irreducible — a retreating edge whose target does not
    dominate its source.
    """
    idom = immediate_dominators(root, succs)
    rpo = reverse_postorder([root], succs)
    position = {node: i for i, node in enumerate(rpo)}
    preds = predecessors(succs)
    loops: Dict[N, GraphLoop] = {}
    for src in rpo:
        for dst in succs.get(src, []):
            if dst not in position or position[dst] > position[src]:
                continue
            # Retreating edge src -> dst.
            if not dominates(idom, dst, src):
                raise IrreducibleGraphError(
                    "irreducible graph: retreating edge %r -> %r" % (src, dst)
                )
            loop = loops.setdefault(dst, GraphLoop(header=dst, body={dst}))
            loop.back_edges.append((src, dst))
            stack = [src]
            while stack:
                node = stack.pop()
                if node in loop.body:
                    continue
                loop.body.add(node)
                stack.extend(p for p in preds.get(node, []) if p in position)
    result = list(loops.values())
    for loop in result:
        candidates = [
            other
            for other in result
            if other is not loop and loop.header in other.body and loop.body <= other.body
        ]
        if candidates:
            loop.parent = min(candidates, key=lambda l: len(l.body))
    result.sort(key=lambda l: (l.depth, repr(l.header)))
    return result


class IrreducibleGraphError(Exception):
    """The product graph is irreducible; loop bounds cannot be computed."""


def topo_order_dag(nodes: Sequence[N], succs: Adj) -> List[N]:
    """Topological order of a DAG restricted to ``nodes``.

    Raises ValueError on a cycle (callers collapse loops first).
    """
    node_set = set(nodes)
    indegree: Dict[N, int] = {n: 0 for n in nodes}
    for src in nodes:
        for dst in succs.get(src, []):
            if dst in node_set:
                indegree[dst] += 1
    queue = sorted([n for n in nodes if indegree[n] == 0], key=repr)
    order: List[N] = []
    while queue:
        node = queue.pop(0)
        order.append(node)
        added = []
        for dst in succs.get(node, []):
            if dst in node_set:
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    added.append(dst)
        queue.extend(sorted(added, key=repr))
    if len(order) != len(node_set):
        raise ValueError("graph is not acyclic")
    return order
