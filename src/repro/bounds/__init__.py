"""Symbolic running-time bound analysis (BOUNDANALYSIS of the paper)."""

from repro.bounds.analysis import (
    BoundAnalysis,
    BoundResult,
    compute_bound,
    input_symbols,
    nonneg_symbols,
    symbol_levels,
)
from repro.bounds.cost import CostBound, Poly
from repro.bounds.interproc import ProcBound, compute_proc_bounds
from repro.bounds.summaries import CallSummary, SummaryRegistry, default_summaries

__all__ = [
    "BoundAnalysis",
    "BoundResult",
    "compute_bound",
    "input_symbols",
    "nonneg_symbols",
    "symbol_levels",
    "CostBound",
    "Poly",
    "ProcBound",
    "compute_proc_bounds",
    "CallSummary",
    "SummaryRegistry",
    "default_summaries",
]
