"""The constant-time crypto corpus: realistic kernels + expected verdicts.

Eight kernels under ``examples/crypto/``, four leaky/fixed pairs drawn
from the constant-time literature (square-and-multiply vs fixed-sequence
modexp, secret-indexed sbox lookup vs full-table scan, early-exit vs
accumulating comparison, branchy vs branchless select).  Each carries
its expected constant-time verdict under *both* cost models — the
interesting row is ``sbox_lookup``, constant-time by instruction count
but leaky once the cache model prices array reads by their index.

The ``.rp`` files are the single source of truth; this module just
locates and annotates them, so `repro leakage examples/crypto/x.rp`
and the corpus tests read the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

from repro.util.errors import AnalysisError

CORPUS_DIR = Path(__file__).resolve().parents[3] / "examples" / "crypto"


@dataclass(frozen=True)
class CorpusKernel:
    """One crypto kernel and its expected verdict matrix."""

    name: str
    proc: str
    ct_instr: bool  # expected constant-time under the instr model
    ct_cache: bool  # expected constant-time under the cache model
    note: str

    @property
    def path(self) -> Path:
        return CORPUS_DIR / ("%s.rp" % self.name)

    def source(self) -> str:
        try:
            return self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(
                "crypto corpus kernel %r missing at %s" % (self.name, self.path)
            ) from exc


CRYPTO_CORPUS: List[CorpusKernel] = [
    CorpusKernel(
        "modexp_sqmul", "modexp_sqmul", False, False,
        "square-and-multiply: multiply only on set exponent bits",
    ),
    CorpusKernel(
        "modexp_fixed", "modexp_fixed", True, True,
        "fixed-sequence modexp with branchless accumulator select",
    ),
    CorpusKernel(
        "sbox_lookup", "sbox_lookup", True, False,
        "secret-indexed table lookup: public control flow, cache-priced index",
    ),
    CorpusKernel(
        "sbox_scan", "sbox_scan", True, True,
        "full-table scan with public indices, secret folded arithmetically",
    ),
    CorpusKernel(
        "memcmp_early", "memcmp_early", False, False,
        "early-exit comparison: time counts the matching prefix",
    ),
    CorpusKernel(
        "memcmp_const", "memcmp_const", True, True,
        "accumulating comparison over the full public length",
    ),
    CorpusKernel(
        "select_branchy", "select_branchy", False, False,
        "conditional select via a branch on the secret bit",
    ),
    CorpusKernel(
        "select_branchless", "select_branchless", True, True,
        "arithmetic blend select, one straight-line path",
    ),
]

CORPUS_BY_NAME: Dict[str, CorpusKernel] = {k.name: k for k in CRYPTO_CORPUS}


def corpus_kernel(name: str) -> CorpusKernel:
    kernel = CORPUS_BY_NAME.get(name)
    if kernel is None:
        raise AnalysisError(
            "unknown corpus kernel %r (available: %s)"
            % (name, ", ".join(sorted(CORPUS_BY_NAME)))
        )
    return kernel
