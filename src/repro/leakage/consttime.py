"""First-class constant-time checking under a pluggable cost model.

:func:`repro.core.consttime.verify_constant_time` decides the
control-flow half of Almeida et al.'s constant-time property: no
reachable branch on secret data.  That is the whole story only when
every instruction costs the same regardless of its operands.  Under a
cache-aware model an ``arrayRead(sbox, k)`` with secret ``k`` leaks
through the *cost of a single straight-line instruction* — control flow
perfectly public, timing not.

This checker decides both halves against a :class:`~repro.leakage.model
.CostModel`:

* **control flow** — the reachable-high-branch check, verbatim;
* **operand cost** — every reachable call whose summary interval is
  *wide* (``lo != hi``, i.e. the model prices the call by its operands)
  must have exclusively secret-free cost-relevant arguments.

Soundness: if both checks pass, every execution runs the same public
control path (public branches only), and every priced call is fed
cost-irrelevant-or-public operands, so under the model's deterministic
cost functions low-equivalent runs tick identical clocks — the oracle's
gap is 0 at any slack.  The converse is deliberately not claimed: the
checker is a conservative analysis, not a decision procedure (a
secret-fed wide call whose cost happens to collapse is flagged anyway —
that is the constant-time discipline, same as ct-verif's).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.absint.engine import Engine
from repro.core.blazer import Blazer
from repro.ir import instr as ir
from repro.leakage.model import CostModel
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span as trace_span
from repro.taint import Taint

CHECKS_TOTAL = REGISTRY.counter(
    "repro_consttime_checks_total",
    "Constant-time checks by verdict",
    labelnames=("verdict",),
)


@dataclass(frozen=True)
class CostViolation:
    """A reachable variable-cost call fed a secret cost-relevant arg."""

    block: int
    callee: str
    arg_index: int
    arg: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "block": self.block,
            "callee": self.callee,
            "arg_index": self.arg_index,
            "arg": self.arg,
        }


@dataclass
class ConstTimeReport:
    """Verdict of the two-part constant-time check under one model."""

    proc: str
    constant_time: bool
    cost_model: str
    offending_branches: List[int] = field(default_factory=list)
    offending_calls: List[CostViolation] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "proc": self.proc,
            "constant_time": self.constant_time,
            "cost_model": self.cost_model,
            "offending_branches": list(self.offending_branches),
            "offending_calls": [v.to_dict() for v in self.offending_calls],
        }

    def render(self) -> str:
        if self.constant_time:
            return "%s: CONSTANT-TIME under %s model" % (self.proc, self.cost_model)
        parts = []
        if self.offending_branches:
            parts.append(
                "secret-dependent branches: %s"
                % ", ".join("b%d" % b for b in self.offending_branches)
            )
        if self.offending_calls:
            parts.append(
                "secret-cost calls: %s"
                % ", ".join(
                    "%s(arg%d=%s)@b%d" % (v.callee, v.arg_index, v.arg, v.block)
                    for v in self.offending_calls
                )
            )
        return "%s: NOT constant-time under %s model (%s)" % (
            self.proc,
            self.cost_model,
            "; ".join(parts),
        )


def _call_is_priced(model: CostModel, blazer: Blazer, callee: str) -> bool:
    """Does this call's cost vary with its operands under the model?

    Wide summary interval -> the model prices the call by its arguments.
    No summary and no defined body -> nothing constrains the cost, so
    conservatively priced.  Defined procedures are skipped: their cost
    is their body's, which the checker sees when pointed at them.
    """
    summary = model.summaries.lookup(callee)
    if summary is not None:
        return summary.lo != summary.hi
    return callee not in blazer.cfgs


def check_constant_time(
    blazer: Blazer, proc: str, model: CostModel
) -> ConstTimeReport:
    """Decide constant-time for ``proc`` under ``model``."""
    with trace_span("leakage.consttime", proc=proc, model=model.name):
        cfg = blazer.cfgs[proc]
        taint = blazer.taint(proc)
        reachable = Engine(
            cfg, blazer.config.resolved_domain()
        ).analyze().reachable_blocks()

        branches = [b for b in taint.high_branches() if b in reachable]

        calls: List[CostViolation] = []
        for block_id in cfg.block_ids():
            if block_id not in reachable:
                continue
            for instr in cfg.blocks[block_id].instrs:
                if not isinstance(instr, ir.CallInstr):
                    continue
                if not _call_is_priced(model, blazer, instr.callee):
                    continue
                relevant = model.cost_relevant_args(instr.callee, len(instr.args))
                for pos in relevant:
                    if pos >= len(instr.args):
                        continue
                    operand = instr.args[pos]
                    if not isinstance(operand, ir.Reg):
                        continue  # constants carry no taint
                    if Taint.HIGH in taint.taint_of_var(operand.name):
                        calls.append(
                            CostViolation(
                                block=block_id,
                                callee=instr.callee,
                                arg_index=pos,
                                arg=operand.name,
                            )
                        )

        report = ConstTimeReport(
            proc=proc,
            constant_time=not branches and not calls,
            cost_model=model.name,
            offending_branches=branches,
            offending_calls=calls,
        )
        CHECKS_TOTAL.labels(
            verdict="constant-time" if report.constant_time else "variable-time"
        ).inc()
        return report
