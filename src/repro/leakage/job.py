"""Source-level and job-shaped entry points for the leakage subsystem.

Mirrors :mod:`repro.core.pdsc`: :func:`leakage_source` is the
convenience wrapper the CLI and differ call, :func:`leakage_job` is the
kind-dispatched service entry (plain JSON-safe dicts in and out), and
:data:`LEAKAGE_JOB_FIELDS` is the fingerprint contract — exactly the
payload knobs that can change a leakage outcome, hashed into the
request key so a leakage job never coalesces with any other kind over
the same program.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Tuple

from repro.core.blazer import Blazer, BlazerConfig, resolve_proc
from repro.core.observer import ConcreteThresholdObserver, effective_slack
from repro.domains import DOMAINS
from repro.leakage.analysis import LeakageReport, analyze_leakage
from repro.leakage.consttime import ConstTimeReport, check_constant_time
from repro.leakage.model import resolve_model
from repro.resilience.budget import Budget
from repro.util.errors import AnalysisError

LEAKAGE_JOB_FIELDS = (
    "kind",
    "source",
    "proc",
    "domain",
    "slack",
    "cost_model",
    "max_bits",
    "max_input",
    "deadline",
)


def leakage_source(
    source: str,
    proc: Optional[str] = None,
    domain: str = "zone",
    slack: int = 32,
    cost_model: str = "instr",
    max_bits: int = 4096,
    max_input: int = 4096,
    deadline: Optional[float] = None,
) -> Tuple[str, LeakageReport, ConstTimeReport]:
    """Quantify + constant-time check one procedure of a source program.

    The decomposition runs under a threshold observer at the same slack
    the leakage count uses, so refinement works toward exactly the
    classes the report counts.  Returns ``(resolved proc name,
    leakage report, constant-time report)``.
    """
    if domain not in DOMAINS:
        raise AnalysisError(
            "unknown domain %r (available: %s)" % (domain, ", ".join(sorted(DOMAINS)))
        )
    slack = effective_slack(slack)
    model = resolve_model(cost_model, max_bits)
    budget = Budget(wall_seconds=deadline) if deadline is not None else None
    config = BlazerConfig(
        domain=domain,
        observer=ConcreteThresholdObserver(threshold=slack, default_max=max_input),
        summaries=model.summaries,
        budget=budget,
    )
    blazer = Blazer.from_source(source, config)
    name = resolve_proc(blazer.cfgs, proc)
    report = analyze_leakage(
        blazer,
        name,
        slack,
        default_max=max_input,
        cost_model=model.name,
    )
    consttime = check_constant_time(blazer, name, model)
    return name, report, consttime


def result_digest(proc: str, report: LeakageReport, consttime: ConstTimeReport) -> str:
    """Content digest of a leakage outcome — the cross-process equality
    witness, computed over the timing-free report dicts."""
    body = json.dumps(
        {
            "proc": proc,
            "leakage": report.to_dict(),
            "consttime": consttime.to_dict(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def leakage_job(payload: Dict[str, object]) -> Dict[str, object]:
    """Job-shaped entry point, mirroring :func:`repro.core.pdsc.pdsc_job`.

    ``status`` maps onto the service's verdict vocabulary: a report
    with a sound bits bound (exact or upper-bound) is "safe" — the
    *analysis* succeeded; how many bits it found is data, not a
    failure — while a degraded/unbounded report is "unknown".
    """
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise AnalysisError("job payload needs a non-empty 'source'")
    deadline = payload.get("deadline")
    proc, report, consttime = leakage_source(
        source,
        proc=payload.get("proc"),  # type: ignore[arg-type]
        domain=str(payload.get("domain", "zone")),
        slack=int(payload.get("slack", 32)),  # type: ignore[arg-type]
        cost_model=str(payload.get("cost_model", "instr")),
        max_bits=int(payload.get("max_bits", 4096)),  # type: ignore[arg-type]
        max_input=int(payload.get("max_input", 4096)),  # type: ignore[arg-type]
        deadline=float(deadline) if deadline is not None else None,  # type: ignore[arg-type]
    )
    return {
        "kind": "leakage",
        "proc": proc,
        "status": "unknown" if report.cells is None else "safe",
        "leakage_status": report.status,
        "constant_time": consttime.constant_time,
        "cells": report.cells,
        "bits_capacity": report.bits_capacity,
        "digest": result_digest(proc, report, consttime),
        "leakage": report.to_dict(),
        "consttime": consttime.to_dict(),
    }
