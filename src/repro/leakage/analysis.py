"""Quantitative timing leakage from a finished trail decomposition.

The partition tree Blazer builds is literally a partition of the
program's executions; each feasible leaf carries a symbolic running-
time interval.  Evaluated over the finite input box, those intervals
partition the *observable timing axis*, and counting the observations
an ε-observer can distinguish bounds the channel from above — per
"Quantifying Timing Leaks and Cost Optimisation" (PAPERS.md), for a
deterministic timing channel under a uniform prior, min-entropy leakage
and channel capacity coincide at ``log2(#distinguishable classes)``.

The counting argument (soundness proof in docs/LEAKAGE.md):

1. every concrete execution lands inside some leaf's concrete interval
   (leaves cover the root; the bound analysis is interval-sound — the
   diffcheck suite enforces both against the exhaustive oracle);
2. intervals closer than the slack ε are merged — two observations less
   than ε apart are indistinguishable, so merging never drops a
   distinguishable class (components stay ≥ ε apart);
3. a merged component of span ``w`` admits at most ``⌊w/ε⌋ + 1``
   pairwise-distinguishable times (any more and two of them would be
   within ε by pigeonhole);
4. therefore ``Σ_components (⌊span/ε⌋ + 1)`` dominates the number of
   timing observations any attacker can tell apart — in particular the
   per-low-class ground truth :func:`repro.diffcheck.oracle.exact_leakage`
   computes, which is what the differential harness asserts.

The report is three-valued: ``exact`` when every component is narrower
than ε (the class count equals the component count — exact modulo
abstract feasibility, which can only overcount), ``upper-bound`` when
some component had to be subdivided by the pigeonhole term, and
``unknown`` when any feasible leaf is degraded (⊤ after budget
exhaustion) or unbounded — then no finite bits claim is sound and the
report says so instead of guessing.

One refinement keeps attack-phase splits from poisoning the count: an
attack split subdivides a node whose own bound was already computed, and
a child's executions are a subset of its parent's, so when a *leaf*
carries no finite bound (the attack search often leaves an unbounded
half behind) the nearest ancestor with a finite feasible bound stands in
for it — a pure widening, the ancestor's interval covers everything the
leaf covers.  Only when no ancestor up to the root is bounded does the
leaf force ``unknown``.  Budget degradation never takes this fallback:
a tripped budget means the decomposition itself is incomplete, and the
three-valued contract is that degradation reads ``unknown``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bounds.cost import CostBound
from repro.core.blazer import Blazer, BlazerVerdict
from repro.core.observer import effective_slack
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span as trace_span

REPORTS_TOTAL = REGISTRY.counter(
    "repro_leakage_reports_total",
    "Leakage reports by status",
    labelnames=("status",),
)

# Status vocabulary of a LeakageReport.
EXACT = "exact"
UPPER_BOUND = "upper-bound"
UNKNOWN = "unknown"


def _num(value: Fraction):
    """A JSON-friendly number: int when integral, else float."""
    if value == int(value):
        return int(value)
    return float(value)


def bound_interval(
    bound: CostBound,
    domains: Mapping[str, Sequence[int]],
    default_max: int = 4096,
) -> Tuple[Fraction, Fraction]:
    """``[min lo, max hi]`` of a bound over the finite input box.

    Symbols with a registered domain are enumerated exhaustively (the
    diffcheck convention — interval-sound on finite domains); symbols
    without one are evaluated at the two endpoints ``{0, default_max}``,
    the platform-model convention for fixed-size crypto inputs.
    """
    assert bound.upper is not None
    symbols = sorted(bound.symbols())
    spaces = [tuple(domains.get(sym, (0, default_max))) for sym in symbols]
    lo_min: Optional[Fraction] = None
    hi_max: Optional[Fraction] = None
    for combo in itertools.product(*spaces):
        lo, hi = bound.evaluate(dict(zip(symbols, combo)))
        assert hi is not None
        lo_min = lo if lo_min is None else min(lo_min, lo)
        hi_max = hi if hi_max is None else max(hi_max, hi)
    assert lo_min is not None and hi_max is not None
    return lo_min, hi_max


@dataclass(frozen=True)
class TimingClass:
    """One ε-separated component of the observable timing axis."""

    lo: Fraction
    hi: Fraction
    trails: int  # leaves merged into this component
    cells: int  # distinguishable observations inside it: ⌊span/ε⌋+1

    @property
    def span(self) -> Fraction:
        return self.hi - self.lo

    def to_dict(self) -> Dict[str, object]:
        return {
            "lo": _num(self.lo),
            "hi": _num(self.hi),
            "trails": self.trails,
            "cells": self.cells,
        }


@dataclass
class LeakageReport:
    """Sound upper bounds on bits leaked through the timing channel."""

    proc: str
    status: str  # EXACT | UPPER_BOUND | UNKNOWN
    slack: int
    classes: List[TimingClass] = field(default_factory=list)
    cells: Optional[int] = None  # Σ per-class cells; None when unknown
    bits_capacity: Optional[float] = None
    bits_min_entropy: Optional[float] = None
    feasible_leaves: int = 0
    infeasible_leaves: int = 0
    degraded_leaves: int = 0
    unbounded_leaves: int = 0
    widened_leaves: int = 0  # unbounded leaves covered by an ancestor
    cost_model: str = "instr"

    @property
    def constant_time_bits(self) -> bool:
        """Does the bound certify a leak-free channel (0 bits)?"""
        return self.cells == 1 or self.cells == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "proc": self.proc,
            "status": self.status,
            "slack": self.slack,
            "cost_model": self.cost_model,
            "classes": [c.to_dict() for c in self.classes],
            "cells": self.cells,
            "bits_capacity": self.bits_capacity,
            "bits_min_entropy": self.bits_min_entropy,
            "leaves": {
                "feasible": self.feasible_leaves,
                "infeasible": self.infeasible_leaves,
                "degraded": self.degraded_leaves,
                "unbounded": self.unbounded_leaves,
                "widened": self.widened_leaves,
            },
        }

    def render(self) -> str:
        head = "%s: leakage %s under %s model (slack %d)" % (
            self.proc,
            self.status.upper(),
            self.cost_model,
            self.slack,
        )
        lines = [head]
        if self.status == UNKNOWN:
            lines.append(
                "  no sound bits bound: %d degraded / %d unbounded leaf bound(s)"
                % (self.degraded_leaves, self.unbounded_leaves)
            )
        else:
            assert self.cells is not None
            lines.append(
                "  <= %.4f bits (capacity = min-entropy; %d distinguishable "
                "observation(s) across %d timing class(es))"
                % (self.bits_capacity or 0.0, self.cells, len(self.classes))
            )
        for cls in self.classes:
            lines.append(
                "  class [%s, %s] span=%s trails=%d cells=%d"
                % (_num(cls.lo), _num(cls.hi), _num(cls.span), cls.trails, cls.cells)
            )
        return "\n".join(lines)


def _merge_intervals(
    intervals: List[Tuple[Fraction, Fraction]], slack: int
) -> List[TimingClass]:
    """ε-connected components of the leaf intervals, with cell counts."""
    classes: List[TimingClass] = []
    cur_lo: Optional[Fraction] = None
    cur_hi: Optional[Fraction] = None
    cur_trails = 0
    for lo, hi in sorted(intervals):
        if cur_hi is not None and lo - cur_hi < slack:
            cur_hi = max(cur_hi, hi)
            cur_trails += 1
            continue
        if cur_lo is not None:
            assert cur_hi is not None
            classes.append(
                TimingClass(
                    lo=cur_lo,
                    hi=cur_hi,
                    trails=cur_trails,
                    cells=int((cur_hi - cur_lo) // slack) + 1,
                )
            )
        cur_lo, cur_hi, cur_trails = lo, hi, 1
    if cur_lo is not None:
        assert cur_hi is not None
        classes.append(
            TimingClass(
                lo=cur_lo,
                hi=cur_hi,
                trails=cur_trails,
                cells=int((cur_hi - cur_lo) // slack) + 1,
            )
        )
    return classes


def _bounded_ancestor(leaf):
    """The nearest ancestor carrying a finite, feasible, non-degraded
    bound — the sound stand-in interval for an unbounded leaf."""
    for node in leaf.ancestors():
        result = node.bound
        if (
            result is not None
            and not result.degraded
            and result.feasible
            and result.bound is not None
            and result.bound.upper is not None
        ):
            return node
    return None


def leakage_from_verdict(
    verdict: BlazerVerdict,
    slack: int,
    domains: Optional[Mapping[str, Sequence[int]]] = None,
    default_max: int = 4096,
    cost_model: str = "instr",
) -> LeakageReport:
    """Quantify the channel from an already-computed decomposition.

    Consumes the verdict's partition tree exactly as Blazer left it
    (safety *and* attack splits — overlapping leaves only overcount, so
    every leaf set that covers the root yields a sound count).
    """
    slack = effective_slack(slack)
    domains = domains or {}
    report = LeakageReport(
        proc=verdict.proc, status=UNKNOWN, slack=slack, cost_model=cost_model
    )
    intervals: List[Tuple[Fraction, Fraction]] = []
    fallbacks_used = set()
    for leaf in verdict.tree.leaves():
        result = leaf.bound
        if result is None or result.degraded:
            report.degraded_leaves += 1
            continue
        if not result.feasible:
            report.infeasible_leaves += 1
            continue
        report.feasible_leaves += 1
        bound = result.bound
        if bound is None or bound.upper is None:
            ancestor = _bounded_ancestor(leaf)
            if ancestor is None:
                report.unbounded_leaves += 1
                continue
            report.widened_leaves += 1
            if id(ancestor) in fallbacks_used:
                continue  # the ancestor's interval is already counted
            fallbacks_used.add(id(ancestor))
            bound = ancestor.bound.bound
        intervals.append(bound_interval(bound, domains, default_max))
    report.classes = _merge_intervals(intervals, slack)
    if report.degraded_leaves or report.unbounded_leaves:
        report.status = UNKNOWN
    else:
        cells = sum(c.cells for c in report.classes)
        report.cells = cells
        bits = math.log2(cells) if cells > 0 else 0.0
        report.bits_capacity = bits
        report.bits_min_entropy = bits
        report.status = (
            EXACT if all(c.cells == 1 for c in report.classes) else UPPER_BOUND
        )
    REPORTS_TOTAL.labels(status=report.status).inc()
    return report


def analyze_leakage(
    blazer: Blazer,
    proc: str,
    slack: int,
    domains: Optional[Mapping[str, Sequence[int]]] = None,
    default_max: int = 4096,
    cost_model: str = "instr",
    verdict: Optional[BlazerVerdict] = None,
) -> LeakageReport:
    """Run the decomposition (unless one is supplied) and quantify it."""
    with trace_span("leakage.analyze", proc=proc, model=cost_model):
        if verdict is None:
            verdict = blazer.analyze(proc)
        return leakage_from_verdict(
            verdict,
            slack,
            domains=domains,
            default_max=default_max,
            cost_model=cost_model,
        )
