"""Quantitative timing-leakage analysis over the trail decomposition.

The subsystem has four parts:

* :mod:`repro.leakage.model` — pluggable cost models (instruction-count
  and cache-aware), pairing symbolic call summaries with concrete
  extern implementations;
* :mod:`repro.leakage.analysis` — bits-leaked bounds (min-entropy /
  channel capacity) from a finished partition tree, three-valued;
* :mod:`repro.leakage.consttime` — first-class constant-time checking
  (control flow + operand-priced calls) under a cost model;
* :mod:`repro.leakage.corpus` — the crypto kernel corpus under
  ``examples/crypto/`` with its expected verdict matrix.

:mod:`repro.leakage.job` packages it all for the CLI, the differ and
the service (``kind="leakage"``).
"""

from repro.leakage.analysis import (
    EXACT,
    UNKNOWN,
    UPPER_BOUND,
    LeakageReport,
    TimingClass,
    analyze_leakage,
    leakage_from_verdict,
)
from repro.leakage.consttime import ConstTimeReport, CostViolation, check_constant_time
from repro.leakage.corpus import CRYPTO_CORPUS, CorpusKernel, corpus_kernel
from repro.leakage.job import (
    LEAKAGE_JOB_FIELDS,
    leakage_job,
    leakage_source,
    result_digest,
)
from repro.leakage.model import (
    ARRAY_READ,
    CACHE_HIT_COST,
    CACHE_LINE,
    CACHE_MISS_COST,
    COST_MODELS,
    CostModel,
    cache_model,
    extern_env,
    instr_model,
    resolve_model,
)

__all__ = [
    "ARRAY_READ",
    "CACHE_HIT_COST",
    "CACHE_LINE",
    "CACHE_MISS_COST",
    "COST_MODELS",
    "CRYPTO_CORPUS",
    "ConstTimeReport",
    "CorpusKernel",
    "CostModel",
    "CostViolation",
    "EXACT",
    "LEAKAGE_JOB_FIELDS",
    "LeakageReport",
    "TimingClass",
    "UNKNOWN",
    "UPPER_BOUND",
    "analyze_leakage",
    "cache_model",
    "check_constant_time",
    "corpus_kernel",
    "extern_env",
    "instr_model",
    "leakage_from_verdict",
    "leakage_job",
    "leakage_source",
    "resolve_model",
]
