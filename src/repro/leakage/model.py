"""Pluggable cost models for the leakage subsystem.

A *cost model* pairs the two halves of the machine model that must
agree for differential checking to mean anything:

* a :class:`~repro.bounds.summaries.SummaryRegistry` — the symbolic
  per-call cost intervals the bound analysis charges;
* an :class:`~repro.interp.externs.ExternRegistry` — the concrete
  implementations (value + cost) the interpreter executes.

Two models ship:

``instr``
    The instruction-count model: every extern costs a constant, an
    array read through :data:`ARRAY_READ` costs
    :data:`CACHE_HIT_COST` regardless of the index.  This is the
    paper's platform model extended with a uniform memory.

``cache``
    A cache-aware model per "Proving the Absence of Microarchitectural
    Timing Channels" (PAPERS.md): the machine has one warm cache line
    holding the first :data:`CACHE_LINE` elements of every array; a
    read inside the line costs :data:`CACHE_HIT_COST`, anything beyond
    it costs :data:`CACHE_MISS_COST`.  The symbolic summary is the
    interval ``[hit, miss]`` — a *variable-cost* call, so a
    secret-indexed table lookup is a timing channel under this model
    even when the control flow is perfectly public (the classic AES
    sbox leak).  The concrete model is deterministic in the index, so
    oracle runs stay reproducible and always land inside the summary.

Array reads go through the ``arrayRead(t: int[], i: int): int`` extern
rather than the built-in indexing operator: built-in reads are part of
the instruction count (constant weight), while the extern routes the
access through the cost-summary hook where a model can price it.  The
index is reduced modulo the array length (an empty array faults), so
generated programs can call it with arbitrary expressions.

The differential generator additionally emits scalar cost externs whose
interval is spelled in the *name* — ``cost_<lo>_<hi>(a: int): int`` —
so a shrunk reproducer pinned as bare source text still reconstructs
its registries: :func:`extern_env` parses the extern declarations back
out of any source string.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Sequence, Tuple

from repro.bounds.summaries import CallSummary, SummaryRegistry, default_summaries
from repro.interp.externs import ExternRegistry, default_registry
from repro.util.errors import AnalysisError, InterpError

ARRAY_READ = "arrayRead"

# The toy microarchitecture: one warm line of CACHE_LINE elements at
# the front of every array.  The hit/miss gap (32) is deliberately the
# same order as the degree observer's default epsilon: one secret-
# dependent miss is observable.
CACHE_LINE = 4
CACHE_HIT_COST = 2
CACHE_MISS_COST = 34

# extern names of the form cost_<lo>_<hi> carry their own summary.
_COST_NAME = re.compile(r"^cost_(\d+)_(\d+)$")
_EXTERN_DECL = re.compile(r"\bextern\s+([A-Za-z_]\w*)\s*\(")


@dataclass(frozen=True)
class CostModel:
    """One coherent machine model: symbolic and concrete sides together.

    ``cost_args`` names, per extern, the 0-based argument positions
    whose *values* drive the cost (for ``arrayRead`` the index, not the
    array identity).  The constant-time checker flags a variable-cost
    call only when a cost-relevant argument is secret-tainted; externs
    absent from the map conservatively treat every argument as
    cost-relevant.
    """

    name: str
    summaries: SummaryRegistry
    externs: ExternRegistry
    cost_args: Tuple[Tuple[str, Tuple[int, ...]], ...] = ((ARRAY_READ, (1,)),)

    def cost_relevant_args(self, callee: str, arg_count: int) -> Tuple[int, ...]:
        for name, positions in self.cost_args:
            if name == callee:
                return positions
        return tuple(range(arg_count))


def _array_read_impl(hit: int, miss: int):
    def impl(args: Sequence[object]) -> Tuple[object, int]:
        arr, idx = args[0], int(args[1])  # type: ignore[arg-type]
        if not isinstance(arr, list):
            raise InterpError("arrayRead expects an array")
        if not arr:
            raise InterpError("arrayRead on an empty array")
        j = idx % len(arr)
        return arr[j], hit if j < CACHE_LINE else miss

    return impl


def _uniform_array_read(cost: int):
    def impl(args: Sequence[object]) -> Tuple[object, int]:
        arr, idx = args[0], int(args[1])  # type: ignore[arg-type]
        if not isinstance(arr, list):
            raise InterpError("arrayRead expects an array")
        if not arr:
            raise InterpError("arrayRead on an empty array")
        return arr[idx % len(arr)], cost

    return impl


def _ranged_cost_impl(lo: int, hi: int):
    """cost_<lo>_<hi>: identity on its argument, cost deterministic in
    the argument value and always inside ``[lo, hi]``."""

    def impl(args: Sequence[object]) -> Tuple[object, int]:
        value = int(args[0])  # type: ignore[arg-type]
        span = hi - lo
        cost = lo if span == 0 else lo + (abs(value) % (span + 1))
        return value, cost

    return impl


def instr_model(max_bits: int = 4096) -> CostModel:
    """The uniform instruction-count model: array reads always hit."""
    summaries = default_summaries(max_bits)
    hit = Fraction(CACHE_HIT_COST)
    summaries.register(CallSummary(ARRAY_READ, hit, hit))
    externs = default_registry()
    externs.register(ARRAY_READ, _uniform_array_read(CACHE_HIT_COST))
    return CostModel(name="instr", summaries=summaries, externs=externs)


def cache_model(max_bits: int = 4096) -> CostModel:
    """The cache-aware model: reads beyond the warm line miss."""
    summaries = default_summaries(max_bits)
    summaries.register(
        CallSummary(
            ARRAY_READ, Fraction(CACHE_HIT_COST), Fraction(CACHE_MISS_COST)
        )
    )
    externs = default_registry()
    externs.register(ARRAY_READ, _array_read_impl(CACHE_HIT_COST, CACHE_MISS_COST))
    return CostModel(name="cache", summaries=summaries, externs=externs)


COST_MODELS = {
    "instr": instr_model,
    "cache": cache_model,
}


def resolve_model(name: str, max_bits: int = 4096) -> CostModel:
    factory = COST_MODELS.get(name)
    if factory is None:
        raise AnalysisError(
            "unknown cost model %r (available: %s)"
            % (name, ", ".join(sorted(COST_MODELS)))
        )
    return factory(max_bits)


def extern_env(source: str, max_bits: int = 4096) -> CostModel:
    """The cost model a bare source string implies.

    Scans the text for extern declarations and registers the
    self-describing ones — ``cost_<lo>_<hi>`` scalar externs — on top
    of the cache-aware base model (which already prices ``arrayRead``
    and the BigInteger/md5 externs).  Both differ subjects and corpus
    replays call this, so a program is checkable from its source alone:
    no side-channel metadata to lose between a campaign and its pinned
    reproducer.
    """
    model = cache_model(max_bits)
    cost_args: Dict[str, Tuple[int, ...]] = dict(model.cost_args)
    for name in _EXTERN_DECL.findall(source):
        match = _COST_NAME.match(name)
        if match is None:
            continue
        lo, hi = int(match.group(1)), int(match.group(2))
        if hi < lo:
            raise AnalysisError("extern %r declares an empty cost interval" % name)
        model.summaries.register(CallSummary(name, Fraction(lo), Fraction(hi)))
        model.externs.register(name, _ranged_cost_impl(lo, hi))
        cost_args[name] = (0,)
    return CostModel(
        name="generated",
        summaries=model.summaries,
        externs=model.externs,
        cost_args=tuple(sorted(cost_args.items())),
    )
