"""Cooperative analysis budgets and the structured degradation report.

A :class:`Budget` bounds one driver run along three axes — wall-clock
seconds, REFINEPARTITION iterations, and abstract-interpretation
fixpoint steps (the unit in which widening work is counted).  It is
*cooperative*: the budgeted code calls cheap checkpoints
(:meth:`Budget.checkpoint`, :meth:`Budget.step`,
:meth:`Budget.refinement`) at named sites, and the budget raises
:class:`~repro.util.errors.ResourceExhausted` when a limit is crossed.
Nothing is preempted; a checkpoint-free stretch of code runs to its own
internal bound (e.g. the engine's ``max_iterations``).

The driver converts exhaustion into *sound degradation* rather than a
crash: the leaf being analyzed gets a ⊤ (unbounded) running-time bound,
which can never satisfy the observer's narrowness check, so the verdict
becomes ``"unknown"`` — never a spurious ``"safe"`` — and the verdict
carries a :class:`DegradationReport` saying which budget tripped where.

Budgets are plain mutable objects shared across the driver's worker
threads; the counters tolerate benign races (a handful of lost
increments moves a trip point by a few steps, never past the wall-clock
deadline, which is re-read from the monotonic clock).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.util.errors import ResourceExhausted

# How many hot-loop ``step()`` calls may pass between wall-clock reads.
DEFAULT_CHECK_INTERVAL = 64


@dataclass
class Budget:
    """Limits for one analysis run; ``None`` disables an axis.

    ``wall_seconds``
        Monotonic wall-clock deadline, measured from :meth:`start` (the
        driver starts the budget when analysis begins; the first
        checkpoint starts it implicitly otherwise).
    ``max_refinements``
        REFINEPARTITION iterations across both driver phases.
    ``max_steps``
        Fixpoint iterations of the abstract-interpretation engine
        (chaotic-iteration worklist pops and narrowing visits — the
        unit widening work is counted in).
    """

    wall_seconds: Optional[float] = None
    max_refinements: Optional[int] = None
    max_steps: Optional[int] = None
    check_interval: int = DEFAULT_CHECK_INTERVAL

    _started: Optional[float] = field(default=None, init=False, repr=False)
    _refinements: int = field(default=0, init=False, repr=False)
    _steps: int = field(default=0, init=False, repr=False)
    _tick: int = field(default=0, init=False, repr=False)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Budget":
        """Arm the wall clock (idempotent: the first call wins)."""
        if self._started is None:
            self._started = time.monotonic()
        return self

    @property
    def started(self) -> bool:
        return self._started is not None

    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return time.monotonic() - self._started

    def remaining(self) -> Optional[float]:
        """Wall-clock seconds left; None when no deadline is set."""
        if self.wall_seconds is None:
            return None
        return self.wall_seconds - self.elapsed()

    @property
    def steps(self) -> int:
        return self._steps

    @property
    def refinements(self) -> int:
        return self._refinements

    # -- checkpoints -------------------------------------------------------

    def checkpoint(self, site: str) -> None:
        """Coarse checkpoint: read the clock, raise if past the deadline."""
        if self.wall_seconds is None:
            return
        self.start()
        elapsed = self.elapsed()
        if elapsed > self.wall_seconds:
            raise ResourceExhausted(
                "wall-clock budget of %.6gs exhausted at %s (%.6gs elapsed)"
                % (self.wall_seconds, site, elapsed),
                kind="wall",
                site=site,
                elapsed=elapsed,
            )

    def step(self, site: str) -> None:
        """Hot-loop checkpoint: count a fixpoint step; read the clock
        only every ``check_interval`` calls (a monotonic read per
        iteration would dominate small transfer functions)."""
        self._steps += 1
        if self.max_steps is not None and self._steps > self.max_steps:
            raise ResourceExhausted(
                "fixpoint-step budget of %d exhausted at %s"
                % (self.max_steps, site),
                kind="steps",
                site=site,
                elapsed=self.elapsed(),
            )
        self._tick += 1
        if self._tick >= self.check_interval:
            self._tick = 0
            self.checkpoint(site)

    def refinement(self, site: str = "blazer.refine") -> None:
        """Checkpoint for one REFINEPARTITION iteration."""
        self._refinements += 1
        if (
            self.max_refinements is not None
            and self._refinements > self.max_refinements
        ):
            raise ResourceExhausted(
                "refinement budget of %d exhausted at %s"
                % (self.max_refinements, site),
                kind="refinements",
                site=site,
                elapsed=self.elapsed(),
            )
        self.checkpoint(site)


@dataclass
class DegradationReport:
    """What gave out, where, and what state the analysis was left in.

    Attached to a :class:`~repro.core.blazer.BlazerVerdict` whose status
    was forced to ``"unknown"`` by budget exhaustion.  ``kind``/``site``
    identify the tripped limit and checkpoint; ``phase`` is the driver
    phase that was running; the leaf counters describe the partial
    partition (how many components kept real bounds vs. received ⊤).
    """

    kind: str  # "wall" | "refinements" | "steps"
    site: str
    phase: str  # "safety" | "attack"
    message: str
    elapsed_seconds: float = 0.0
    steps: int = 0
    refinements: int = 0
    leaves_total: int = 0
    leaves_degraded: int = 0

    @staticmethod
    def from_exhaustion(
        exc: ResourceExhausted, budget: Optional[Budget], phase: str
    ) -> "DegradationReport":
        return DegradationReport(
            kind=exc.kind,
            site=exc.site,
            phase=phase,
            message=str(exc),
            elapsed_seconds=exc.elapsed,
            steps=budget.steps if budget is not None else 0,
            refinements=budget.refinements if budget is not None else 0,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "site": self.site,
            "phase": self.phase,
            "message": self.message,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "steps": self.steps,
            "refinements": self.refinements,
            "leaves_total": self.leaves_total,
            "leaves_degraded": self.leaves_degraded,
        }

    def render(self) -> str:
        return (
            "degraded: %s budget exhausted at %s during %s phase "
            "(%d/%d leaves assumed ⊤)"
            % (
                self.kind,
                self.site or "<unknown site>",
                self.phase,
                self.leaves_degraded,
                self.leaves_total,
            )
        )
