"""The resilience layer: budgets, graceful degradation, fault injection.

Every long-running path of the reproduction — the Blazer refinement
loop, the bound analysis, the abstract-interpretation fixpoint, the
parallel suite runner — is *budgeted* (cooperative deadlines and
iteration limits), *recoverable* (retry-with-backoff, crash-safe
journals, cache quarantine) and *testable under injected faults*
(a seeded, deterministic :class:`FaultPlan`).  See docs/RESILIENCE.md
for the design and the soundness argument for ⊤-bound degradation.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import Budget, DegradationReport
from repro.resilience.faults import FaultPlan, FaultSpec, maybe_fire
from repro.resilience.journal import SuiteJournal
from repro.resilience.retry import RetryPolicy

__all__ = [
    "Budget",
    "CircuitBreaker",
    "DegradationReport",
    "FaultPlan",
    "FaultSpec",
    "maybe_fire",
    "RetryPolicy",
    "SuiteJournal",
]
