"""Seeded, deterministic fault injection at named sites.

This is how the resilience layer gets exercised in CI without flaky
sleeps or real signals: a :class:`FaultPlan` decides — deterministically,
from per-site hit counters and an optional seeded RNG — when a named
site misbehaves, and how:

``error``
    raise :class:`~repro.util.errors.InjectedFault` (a picklable
    exception that propagates like any worker failure);
``crash``
    ``os._exit(70)`` — simulates a killed pool worker, which surfaces
    to the parent as ``BrokenProcessPool``;
``interrupt``
    raise ``KeyboardInterrupt`` — simulates SIGINT at the site;
``delay=S``
    sleep ``S`` seconds, then continue normally;
``corrupt``
    return the marker string ``"corrupt"`` to the caller, which applies
    the corruption itself (e.g. the analysis cache garbles the stored
    entry so its self-healing read path can be observed).

Registered sites (callers of :func:`maybe_fire`):

========================  ====================================================
``worker.run``            entry of :func:`repro.benchsuite.runner.run_benchmark`
``cache.get``             read path of :class:`repro.perf.cache.AnalysisCache`
``zone.closure``          :meth:`ZoneState._close` (the DBM closure)
``engine.step``           the abstract-interpretation fixpoint loop
``refine.delta``          iteration-bound reuse in
                          :mod:`repro.perf.incremental` (``corrupt``
                          replaces a reused parent fixpoint artifact
                          with a zero-iteration claim, so the
                          differential battery must flag the divergence)
========================  ====================================================

Activation: programmatic (:func:`install`) or via the environment, which
is how a plan crosses a process-pool boundary (workers inherit the env
and parse it lazily on first fire):

``REPRO_FAULTS``
    comma-separated specs
    ``site:kind[:once][:pool][:match=SUBSTR][:p=PROB][@N[+]]``;
    ``@N`` fires on the Nth matching hit in each process (default
    ``@1``), ``@N+`` from the Nth hit onward, ``p=`` switches to a
    seeded coin per hit, and ``pool`` restricts the spec to pool worker
    processes (so e.g. a ``crash`` can kill a worker without taking the
    parent harness down with it).
``REPRO_FAULT_SEED``
    integer seed for the per-site RNGs (default 0).
``REPRO_FAULT_LEDGER``
    directory used by ``once`` specs to fire at most once *across*
    processes (the first process to claim the spec's marker file wins —
    this is what lets a retry succeed after an injected crash).

Hit counters are per process by design; cross-process once-semantics go
through the ledger.  When no plan is active, :func:`maybe_fire` is a
single global check — cheap enough for the closure and fixpoint paths.
"""

from __future__ import annotations

import hashlib
import os
import random
import re
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.perf import runtime
from repro.util.errors import InjectedFault

SITES = ("worker.run", "cache.get", "zone.closure", "engine.step", "refine.delta")
KINDS = ("error", "crash", "interrupt", "delay", "corrupt")

ENV_FAULTS = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"
ENV_LEDGER = "REPRO_FAULT_LEDGER"

# Exit status used by ``crash`` faults (EX_SOFTWARE, recognizably ours).
CRASH_EXIT_CODE = 70

_AT_SUFFIX = re.compile(r"@(\d+)(\+)?$")


@dataclass
class FaultSpec:
    """One injection rule: where, what, and on which hits."""

    site: str
    kind: str
    at: int = 1  # fire on the Nth matching hit...
    from_on: bool = False  # ...or on every hit >= N
    once: bool = False  # at most once across processes (needs a ledger)
    pool_only: bool = False  # only fire inside a pool worker process
    match: str = ""  # only hits whose key contains this substring
    prob: Optional[float] = None  # seeded coin instead of the counter
    delay: float = 0.0  # seconds, for kind == "delay"

    def spec_id(self) -> str:
        """A filesystem-safe identity for ledger marker files."""
        raw = "%s-%s-%d-%s" % (self.site, self.kind, self.at, self.match)
        return re.sub(r"[^A-Za-z0-9_.-]", "_", raw)

    def describe(self) -> str:
        parts = ["%s:%s" % (self.site, self.kind)]
        if self.kind == "delay":
            parts[0] += "=%g" % self.delay
        if self.once:
            parts.append("once")
        if self.pool_only:
            parts.append("pool")
        if self.match:
            parts.append("match=%s" % self.match)
        if self.prob is not None:
            parts.append("p=%g" % self.prob)
        return ":".join(parts) + "@%d%s" % (self.at, "+" if self.from_on else "")


def _in_pool_worker() -> bool:
    """True inside a multiprocessing child (a ProcessPoolExecutor worker)."""
    try:
        import multiprocessing

        return multiprocessing.parent_process() is not None
    except (ImportError, AttributeError):  # pragma: no cover
        return False


def parse_spec(text: str) -> FaultSpec:
    """Parse one ``site:kind[:flags...][@N[+]]`` spec (see module doc)."""
    text = text.strip()
    at, from_on = 1, False
    suffix = _AT_SUFFIX.search(text)
    if suffix is not None:
        at = int(suffix.group(1))
        from_on = suffix.group(2) == "+"
        text = text[: suffix.start()]
    fields = [f for f in text.split(":") if f]
    if len(fields) < 2:
        raise ValueError("fault spec %r needs at least site:kind" % text)
    site, kind_field = fields[0], fields[1]
    delay = 0.0
    if kind_field.startswith("delay"):
        kind = "delay"
        if "=" in kind_field:
            delay = float(kind_field.split("=", 1)[1])
    else:
        kind = kind_field
    if kind not in KINDS:
        raise ValueError("unknown fault kind %r (expected one of %s)" % (kind, KINDS))
    spec = FaultSpec(site=site, kind=kind, at=at, from_on=from_on, delay=delay)
    for flag in fields[2:]:
        if flag == "once":
            spec.once = True
        elif flag == "pool":
            spec.pool_only = True
        elif flag.startswith("match="):
            spec.match = flag.split("=", 1)[1]
        elif flag.startswith("p="):
            spec.prob = float(flag.split("=", 1)[1])
        else:
            raise ValueError("unknown fault flag %r in spec %r" % (flag, text))
    return spec


class FaultPlan:
    """A set of fault specs plus the per-site deterministic state."""

    def __init__(
        self,
        specs: List[FaultSpec],
        seed: int = 0,
        ledger: Optional[str] = None,
        sleep=time.sleep,
    ):
        self.specs = list(specs)
        self.seed = seed
        self.ledger = ledger
        self._sleep = sleep
        self._hits: Dict[Tuple[int, str], int] = {}
        self._rngs: Dict[int, random.Random] = {}

    @staticmethod
    def from_string(
        text: str, seed: int = 0, ledger: Optional[str] = None
    ) -> "FaultPlan":
        specs = [parse_spec(part) for part in text.split(",") if part.strip()]
        return FaultPlan(specs, seed=seed, ledger=ledger)

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self.specs)

    # -- firing decision ---------------------------------------------------

    def _rng(self, index: int) -> random.Random:
        rng = self._rngs.get(index)
        if rng is None:
            spec = self.specs[index]
            # Hash-randomization-proof integer seed: identical across
            # processes for the same (seed, site, kind, position).
            text = "%d|%s|%s|%d" % (self.seed, spec.site, spec.kind, index)
            derived = int.from_bytes(
                hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
            )
            rng = self._rngs[index] = random.Random(derived)
        return rng

    def _should_fire(self, index: int, spec: FaultSpec, key: str) -> bool:
        if spec.match and spec.match not in key:
            return False
        if spec.pool_only and not _in_pool_worker():
            return False
        count_key = (index, spec.match)
        count = self._hits.get(count_key, 0) + 1
        self._hits[count_key] = count
        if count < spec.at:
            return False
        if spec.prob is not None:
            if self._rng(index).random() >= spec.prob:
                return False
        elif not spec.from_on and count != spec.at:
            return False
        if spec.once and not self._claim(spec):
            return False
        return True

    def _claim(self, spec: FaultSpec) -> bool:
        """Atomically claim a ``once`` spec in the cross-process ledger.

        Without a ledger, ``once`` degrades to once-per-process.
        """
        if self.ledger is None:
            marker = "_claimed_%s" % spec.spec_id()
            if getattr(self, marker, False):
                return False
            setattr(self, marker, True)
            return True
        os.makedirs(self.ledger, exist_ok=True)
        path = os.path.join(self.ledger, spec.spec_id() + ".fired")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    # -- the act -----------------------------------------------------------

    def fire(self, site: str, key: str = "") -> Optional[str]:
        """Evaluate every spec for ``site``; trigger the first that fires.

        Returns the kind string for non-raising kinds (``"corrupt"``,
        ``"delay"``), None when nothing fired.
        """
        for index, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if not self._should_fire(index, spec, key):
                continue
            runtime.STATS.event("fault.%s" % spec.kind)
            if spec.kind == "error":
                raise InjectedFault(
                    "injected fault at %s (key=%r)" % (site, key), site=site
                )
            if spec.kind == "crash":
                os._exit(CRASH_EXIT_CODE)
            if spec.kind == "interrupt":
                raise KeyboardInterrupt("injected SIGINT at %s" % site)
            if spec.kind == "delay":
                self._sleep(spec.delay)
                return "delay"
            return "corrupt"
        return None


# -- process-wide activation ----------------------------------------------

_PLAN: Optional[FaultPlan] = None
_LOADED = False


def plan_from_env(environ=None) -> Optional[FaultPlan]:
    """Build the plan described by ``REPRO_FAULTS`` (None when unset)."""
    env = os.environ if environ is None else environ
    text = env.get(ENV_FAULTS, "").strip()
    if not text:
        return None
    return FaultPlan.from_string(
        text,
        seed=int(env.get(ENV_SEED, "0") or "0"),
        ledger=env.get(ENV_LEDGER) or None,
    )


def install(plan: Optional[FaultPlan]) -> None:
    """Programmatically activate ``plan`` (None deactivates)."""
    global _PLAN, _LOADED
    _PLAN = plan
    _LOADED = True


def clear() -> None:
    """Deactivate and forget; the env is re-read on the next fire."""
    global _PLAN, _LOADED
    _PLAN = None
    _LOADED = False


def active() -> Optional[FaultPlan]:
    """The currently active plan, loading the env on first use."""
    global _PLAN, _LOADED
    if not _LOADED:
        _PLAN = plan_from_env()
        _LOADED = True
    return _PLAN


def maybe_fire(site: str, key: str = "") -> Optional[str]:
    """The hook the instrumented sites call; near-free when inactive."""
    plan = _PLAN if _LOADED else active()
    if plan is None:
        return None
    return plan.fire(site, key)
