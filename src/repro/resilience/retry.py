"""Bounded retry-with-backoff policy for failed suite tasks.

The policy is data, not control flow: callers (the suite runner, the
analysis-service worker pool) ask it how long to sleep before attempt
*k* and whether another attempt is allowed.  ``sleep`` is injectable so
tests exercise the backoff schedule without waiting it out.

:func:`run_with_retries` is the shared control-flow half: the serial
re-run loop the benchmark runner used to own, extracted so the service
daemon's workers retry crashed jobs through exactly the same machinery.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Tuple, TypeVar

from repro.util.errors import WorkerCrashed

log = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class RetryPolicy:
    """Exponential backoff, capped: ``base * factor**(attempt-1)``.

    ``retries`` counts *re-runs* after the initial attempt; a task is
    given up (and :class:`~repro.util.errors.WorkerCrashed` raised by
    the caller) after ``1 + retries`` total attempts.
    """

    retries: int = 0
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def allows(self, attempt: int) -> bool:
        """May retry number ``attempt`` (1-based) run at all?"""
        return attempt <= self.retries

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = self.backoff_seconds * (self.backoff_factor ** max(0, attempt - 1))
        return min(raw, self.max_backoff_seconds)

    def sleep_before(self, attempt: int) -> None:
        delay = self.delay(attempt)
        if delay > 0:
            self.sleep(delay)


def run_with_retries(
    fn: Callable[[T], R],
    item: T,
    policy: RetryPolicy,
    first_error: Exception,
    label: str = "",
) -> Tuple[R, int]:
    """Serially re-run ``fn(item)`` under ``policy`` after a failure.

    ``first_error`` is the failure that triggered the retries (it is
    what gets chained and reported if every attempt fails too).  Returns
    ``(result, attempts)`` where ``attempts`` counts the re-runs that
    were consumed.  Raises :class:`WorkerCrashed` once the policy is
    exhausted; ``KeyboardInterrupt`` always propagates immediately so
    callers can flush state.
    """
    name = label or str(item)
    last: Exception = first_error
    attempt = 0
    while policy.allows(attempt + 1):
        attempt += 1
        log.warning(
            "%s failed (%s: %s); retry %d/%d on the serial backend",
            name,
            type(last).__name__,
            last,
            attempt,
            policy.retries,
        )
        policy.sleep_before(attempt)
        try:
            return fn(item), attempt
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            last = exc
    raise WorkerCrashed(
        "%s failed after %d attempt(s): %s: %s"
        % (name, attempt + 1, type(last).__name__, last),
        task=str(item),
        attempts=attempt + 1,
    ) from last
