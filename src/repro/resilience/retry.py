"""Bounded retry-with-backoff policy for failed suite tasks.

The policy is data, not control flow: callers (the suite runner) ask it
how long to sleep before attempt *k* and whether another attempt is
allowed.  ``sleep`` is injectable so tests exercise the backoff schedule
without waiting it out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class RetryPolicy:
    """Exponential backoff, capped: ``base * factor**(attempt-1)``.

    ``retries`` counts *re-runs* after the initial attempt; a task is
    given up (and :class:`~repro.util.errors.WorkerCrashed` raised by
    the caller) after ``1 + retries`` total attempts.
    """

    retries: int = 0
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def allows(self, attempt: int) -> bool:
        """May retry number ``attempt`` (1-based) run at all?"""
        return attempt <= self.retries

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = self.backoff_seconds * (self.backoff_factor ** max(0, attempt - 1))
        return min(raw, self.max_backoff_seconds)

    def sleep_before(self, attempt: int) -> None:
        delay = self.delay(attempt)
        if delay > 0:
            self.sleep(delay)
