"""Circuit breaker: stop hammering a dependency that keeps failing.

The classic three-state machine (docs/RESILIENCE.md), tuned for the
sharded analysis service but dependency-agnostic:

``closed``
    Normal operation.  Failures are counted; ``failure_threshold``
    *consecutive* failures trip the breaker open.  Any success resets
    the streak — one crash among healthy jobs is an incident, not an
    outage.
``open``
    The protected resource is quarantined: :meth:`allow` answers False
    and callers route around it.  After ``reset_seconds`` of quiet (or
    an explicit :meth:`force_probe` once the owner has rebuilt the
    resource) the breaker moves to half-open.
``half_open``
    Probation: up to ``half_open_max`` concurrent probes are let
    through.  A probe success closes the breaker; a probe failure
    re-opens it and restarts the quiet period.

Everything is driven by the caller reporting outcomes —
:meth:`record_success` / :meth:`record_failure` — so the breaker never
wraps or times anything itself.  ``clock`` is injectable (monotonic
seconds) so tests never sleep.

Thread-safe: one lock, no callbacks under it.  The shard manager of
:mod:`repro.service.shard` gives every worker shard one of these; a
shard whose workers keep crashing is quarantined, its fingerprint range
reroutes to healthy shards, and a background rebuild ends with
``force_probe()`` so the very next routed job tests the fresh pool.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Consecutive-failure breaker with timed or forced probation."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.half_open_max = max(1, half_open_max)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._streak = 0  # consecutive failures while closed
        self._opened_at: Optional[float] = None
        self._probes = 0  # probes admitted while half-open
        self.trips = 0  # lifetime closed/half-open -> open transitions

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._advance()

    def _advance(self) -> str:
        """Open -> half-open once the quiet period elapsed (lock held)."""
        if self._state == "open" and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.reset_seconds:
                self._state = "half_open"
                self._probes = 0
        return self._state

    def allow(self) -> bool:
        """May a request go through right now?

        In half-open state this *consumes* a probe slot, so at most
        ``half_open_max`` callers get a True between failures.
        """
        with self._lock:
            state = self._advance()
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._probes >= self.half_open_max:
                return False
            self._probes += 1
            return True

    # -- outcome reports ---------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._streak = 0
            if self._state == "half_open":
                self._state = "closed"
                self._opened_at = None
                self._probes = 0

    def record_failure(self) -> bool:
        """Count one failure; True when this report tripped the breaker
        open (the caller should start quarantine/rebuild)."""
        with self._lock:
            state = self._advance()
            if state == "half_open":
                # The probe failed: straight back to open, fresh timer.
                self._state = "open"
                self._opened_at = self._clock()
                self._probes = 0
                self.trips += 1
                return True
            if state == "open":
                return False
            self._streak += 1
            if self._streak >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._clock()
                self._streak = 0
                self.trips += 1
                return True
            return False

    def force_probe(self) -> None:
        """Move an open breaker to half-open *now* — the owner rebuilt
        the protected resource and wants the next request to test it."""
        with self._lock:
            if self._state == "open":
                self._state = "half_open"
                self._probes = 0

    def reset(self) -> None:
        """Back to pristine closed (tests, explicit operator action)."""
        with self._lock:
            self._state = "closed"
            self._streak = 0
            self._opened_at = None
            self._probes = 0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._advance(),
                "streak": self._streak,
                "trips": self.trips,
            }
