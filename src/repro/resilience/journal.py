"""Crash-safe JSONL journal for benchmark-suite runs.

One line per completed benchmark, appended and fsync'd as results
arrive, so a crashed or interrupted ``table1`` run loses at most the
task that was in flight.  ``--resume`` loads the journal and skips
every benchmark that already has a record.

The format is deliberately dumb — ``{"name": ..., "result": {...}}``
per line — and the loader is deliberately forgiving: a torn final line
(the classic crash artifact) or a garbage line is skipped and counted,
never fatal.  Records for the same name are last-writer-wins, so a
re-run after a retry simply supersedes the earlier record.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Any, Dict, Optional, TextIO

log = logging.getLogger(__name__)


def encode_record(record: Dict[str, Any]) -> str:
    """One record as one compact, key-sorted JSON line (no newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_record(handle: TextIO, record: Dict[str, Any], fsync: bool = True) -> None:
    """Append one JSONL record to an open handle and flush it.

    ``fsync=True`` (the journal's mode) forces the line to disk before
    returning — crash-safe, one syscall per record.  ``fsync=False``
    (the trace exporter's mode, :mod:`repro.obs.trace`) only flushes to
    the OS: span records are high-volume observability data, worth at
    most the process's last buffer on a crash, never an fsync each.
    """
    handle.write(encode_record(record) + "\n")
    handle.flush()
    if fsync:
        os.fsync(handle.fileno())


class SuiteJournal:
    """Append-only journal of completed benchmark records."""

    def __init__(self, path: str):
        self.path = path
        self.skipped_lines = 0

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Dict[str, Dict[str, Any]]:
        """name → record for every well-formed line (last wins)."""
        records: Dict[str, Dict[str, Any]] = {}
        self.skipped_lines = 0
        if not self.exists():
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    name = record["name"]
                except (ValueError, KeyError, TypeError):
                    self.skipped_lines += 1
                    continue
                records[name] = record
        if self.skipped_lines:
            log.warning(
                "journal %s: skipped %d malformed line(s)",
                self.path,
                self.skipped_lines,
            )
        return records

    def append(self, record: Dict[str, Any]) -> None:
        """Write one record and force it to disk before returning."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            write_record(handle, record, fsync=True)

    def record_result(self, name: str, result_dict: Dict[str, Any]) -> None:
        self.append({"name": name, "result": result_dict})

    def clear(self) -> None:
        if self.exists():
            os.remove(self.path)


def open_journal(path: Optional[str]) -> Optional[SuiteJournal]:
    """A journal for ``path``, or None when journaling is off."""
    return SuiteJournal(path) if path else None
