"""Packaging for the repro library (Blazer reproduction, PLDI 2017).

Kept as a classic setup.py so that editable installs work in offline
environments that lack the `wheel` package needed by PEP 517 builds.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Blazer reproduction: decomposition instead of self-composition "
        "for proving the absence of timing channels (PLDI 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
