PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test test-resilience smoke-service smoke-metrics table1

test:
	$(PYTHON) -m pytest -q

test-resilience:
	$(PYTHON) -m pytest -q -m resilience

# Boot the real `repro serve` process and push Fig. 1's login pair
# through it (docs/SERVICE.md).
smoke-service:
	$(PYTHON) -m pytest -q -m service

# Boot a daemon and scrape its Prometheus `metrics` endpoint
# (docs/OBSERVABILITY.md).
smoke-metrics:
	$(PYTHON) -m pytest -q -m obs

table1:
	$(PYTHON) -m repro.cli table1 --jobs 0
