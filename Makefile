PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test test-resilience smoke-service smoke-service-load smoke-metrics diffcheck-smoke pdsc-smoke leakage-smoke perf-smoke incremental-smoke incremental-sweep bench-service bench-diffcheck bench-leakage table1

test: diffcheck-smoke pdsc-smoke leakage-smoke perf-smoke incremental-smoke smoke-service-load
	$(PYTHON) -m pytest -q

# Differential fuzz smoke: 500 generated programs cross-checked against
# the ground-truth timing oracle at a pinned seed (docs/DIFFCHECK.md),
# dispatched through the warm worker pool (--jobs 4).  Exit 1 =
# soundness bug.  Shrinking is off: the smoke gate only needs the
# verdicts, and precision-gap shrinks would dominate the runtime.  The
# reduced --max-pairs budget keeps the gate fast even on one core; it
# only trims the self-composition baseline's exploration (extra
# "exhausted" outcomes, never different verdicts), and full campaigns
# keep the 2500 default.
# Pinned to the three original subjects: this is the fast legacy gate,
# and the 4-subject coverage (including PDSC) lives in pdsc-smoke below.
diffcheck-smoke:
	$(PYTHON) -m repro diffcheck --seed 0 --count 500 --jobs 4 --no-shrink --max-pairs 80 --subjects blazer,selfcomp,consttime

# Four-subject differential smoke (docs/PDSC.md): 200 generated
# programs checked by Blazer, eager self-composition, the constant-time
# checker AND the property-directed (PDSC) backend, gated on zero
# soundness bugs.  Lean budgets (--quick: max_pairs=40, one refinement
# round) keep it under 90 s on one core; trimming a budget only turns
# would-be proofs into "exhausted", never flips a verdict.
pdsc-smoke:
	$(PYTHON) benchmarks/bench_diffcheck.py --quick

# The full 4-way agreement bench: a 10k-program seed-0 campaign that
# regenerates BENCH_diffcheck.json (agreement matrix, per-subject wall
# clock) and gates on soundness + agreement-rate regressions.
bench-diffcheck:
	$(PYTHON) benchmarks/bench_diffcheck.py

# Quantitative-leakage smoke (docs/LEAKAGE.md): the 8-kernel crypto
# corpus verdict matrix under both cost models, plus 200 generated
# programs (a quarter bearing priced extern calls) whose analysis
# bits-bound is cross-checked against the oracle's *exact* leakage.
# Zero under-reports and a full corpus match or the gate fails.
# Well under 60 s on one core.
leakage-smoke:
	$(PYTHON) benchmarks/bench_leakage.py --quick

# The full leakage bench: regenerates BENCH_leakage.json — bits-leaked
# bounds for every unsafe Table-1 row, the corpus matrix, and a
# 500-program oracle sweep — gated on soundness, corpus, coverage, and
# cell-count regressions against the committed report.
bench-leakage:
	$(PYTHON) benchmarks/bench_leakage.py

# Perf gate (docs/PERFORMANCE.md): the MicroBench group serial (perf
# off) and warm-pool parallel (perf on); asserts total speedup >= 1.0
# and byte-identical digests.  Well under 90 s.
perf-smoke:
	$(PYTHON) benchmarks/bench_perf.py --quick --output /tmp/bench_quick.json

# Incremental re-analysis gate (docs/PERFORMANCE.md): a 12-program
# incremental-vs-scratch equivalence sweep (digests and per-node bounds
# must agree at every refinement round) followed by the refine.delta
# sabotage self-test, which corrupts exactly one reused parent fixpoint
# and requires the sweep to flag exactly one divergence.  Under 60 s on
# one core.
incremental-smoke:
	$(PYTHON) benchmarks/bench_incremental.py --quick

# The full acceptance sweep: 300 generated programs through the
# worker pool, then the sabotage self-test (serial, small count — the
# injected fault fires on the first reused artifact).  The same battery
# runs under pytest as `-m incremental`
# (tests/properties/test_incremental_props.py).
incremental-sweep:
	$(PYTHON) benchmarks/bench_incremental.py
	$(PYTHON) benchmarks/bench_incremental.py --sabotage --count 24

test-resilience:
	$(PYTHON) -m pytest -q -m resilience

# Boot the real `repro serve` process and push Fig. 1's login pair
# through it (docs/SERVICE.md).
smoke-service:
	$(PYTHON) -m pytest -q -m service

# Boot a daemon and scrape its Prometheus `metrics` endpoint
# (docs/OBSERVABILITY.md).
smoke-metrics:
	$(PYTHON) -m pytest -q -m obs

# Async-tier load gate (docs/SERVICE.md): ~200 concurrent clients of
# mixed traffic through the in-process asyncio daemon *with the chaos
# plan on* (injected worker delays + one injected error), audited for
# zero lost and zero wrongly-settled jobs.  Finishes well under 60s.
smoke-service-load:
	$(PYTHON) benchmarks/bench_service.py --quick --output /tmp/bench_service_quick.json
	$(PYTHON) -m pytest -q -m service_load

# The full service benchmark: 1000-client clean scenario (publishes
# p50/p99 into BENCH_service.json, gated against the committed report),
# chaos scenario, and a graceful drain + restart scenario.
bench-service:
	$(PYTHON) benchmarks/bench_service.py --output BENCH_service.json

table1:
	$(PYTHON) -m repro.cli table1 --jobs 0
