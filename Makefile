PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test test-resilience smoke-service smoke-metrics diffcheck-smoke table1

test: diffcheck-smoke
	$(PYTHON) -m pytest -q

# Differential fuzz smoke: 200 generated programs cross-checked against
# the ground-truth timing oracle at a pinned seed (docs/DIFFCHECK.md).
# Exit 1 = soundness bug.  Shrinking is off: the smoke gate only needs
# the verdicts, and precision-gap shrinks would dominate the runtime.
# The reduced --max-pairs budget keeps the gate under a minute even on
# one core; it only trims the self-composition baseline's exploration
# (extra "exhausted" outcomes, never different verdicts), and full
# campaigns keep the 2500 default.
diffcheck-smoke:
	$(PYTHON) -m repro diffcheck --seed 0 --count 200 --jobs 1 --no-shrink --max-pairs 80

test-resilience:
	$(PYTHON) -m pytest -q -m resilience

# Boot the real `repro serve` process and push Fig. 1's login pair
# through it (docs/SERVICE.md).
smoke-service:
	$(PYTHON) -m pytest -q -m service

# Boot a daemon and scrape its Prometheus `metrics` endpoint
# (docs/OBSERVABILITY.md).
smoke-metrics:
	$(PYTHON) -m pytest -q -m obs

table1:
	$(PYTHON) -m repro.cli table1 --jobs 0
