"""Channel capacity (§3.4): proving "leaks at most one bit".

Timing-channel freedom demands *one* running time per public input; the
channel-capacity property ccf(q) relaxes this to at most q — a
(q+1)-safety property, verified here with the same trail machinery by
counting time bands (taint splits take the max over components, sec
splits the sum).

The demo program leaks exactly whether the secret is positive: two
running times per public input, never more.  ccf(1) fails, ccf(2) is
proved, and the concrete interpreter confirms both statically-claimed
facts.

Run with::

    python examples/channel_capacity.py
"""

from repro.core import Blazer
from repro.core.capacity import verify_channel_capacity
from repro.core.ksafety import ccf, tcf
from repro.interp import Interpreter

PROGRAM = """
proc oneBit(secret h: int, public l: uint): int {
    var i: int = 0;
    if (h > 0) {
        while (i < l) { i = i + 1; }
    }
    return i;
}
"""


def main() -> None:
    blazer = Blazer.from_source(PROGRAM)

    for q in (1, 2):
        verdict = verify_channel_capacity(blazer, "oneBit", q)
        print(verdict.render())
        print()

    print("-- empirical confirmation " + "-" * 43)
    interp = Interpreter(blazer.cfgs)
    traces = [
        interp.run("oneBit", {"h": h, "l": l})
        for l in (0, 2, 4)
        for h in (-3, 0, 1, 7)
    ]
    times_per_low = {}
    for trace in traces:
        times_per_low.setdefault(trace.input("l"), set()).add(trace.time)
    for low, times in sorted(times_per_low.items()):
        print("  l=%d: running times %s" % (low, sorted(times)))
    assert not tcf(epsilon=1).holds(traces), "there IS a channel"
    assert ccf(q=2, epsilon=1).holds(traces), "but it carries at most 1 bit"
    print()
    print("tcf fails (a channel exists) but ccf(q=2) holds: per public")
    print("input there are exactly two achievable times — the channel")
    print("leaks at most one bit about the secret, as proved statically.")


if __name__ == "__main__":
    main()
