"""A tour of the library's layers, driven by hand.

Walks one program through every substrate the paper's tool is built
from: source → bytecode → register IR/CFG → taint → most general trail
(annotated regex) → manual trail refinement → per-trail bound analysis —
the individual steps the ``analyze_source`` driver automates.

Run with::

    python examples/library_tour.py
"""

from repro.bounds import BoundAnalysis
from repro.bytecode import compile_program, disassemble, verify_module
from repro.domains import DOMAINS
from repro.ir import lift_module
from repro.lang import frontend
from repro.taint import analyze_taint
from repro.trails import Trail, annotate_trail, split_trail, verify_cover

SOURCE = """
proc bar(secret high: int, public low: int) {
    var i: int = 0;
    if (low > 0) {
        while (i < low) { i = i + 1; }
        while (i > 0) { i = i - 1; }
    } else {
        if (high == 0) { i = 5; } else { i = 7; }
    }
}
"""


def main() -> None:
    print("1. front-end: parse + type check")
    program = frontend(SOURCE)

    print("2. compile to stack bytecode (and verify it)")
    module = compile_program(program)
    verify_module(module)
    print("   %d bytecode instructions" % len(module.code("bar").instrs))
    print()
    print(disassemble(module.code("bar")))

    print()
    print("3. lift to a register-IR CFG")
    cfg = lift_module(module)["bar"]
    print("   %d basic blocks, %d branch blocks" % (cfg.size, len(cfg.branch_blocks())))

    print()
    print("4. taint analysis (which branches depend on low/high data)")
    taint = analyze_taint(cfg)
    print("   " + str(taint).replace("\n", "\n   "))

    print()
    print("5. the most general trail, annotated (Section 4.2)")
    trail = Trail.most_general(cfg)
    annotated = annotate_trail(trail.regex(), cfg, taint)
    print("   " + annotated.render())

    print()
    print("6. refine at the first low-only branch (REFINEPARTITION)")
    low_branch = taint.low_branches()[0]
    components = split_trail(trail, low_branch, "taint")
    assert verify_cover(trail, components)
    print("   split at b%d into %d components (cover verified)" % (
        low_branch, len(components)))

    print()
    print("7. per-trail bound analysis (BOUNDANALYSIS)")
    domain = DOMAINS["zone"]
    for component in components:
        result = BoundAnalysis(cfg, domain, trail_dfa=component.dfa).compute()
        print("   %-28s -> %s" % (component.description, result))
    whole = BoundAnalysis(cfg, domain, trail_dfa=trail.dfa).compute()
    print("   %-28s -> %s" % ("(whole program)", whole))
    print()
    print("Each component's range is narrow; the trail choice depends only")
    print("on low data, so Theorem 3.1 lets us conclude timing-channel")
    print("freedom without ever analyzing two executions at once.")


if __name__ == "__main__":
    main()
