"""Quickstart: prove one program timing-channel free, break another.

Run with::

    python examples/quickstart.py
"""

from repro import analyze_source

# A password-style check that does the same amount of work regardless of
# the secret: Blazer proves it safe.
SAFE = """
proc check(secret pin: int, public attempts: uint): bool {
    var i: int = 0;
    var granted: bool = false;
    while (i < attempts) {
        i = i + 1;
    }
    if (pin == 1234) {
        granted = true;
    } else {
        granted = false;
    }
    return granted;
}
"""

# The same shape, except the loop only runs when the secret matches: the
# running time now reveals the comparison's outcome.
LEAKY = """
proc check(secret pin: int, public attempts: uint): bool {
    var i: int = 0;
    if (pin == 1234) {
        while (i < attempts) {
            i = i + 1;
        }
        return true;
    }
    return false;
}
"""


def main() -> None:
    print("== safe version " + "=" * 50)
    verdict = analyze_source(SAFE, "check")
    print(verdict.render())
    assert verdict.status == "safe"

    print()
    print("== leaky version " + "=" * 49)
    verdict = analyze_source(LEAKY, "check")
    print(verdict.render())
    assert verdict.status == "attack"

    print()
    print("The attack specification above names two trails whose choice")
    print("depends on the secret pin but whose running times differ —")
    print("exactly the static witness schema of the paper's Section 2.3.")


if __name__ == "__main__":
    main()
