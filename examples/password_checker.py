"""The paper's Figure 1 scenario: loginSafe vs loginBad (PPM16).

Analyzes both versions of the password check, prints the trail trees
with their symbolic bounds, and then *validates* the attack
specification of the bad version by finding a concrete pair of runs
with equal public inputs, different secrets, and different running
times (the step the paper leaves to "a programmer or an
under-approximate analysis").

Run with::

    python examples/password_checker.py
"""

from repro.benchsuite import SUITE
from repro.core.witness import find_witness
from repro.interp import Interpreter


def analyze(name: str):
    bench = SUITE.get(name)
    blazer = bench.analyzer()
    verdict = blazer.analyze(bench.proc)
    print("=" * 70)
    print(verdict.render())
    return bench, blazer, verdict


def main() -> None:
    analyze("login_safe")
    print()
    bench, blazer, verdict = analyze("login_unsafe")

    print()
    print("-- validating the attack specification concretely " + "-" * 19)
    interp = Interpreter(blazer.cfgs)
    witness = find_witness(
        interp,
        blazer.cfgs[bench.proc],
        gap=20,
        spec=verdict.attack,
        overrides={
            "user_exists": [1],
            "guess": [[7] * 12],
            # Include an empty stored password: the attack's second trail
            # ("never enters the in-bounds comparison") needs one.
            "user_pw": [[7] * 12, [9] + [7] * 11, [7] * 6 + [9] * 6, []],
        },
    )
    assert witness is not None
    print(witness)
    print()
    print("Same guess, different stored passwords, a %d-instruction gap:" % witness.gap)
    print("the early-exit comparison leaks how much of the guess matches —")
    print("the Tenex password-guessing bug, rediscovered statically.")


if __name__ == "__main__":
    main()
