"""Section 3 as running code: quotient partitions on enumerated traces.

Demonstrates the paper's semantic layer directly, independent of the
static analysis: enumerates the concrete traces of a program, builds a
ψ_tcf-quotient partition (by public input), checks RBPS properties per
component, and confirms Theorem 3.1's conclusion.  Also exercises the
generalizations of §3.4: determinism (det) and channel capacity (ccf,
a 3-safety property).

Run with::

    python examples/quotient_partitioning.py
"""

from repro.core.ksafety import (
    ccf,
    det,
    is_quotient_partition,
    per_low_time_function,
    psi_ccf,
    psi_tcf,
    tcf,
    theorem_3_1_conclusion,
)
from repro.interp import Interpreter
from repro.lang import frontend
from repro.bytecode import compile_program, verify_module
from repro.ir import lift_module

PROGRAM = """
proc demo(secret h: int, public l: uint): int {
    var i: int = 0;
    while (i < l) { i = i + 1; }
    if (h > 0) { i = i + 1; } else { i = i + 1; }
    return i;
}
"""

LEAKY = """
proc demo(secret h: int, public l: uint): int {
    var i: int = 0;
    if (h > 0) {
        while (i < l) { i = i + 1; }
    }
    return i;
}
"""


def traces_of(source, lows, highs):
    module = compile_program(frontend(source))
    verify_module(module)
    interp = Interpreter(lift_module(module))
    return [interp.run("demo", {"h": h, "l": l}) for l in lows for h in highs]


def main() -> None:
    lows, highs = [0, 1, 3, 5], [-2, 0, 1, 7]
    traces = traces_of(PROGRAM, lows, highs)
    print("enumerated %d traces of the balanced program" % len(traces))

    # The ψ_tcf-quotient partition: group traces by their public inputs.
    by_low = {}
    for trace in traces:
        by_low.setdefault(trace.low_inputs, []).append(trace)
    partition = list(by_low.values())
    assert is_quotient_partition(traces, partition, psi_tcf, k=2)
    print("grouping by public input is a ψ_tcf-quotient partition "
          "(%d components)" % len(partition))

    # Per-component non-relational properties: time is a function of low.
    properties = []
    for component in partition:
        times = sorted({t.time for t in component})
        print(
            "  component low=%s: times %s (width %d)"
            % (dict(component[0].low_inputs), times, times[-1] - times[0])
        )
        properties.append(per_low_time_function(component))

    # Theorem 3.1, executable: premises hold => tcf holds.
    assert theorem_3_1_conclusion(tcf(1), psi_tcf, traces, partition, properties)
    print("Theorem 3.1 checks out: the program satisfies tcf (epsilon=1)")
    assert det().holds(traces)
    print("determinism (the det 2-safety property of §3.4) also holds")

    print()
    leaky = traces_of(LEAKY, lows, highs)
    print("enumerated %d traces of the leaky program" % len(leaky))
    violations = tcf(1).violations(leaky)
    print("tcf is violated by %d trace pairs, e.g.:" % len(violations))
    a, b = violations[0]
    print("  %s" % a)
    print("  %s" % b)
    # But at most two distinct times occur per public input, so channel
    # capacity q=2 (a 3-safety property) still holds:
    assert ccf(q=2, epsilon=1).holds(leaky)
    print("channel capacity ccf(q=2) holds: at most 2 times per public input")


if __name__ == "__main__":
    main()
