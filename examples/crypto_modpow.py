"""Kocher '96 on modular exponentiation: static verdicts + live timings.

Analyzes the square-and-multiply benchmarks (STAC modPow1 and Kocher's
k96) and then demonstrates the channel dynamically: running the unsafe
version on 64-bit exponents of different Hamming weight shows the
instruction count tracking the number of one-bits, while the safe
version's time is flat.

Run with::

    python examples/crypto_modpow.py
"""

from repro.benchsuite import SUITE
from repro.interp import Interpreter
from repro.lang import frontend
from repro.bytecode import compile_program, verify_module
from repro.ir import lift_module


def analyze(name: str) -> None:
    bench = SUITE.get(name)
    verdict = bench.run()
    print("=" * 70)
    print(verdict.render())


def timing_demo() -> None:
    bench = SUITE.get("k96_unsafe")
    safe = SUITE.get("k96_safe")

    def interp_for(b):
        module = compile_program(frontend(b.source))
        verify_module(module)
        return Interpreter(lift_module(module))

    unsafe_interp = interp_for(bench)
    safe_interp = interp_for(safe)

    width = 64
    top = 1 << (width - 1)
    exponents = {
        "weight 1 ": top,
        "weight 8 ": top | 0b1111111,
        "weight 32": int("10" * 32, 2) | top,
        "weight 64": (1 << width) - 1,
    }
    modulus = (1 << 61) - 1
    print()
    print("-- dynamic timings (64-bit exponents, instruction counts) " + "-" * 10)
    print("%-12s %16s %16s" % ("exponent", "k96_unsafe", "k96_safe"))
    for label, e in exponents.items():
        t_unsafe = unsafe_interp.time_of("k96_unsafe", [3, e, modulus])
        t_safe = safe_interp.time_of("k96_safe", [3, e, modulus])
        print("%-12s %16d %16d" % (label, t_unsafe, t_safe))
    print()
    print("The unsafe column grows with the exponent's Hamming weight —")
    print("Kocher's channel.  The safe column is constant: the dummy")
    print("multiply makes every iteration cost the same.")


def constant_time_comparison() -> None:
    """TCF is strictly weaker than constant-time (related work, §7)."""
    from repro.core.consttime import verify_constant_time

    bench = SUITE.get("modPow1_safe")
    blazer = bench.analyzer()
    tcf_verdict = blazer.analyze(bench.proc)
    ct_verdict = verify_constant_time(blazer, bench.proc)
    print()
    print("-- TCF vs constant-time " + "-" * 45)
    print("modPow1_safe TCF verdict: %s" % tcf_verdict.status.upper())
    print(ct_verdict.render())
    print("The dummy multiply balances the *cost* of the secret branch,")
    print("so timing-channel freedom holds even though the control flow")
    print("depends on the exponent bits — the separation the paper draws")
    print("from Almeida et al.'s stricter constant-time property.")


def main() -> None:
    for name in ("modPow1_safe", "modPow1_unsafe", "k96_unsafe"):
        analyze(name)
        print()
    timing_demo()
    constant_time_comparison()


if __name__ == "__main__":
    main()
