"""Regenerate Table 1 of the paper.

Runs Blazer on all 24 benchmarks and prints, per row: the benchmark
name, CFG size (basic blocks), the verdict, the safety-verification
time, and the safety+attack-search time (``-`` for safe benchmarks,
which need no attack search) — the same columns the paper reports.

Usage::

    python benchmarks/table1.py [--group MicroBench|STAC|Literature]
                                [--jobs N] [--retries N] [--deadline S]
                                [--journal PATH] [--resume]
                                [--bench-json PATH]

Besides the paper's columns, the run prints a per-phase timing table
(taint / bounds / refine / attack — docs/OBSERVABILITY.md) and merges
the phase totals into the machine-readable ``BENCH_table1.json``
(``--bench-json``; the perf harness's other keys in that file are
preserved).

``--jobs N`` fans the rows out over a process pool (see
docs/PERFORMANCE.md).  ``--retries`` / ``--journal`` / ``--resume`` /
``--deadline`` are the crash-safe execution knobs of
docs/RESILIENCE.md: failed rows are retried serially with backoff,
completed rows are journaled as they land, and ``--resume`` skips rows
the journal already has.  The exit status is non-zero when any row's
verdict disagrees with the paper's (a MISMATCH row), so CI can gate on
verdict correctness; budget-degraded rows exit with the distinct
code 4, an interrupted run with 130.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.benchsuite import ALL_BENCHMARKS, Benchmark, BenchResult, ParallelSuiteRunner
from repro.util.errors import SuiteInterrupted
from repro.util.table import render_table

EXIT_DEGRADED = 4
EXIT_INTERRUPTED = 130

# Column order for the per-phase timing table; matches the driver's
# phase_seconds keys (repro.core.blazer._phase_snapshot).
PHASES = ("taint", "bounds", "refine", "attack", "total")
DEFAULT_BENCH_JSON = "BENCH_table1.json"


def result_row(result: BenchResult) -> List[object]:
    attack_time = (
        "-"
        if result.status == "safe"
        else "%.2f" % (result.safety_seconds + result.attack_seconds)
    )
    verdict_col = "DEGRADED" if result.degraded else (
        "OK" if result.ok else "MISMATCH"
    )
    return [
        result.name,
        result.group,
        result.size,
        result.status,
        "%.2f" % result.safety_seconds,
        attack_time,
        verdict_col,
    ]


def run_suite(
    group: Optional[str] = None,
    jobs: int = 1,
    backend: str = "auto",
    retries: int = 0,
    deadline: Optional[float] = None,
    task_timeout: Optional[float] = None,
    journal: Optional[str] = None,
    resume: bool = False,
) -> List[BenchResult]:
    benches: List[Benchmark] = [
        b for b in ALL_BENCHMARKS if group is None or b.group == group
    ]
    return ParallelSuiteRunner(
        benches,
        jobs=jobs,
        backend=backend,
        retries=retries,
        deadline=deadline,
        task_timeout=task_timeout,
        journal=journal,
        resume=resume,
    ).run()


def render(results: List[BenchResult]) -> str:
    table = render_table(
        ["Benchmark", "Group", "Size", "Verdict", "Safety (s)", "w/Attack (s)", "vs Table 1"],
        [result_row(r) for r in results],
        aligns=["l", "l", "r", "l", "r", "r", "l"],
    )
    header = (
        "Table 1 reproduction — verdicts and median-style timings\n"
        "(absolute times are not comparable to the paper's 2017 testbed;\n"
        " the verdict column and the relative outliers are the result)\n"
    )
    return header + "\n" + table


def aggregate_phases(results: List[BenchResult]) -> Dict[str, float]:
    """Suite-wide wall seconds per analysis phase."""
    totals = {name: 0.0 for name in PHASES}
    for result in results:
        for name in PHASES:
            totals[name] += float(result.phase_seconds.get(name, 0.0))
    return {name: round(totals[name], 6) for name in PHASES}


def render_phases(results: List[BenchResult]) -> str:
    rows = [
        [r.name]
        + ["%.3f" % float(r.phase_seconds.get(name, 0.0)) for name in PHASES]
        for r in results
    ]
    totals = aggregate_phases(results)
    rows.append(["TOTAL"] + ["%.3f" % totals[name] for name in PHASES])
    table = render_table(
        ["Benchmark"] + [name.capitalize() + " (s)" for name in PHASES],
        rows,
        aligns=["l"] + ["r"] * len(PHASES),
    )
    header = (
        "Per-phase wall time (taint tracking, loop-bound analysis,\n"
        "partition refinement, attack search; docs/OBSERVABILITY.md)\n"
    )
    return header + "\n" + table


def persist_phases(
    results: List[BenchResult], path: str = DEFAULT_BENCH_JSON
) -> Dict[str, Any]:
    """Merge a ``phases`` section into the bench JSON at ``path``.

    ``BENCH_table1.json`` is shared with ``benchmarks/bench_perf.py``
    (schema ``{generated, jobs, faults, benchmarks, total}``), so the
    file is read-merged-written: every key the perf harness owns is
    preserved, only ``phases`` is replaced.
    """
    report: Dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                report = loaded
        except (OSError, ValueError):
            pass  # corrupt or unreadable: rewrite with just the phases
    report["phases"] = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rows": {
            r.name: {
                name: round(float(r.phase_seconds.get(name, 0.0)), 6)
                for name in PHASES
            }
            for r in results
        },
        "total": aggregate_phases(results),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def generate(group: Optional[str] = None, jobs: int = 1) -> str:
    return render(run_suite(group, jobs=jobs))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--group", choices=["MicroBench", "STAC", "Literature"])
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU; default: serial)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run a failed row up to N times on the serial backend",
    )
    parser.add_argument(
        "--deadline", type=float, help="per-benchmark wall-clock budget (seconds)"
    )
    parser.add_argument(
        "--task-timeout", type=float, help="hard per-benchmark worker timeout"
    )
    parser.add_argument(
        "--journal", help="crash-safe JSONL journal of completed rows"
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip rows already recorded in the journal",
    )
    parser.add_argument(
        "--bench-json",
        default=DEFAULT_BENCH_JSON,
        help="merge per-phase timings into this JSON report"
        " (default: %(default)s; empty string disables)",
    )
    args = parser.parse_args()
    journal = args.journal
    if journal is None and (args.resume or args.retries):
        journal = ".table1.journal.jsonl"
    try:
        results = run_suite(
            args.group,
            jobs=args.jobs,
            retries=args.retries,
            deadline=args.deadline,
            task_timeout=args.task_timeout,
            journal=journal,
            resume=args.resume,
        )
    except (SuiteInterrupted, KeyboardInterrupt) as exc:
        print("interrupted: %s" % exc, file=sys.stderr)
        return EXIT_INTERRUPTED
    print(render(results))
    print()
    print(render_phases(results))
    if args.bench_json:
        persist_phases(results, args.bench_json)
        print("per-phase timings merged into %s" % args.bench_json)
    degraded = [r.name for r in results if r.degraded]
    mismatches = [r.name for r in results if not r.ok and not r.degraded]
    if mismatches:
        print(
            "MISMATCH in %d row(s): %s" % (len(mismatches), ", ".join(mismatches)),
            file=sys.stderr,
        )
        return 1
    if degraded:
        print(
            "DEGRADED (budget exhausted) in %d row(s): %s"
            % (len(degraded), ", ".join(degraded)),
            file=sys.stderr,
        )
        return EXIT_DEGRADED
    return 0


if __name__ == "__main__":
    sys.exit(main())
