"""Regenerate Table 1 of the paper.

Runs Blazer on all 24 benchmarks and prints, per row: the benchmark
name, CFG size (basic blocks), the verdict, the safety-verification
time, and the safety+attack-search time (``-`` for safe benchmarks,
which need no attack search) — the same columns the paper reports.

Usage::

    python benchmarks/table1.py [--group MicroBench|STAC|Literature]
                                [--jobs N]

``--jobs N`` fans the rows out over a process pool (see
docs/PERFORMANCE.md).  The exit status is non-zero when any row's
verdict disagrees with the paper's (a MISMATCH row), so CI can gate on
verdict correctness.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.benchsuite import ALL_BENCHMARKS, Benchmark, BenchResult, ParallelSuiteRunner
from repro.util.table import render_table


def result_row(result: BenchResult) -> List[object]:
    attack_time = (
        "-"
        if result.status == "safe"
        else "%.2f" % (result.safety_seconds + result.attack_seconds)
    )
    return [
        result.name,
        result.group,
        result.size,
        result.status,
        "%.2f" % result.safety_seconds,
        attack_time,
        "OK" if result.ok else "MISMATCH",
    ]


def run_suite(
    group: Optional[str] = None, jobs: int = 1, backend: str = "auto"
) -> List[BenchResult]:
    benches: List[Benchmark] = [
        b for b in ALL_BENCHMARKS if group is None or b.group == group
    ]
    return ParallelSuiteRunner(benches, jobs=jobs, backend=backend).run()


def render(results: List[BenchResult]) -> str:
    table = render_table(
        ["Benchmark", "Group", "Size", "Verdict", "Safety (s)", "w/Attack (s)", "vs Table 1"],
        [result_row(r) for r in results],
        aligns=["l", "l", "r", "l", "r", "r", "l"],
    )
    header = (
        "Table 1 reproduction — verdicts and median-style timings\n"
        "(absolute times are not comparable to the paper's 2017 testbed;\n"
        " the verdict column and the relative outliers are the result)\n"
    )
    return header + "\n" + table


def generate(group: Optional[str] = None, jobs: int = 1) -> str:
    return render(run_suite(group, jobs=jobs))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--group", choices=["MicroBench", "STAC", "Literature"])
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU; default: serial)",
    )
    args = parser.parse_args()
    results = run_suite(args.group, jobs=args.jobs)
    print(render(results))
    mismatches = [r.name for r in results if not r.ok]
    if mismatches:
        print(
            "MISMATCH in %d row(s): %s" % (len(mismatches), ", ".join(mismatches)),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
