"""Regenerate Table 1 of the paper.

Runs Blazer on all 24 benchmarks and prints, per row: the benchmark
name, CFG size (basic blocks), the verdict, the safety-verification
time, and the safety+attack-search time (``-`` for safe benchmarks,
which need no attack search) — the same columns the paper reports.

Usage::

    python benchmarks/table1.py [--group MicroBench|STAC|Literature]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.benchsuite import ALL_BENCHMARKS, Benchmark
from repro.util.table import render_table


def run_row(bench: Benchmark):
    verdict = bench.run()
    attack_time = "-" if verdict.status == "safe" else "%.2f" % verdict.total_seconds
    expected = "OK" if verdict.status == bench.expect else "MISMATCH"
    return [
        bench.name,
        bench.group,
        verdict.size,
        verdict.status,
        "%.2f" % verdict.safety_seconds,
        attack_time,
        expected,
    ]


def generate(group: Optional[str] = None) -> str:
    benches: List[Benchmark] = [
        b for b in ALL_BENCHMARKS if group is None or b.group == group
    ]
    rows = [run_row(b) for b in benches]
    table = render_table(
        ["Benchmark", "Group", "Size", "Verdict", "Safety (s)", "w/Attack (s)", "vs Table 1"],
        rows,
        aligns=["l", "l", "r", "l", "r", "r", "l"],
    )
    header = (
        "Table 1 reproduction — verdicts and median-style timings\n"
        "(absolute times are not comparable to the paper's 2017 testbed;\n"
        " the verdict column and the relative outliers are the result)\n"
    )
    return header + "\n" + table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--group", choices=["MicroBench", "STAC", "Literature"])
    args = parser.parse_args()
    print(generate(args.group))
    return 0


if __name__ == "__main__":
    sys.exit(main())
