"""Micro-benchmarks of the pipeline substrates.

Times the individual stages the end-to-end numbers are made of: parse,
type-check, compile, verify, lift, taint, most-general-trail regex, and
one trail-restricted bound analysis — useful for locating regressions.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from repro.benchsuite import SUITE
from repro.bounds import compute_bound
from repro.bytecode import compile_program, verify_module
from repro.cfg import most_general_trail_regex
from repro.domains import DOMAINS
from repro.ir import lift_module
from repro.lang import check_program, parse_program
from repro.taint import analyze_taint

SOURCE = SUITE.get("login_safe").source
PROC = "login_safe"


@pytest.fixture(scope="module")
def pipeline():
    program = check_program(parse_program(SOURCE))
    module = compile_program(program)
    verify_module(module)
    cfgs = lift_module(module)
    return program, module, cfgs


def test_parse(benchmark):
    benchmark(parse_program, SOURCE)


def test_typecheck(benchmark):
    benchmark(lambda: check_program(parse_program(SOURCE)))


def test_compile(benchmark, pipeline):
    program, _, _ = pipeline
    benchmark(compile_program, program)


def test_verify(benchmark, pipeline):
    _, module, _ = pipeline
    benchmark(verify_module, module)


def test_lift(benchmark, pipeline):
    _, module, _ = pipeline
    benchmark(lift_module, module)


def test_taint(benchmark, pipeline):
    _, _, cfgs = pipeline
    benchmark(analyze_taint, cfgs[PROC])


def test_most_general_trail(benchmark, pipeline):
    _, _, cfgs = pipeline
    benchmark(most_general_trail_regex, cfgs[PROC])


@pytest.mark.parametrize("domain", ["interval", "zone", "octagon"])
def test_bound_analysis(benchmark, pipeline, domain):
    _, _, cfgs = pipeline
    benchmark.pedantic(
        lambda: compute_bound(cfgs[PROC], DOMAINS[domain]), rounds=2, iterations=1
    )
