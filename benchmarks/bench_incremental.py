"""Incremental-plane equivalence gate: generated-program sweep + sabotage.

Two modes over :mod:`repro.diffcheck.equivalence`:

* **clean** (default): a seeded sweep of ``--count`` generated programs
  (the acceptance gate runs >= 300), each analyzed by the Blazer driver
  with the incremental re-analysis plane forced on and forced off.  The
  gate fails on any divergence — verdict status, verdict digest, or any
  single partition node's bound at any refinement round — and on any
  worker error.  It also fails when the sweep never exercised the plane
  (zero ``refine.reuse`` probes would mean the battery tests nothing).

* ``--sabotage``: the proof the gate has teeth.  A
  ``refine.delta:corrupt`` fault plan replaces exactly one reused
  parent fixpoint artifact with a zero-iteration claim; the sweep must
  flag **exactly one** divergent program, and the injected-fault event
  counter must confirm the corruption actually fired.  Sabotage sweeps
  run serially whatever ``--jobs`` says: fault hit counters are per
  process, so a pool would fire the spec once per worker.

Usage::

    python benchmarks/bench_incremental.py [--seed S] [--count N]
        [--jobs N] [--output PATH] [--scratch-seed-engine]
    python benchmarks/bench_incremental.py --sabotage [--count N]
    python benchmarks/bench_incremental.py --quick   # smoke: small clean
                                                     # sweep + sabotage

Exit status: 0 clean, 1 on any gate failure.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.diffcheck.equivalence import EquivalenceConfig, run_sweep
from repro.perf import runtime
from repro.resilience import faults

# The smoke sweep (--quick / make incremental-smoke) stays small enough
# to finish alongside the sabotage check in well under 60 s on one core.
QUICK_COUNT = 12
SABOTAGE_SPEC = "refine.delta:corrupt@1"


def run_clean(config: EquivalenceConfig, jobs: int, output: str) -> int:
    print(
        "equivalence sweep: %d programs (seed %d), incremental on vs off, "
        "--jobs %d..." % (config.count, config.seed, jobs)
    )
    report = run_sweep(config, jobs=jobs)
    summary = report.to_dict()["summary"]
    print(
        "  divergences=%d errors=%d refine.reuse=%d/%d (hit rate %.1f%%)"
        % (
            summary["divergences"],
            summary["errors"],
            summary["reuse_hits"],
            summary["reuse_misses"],
            100 * report.reuse_hit_rate(),
        )
    )
    if output:
        with open(output, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("report written to %s" % output)

    failed = False
    for outcome in report.divergences:
        print(
            "FAIL: %s diverged (status %s vs %s, nodes: %s)"
            % (
                outcome.name,
                outcome.status_incremental,
                outcome.status_scratch,
                ", ".join(outcome.divergent_nodes) or "digest only",
            ),
            file=sys.stderr,
        )
        failed = True
    for outcome in report.errors:
        print("FAIL: %s errored: %s" % (outcome.name, outcome.error), file=sys.stderr)
        failed = True
    if report.reuse_hits + report.reuse_misses == 0:
        print(
            "FAIL: sweep never probed the refinement-reuse tier "
            "(the battery exercised nothing)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def run_sabotage(config: EquivalenceConfig) -> int:
    print(
        "sabotage sweep: %d programs under %s (serial)..."
        % (config.count, SABOTAGE_SPEC)
    )
    before = runtime.STATS.events_snapshot()
    plan = faults.FaultPlan.from_string(SABOTAGE_SPEC)
    faults.install(plan)
    try:
        report = run_sweep(config, jobs=1, backend="serial")
    finally:
        faults.clear()
    fired = runtime.STATS.events_delta(before).get("fault.corrupt", 0)
    divergent = [o.name for o in report.divergences]
    print(
        "  divergences=%d (%s), fault.corrupt events=%d"
        % (len(divergent), ", ".join(divergent) or "none", fired)
    )

    failed = False
    if fired != 1:
        print(
            "FAIL: expected exactly one injected corruption, saw %d" % fired,
            file=sys.stderr,
        )
        failed = True
    if len(divergent) != 1:
        print(
            "FAIL: sabotaged sweep flagged %d divergent program(s), "
            "expected exactly 1" % len(divergent),
            file=sys.stderr,
        )
        failed = True
    if report.errors:
        for outcome in report.errors:
            print(
                "FAIL: %s errored: %s" % (outcome.name, outcome.error),
                file=sys.stderr,
            )
        failed = True
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--count", type=int, default=300, help="programs per sweep"
    )
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--output", default="", help="JSON report path")
    parser.add_argument(
        "--scratch-seed-engine",
        action="store_true",
        help="compare against the perf-off seed engine instead of the "
        "perf-on/incremental-off engine (slower, strongest oracle)",
    )
    parser.add_argument(
        "--sabotage",
        action="store_true",
        help="inject %s and assert exactly one flagged divergence"
        % SABOTAGE_SPEC,
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: %d-program clean sweep, then the sabotage check"
        % QUICK_COUNT,
    )
    args = parser.parse_args()

    count = QUICK_COUNT if args.quick else args.count
    config = EquivalenceConfig(
        seed=args.seed,
        count=count,
        scratch_perf=not args.scratch_seed_engine,
    )
    if args.sabotage:
        return run_sabotage(config)
    status = run_clean(config, jobs=args.jobs, output=args.output)
    if args.quick and status == 0:
        status = run_sabotage(config)
    return status


if __name__ == "__main__":
    sys.exit(main())
