"""pytest-benchmark timings for every Table-1 row.

Each benchmark measures one full Blazer run (pipeline + safety phase +
attack phase where applicable), one round each — these are end-to-end
verification timings, not micro-benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.benchsuite import ALL_BENCHMARKS

FAST = [b for b in ALL_BENCHMARKS if b.name != "modPow2_unsafe"]
SLOW = [b for b in ALL_BENCHMARKS if b.name == "modPow2_unsafe"]


@pytest.mark.parametrize("bench", FAST, ids=lambda b: b.name)
def test_table1_row(benchmark, bench):
    verdict = benchmark.pedantic(bench.run, rounds=1, iterations=1)
    assert verdict.status == bench.expect


@pytest.mark.slow
@pytest.mark.parametrize("bench", SLOW, ids=lambda b: b.name)
def test_table1_row_outlier(benchmark, bench):
    """modPow2_unsafe: the paper's dominant outlier (31758s there)."""
    verdict = benchmark.pedantic(bench.run, rounds=1, iterations=1)
    assert verdict.status == bench.expect
