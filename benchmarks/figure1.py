"""Regenerate Figure 1 of the paper: the loginSafe / loginBad trees.

Prints, for each of the two programs, the tree of trails Blazer builds:
each node shows the split kind (taint vs sec), the trail description,
its [lower, upper] running-time bounds, and its status — green/safe
nodes vs the red/attack pair, in text form.

Usage::

    python benchmarks/figure1.py
"""

from __future__ import annotations

import sys

from repro.benchsuite import SUITE
from repro.taint import analyze_taint
from repro.trails import Trail, annotate_trail


def show(name: str) -> str:
    bench = SUITE.get(name)
    blazer = bench.analyzer()
    verdict = blazer.analyze(bench.proc)
    cfg = blazer.cfgs[bench.proc]
    taint = analyze_taint(cfg)
    annotated = annotate_trail(Trail.most_general(cfg).regex(), cfg, taint)
    lines = [
        "=" * 72,
        "%s  (Fig. 1 %s)" % (name, "top" if bench.expect == "safe" else "bottom"),
        "=" * 72,
        "most general trail (annotated regex over CFG edges):",
        "  " + annotated.render(),
        "",
        verdict.render(),
    ]
    return "\n".join(lines)


def main() -> int:
    print(show("login_safe"))
    print()
    print(show("login_unsafe"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
