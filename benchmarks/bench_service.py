"""Service-tier load benchmark: throughput, latency, and the audit.

Runs the :mod:`repro.service.loadgen` harness (docs/SERVICE.md) through
three scenarios against an in-process async daemon and writes the
machine-readable ``BENCH_service.json``:

* **clean** — the headline numbers: 1000 concurrent clients of mixed
  benchmark + generated-program traffic, no faults.  This scenario's
  p50/p99 are the service's published latency figures.
* **chaos** — the same mix under a ``REPRO_FAULTS`` plan (injected
  worker delays and one injected error); the acceptance bar is the
  ledger audit, not the clock: zero lost, zero wrongly-settled.
* **restart** — a graceful drain + restart mid-run; clients ride
  through on retries and the fresh daemon serves settled verdicts from
  the disk tier.

Every scenario must pass its ledger audit
(:func:`~repro.service.loadgen.verify_ledger`) — violations are listed
and exit status is non-zero.  In full mode the clean scenario's p99 is
additionally gated against the committed ``BENCH_service.json`` (read
before being overwritten): a regression beyond
``P99_REGRESSION_TOLERANCE`` fails the run.  Timing gates are skipped
when an *ambient* fault plan is active (``REPRO_FAULTS`` in the
environment — injected delays make latency assertions meaningless),
exactly as in ``bench_perf.py``; the audit gates always apply.

Usage::

    python benchmarks/bench_service.py [--output PATH] [--clients N]
    python benchmarks/bench_service.py --quick   # CI smoke: ~200
        # clients with the chaos plan on, must finish well under 60s;
        # this is what `make smoke-service-load` runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.resilience import faults
from repro.service.loadgen import LoadgenConfig, run_loadgen

# Clean-scenario p99 tolerance against the committed report.  Generous
# by design: the benchmark shares one box with whatever else runs, and
# the gate is meant to catch structural regressions (an accidental
# serialization, a lost cache tier), not scheduler noise.
P99_REGRESSION_TOLERANCE = 2.0

# The chaos plan: 30% of worker executions delayed, one injected error.
# Thread-isolation shards keep the benchmark deterministic and cheap;
# process-crash chaos is exercised by the loadgen CLI and the service
# test suite, where a crashed worker's rebuild cost is the point.
CHAOS_PLAN = "worker.run:delay=0.05:p=0.3,worker.run:error:once"


def scenario_configs(
    quick: bool, clients: int, cache_root: str
) -> List[Dict[str, Any]]:
    if quick:
        return [
            {
                "name": "smoke-chaos",
                "config": LoadgenConfig(
                    clients=min(200, clients),
                    requests_per_client=2,
                    shards=2,
                    isolation="thread",
                    generated=4,
                    cache_dir=os.path.join(cache_root, "smoke"),
                    faults=CHAOS_PLAN,
                    deadline=55.0,
                ),
            }
        ]
    return [
        {
            "name": "clean",
            "config": LoadgenConfig(
                clients=clients,
                requests_per_client=2,
                shards=2,
                isolation="thread",
                generated=12,
                cache_dir=os.path.join(cache_root, "clean"),
                deadline=120.0,
            ),
        },
        {
            "name": "chaos",
            "config": LoadgenConfig(
                clients=max(1, clients // 4),
                requests_per_client=2,
                shards=2,
                isolation="thread",
                generated=8,
                cache_dir=os.path.join(cache_root, "chaos"),
                faults=CHAOS_PLAN,
                deadline=120.0,
            ),
        },
        {
            "name": "restart",
            "config": LoadgenConfig(
                clients=max(1, clients // 5),
                requests_per_client=3,
                shards=2,
                isolation="thread",
                generated=4,
                cache_dir=os.path.join(cache_root, "restart"),
                restart_after=max(10, clients // 10),
                deadline=120.0,
            ),
        },
    ]


def committed_clean_p99(path: str) -> Optional[float]:
    """The clean scenario's p99 in the committed report (pre-overwrite)."""
    try:
        with open(path) as handle:
            report = json.load(handle)
        for scenario in report["scenarios"]:
            if scenario["name"] == "clean":
                return float(scenario["latency_seconds"]["p99"])
    except (OSError, ValueError, KeyError, TypeError):
        pass
    return None


def summarize(scenario: Dict[str, Any], report: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "name": scenario["name"],
        "ok": report["ok"],
        "violations": report["violations"],
        "clients": report["config"]["clients"],
        "requests": report["requests"],
        "requests_done": report["requests_done"],
        "requests_failed": report["requests_failed"],
        "requests_lost": report["requests_lost"],
        "retry_attempts": report["retry_attempts"],
        "restarts": report["restarts"],
        "faults": report["faults"],
        "elapsed_seconds": report["elapsed_seconds"],
        "throughput_rps": report["throughput_rps"],
        "latency_seconds": report["latency_seconds"],
        "daemon": {
            key: report["daemon"].get(key)
            for key in (
                "executed",
                "coalesced",
                "hits_memory",
                "hits_disk",
                "retried",
                "shed",
                "quarantined",
            )
        }
        if report.get("daemon")
        else None,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--clients",
        type=int,
        default=1000,
        help="concurrent clients for the clean scenario (default: 1000)",
    )
    parser.add_argument(
        "--output", default="BENCH_service.json", help="report path"
    )
    parser.add_argument(
        "--cache-root",
        default="/tmp/bench_service_cache",
        help="root dir for per-scenario daemon caches",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: ~200 clients with the chaos plan, <60s",
    )
    args = parser.parse_args()

    # An ambient plan means someone is chaos-testing the whole stack;
    # the scenarios install their own plans and must not fight it.
    ambient = faults.active() is not None or bool(os.environ.get("REPRO_FAULTS"))
    timing_gates = not ambient and not args.quick
    if ambient:
        print("ambient fault plan active: timing gates disabled")
    reference_p99 = (
        committed_clean_p99(args.output) if os.path.exists(args.output) else None
    )

    scenarios = scenario_configs(args.quick, args.clients, args.cache_root)
    results: List[Dict[str, Any]] = []
    failed = False
    for scenario in scenarios:
        config = scenario["config"]
        print(
            "scenario %s: %d client(s) x %d request(s)%s..."
            % (
                scenario["name"],
                config.clients,
                config.requests_per_client,
                " under %r" % config.faults if config.faults else "",
            )
        )
        report = run_loadgen(config)
        summary = summarize(scenario, report)
        results.append(summary)
        latency = summary["latency_seconds"]
        print(
            "  %d done, %d failed, %d lost in %.2fs (%.1f req/s); "
            "p50=%s p99=%s"
            % (
                summary["requests_done"],
                summary["requests_failed"],
                summary["requests_lost"],
                summary["elapsed_seconds"],
                summary["throughput_rps"],
                latency["p50"],
                latency["p99"],
            )
        )
        if not report["ok"]:
            for violation in report["violations"]:
                print(
                    "FAIL [%s]: %s" % (scenario["name"], violation),
                    file=sys.stderr,
                )
            failed = True

    out_report = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": args.quick,
        "scenarios": results,
        "all_ok": all(s["ok"] for s in results),
    }
    with open(args.output, "w") as handle:
        json.dump(out_report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("report written to %s" % args.output)

    if timing_gates and reference_p99 is not None:
        clean = next((s for s in results if s["name"] == "clean"), None)
        p99 = clean["latency_seconds"]["p99"] if clean else None
        if p99 is not None and p99 > reference_p99 * P99_REGRESSION_TOLERANCE:
            print(
                "FAIL: clean-scenario p99 %.3fs regressed more than %.0f%% "
                "over the committed %.3fs"
                % (
                    p99,
                    (P99_REGRESSION_TOLERANCE - 1) * 100,
                    reference_p99,
                ),
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
