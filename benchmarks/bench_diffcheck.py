"""Differential-campaign bench: the full agreement matrix at scale.

Runs a seeded ``repro diffcheck`` campaign with every registered
subject (Blazer, eager self-composition, the constant-time checker,
PDSC, and the quantitative leakage analysis), then publishes the
machine-readable ``BENCH_diffcheck.json``:

* the **agreement matrix** — for every subject pair (oracle included),
  the fraction of programs on which both made the same safe/not-safe
  call;
* per-subject **verdict counts** and the disagreement-kind histogram;
* per-subject aggregate **wall clock** (volatile; informational);
* the campaign coordinates and budget knobs, so the report is
  reproducible bit-for-bit (timing aside) from its own header.

Gates (exit non-zero):

* **soundness** — zero ``soundness_bug`` rows, always;
* **agreement regression** — when the committed report has the same
  coordinates, no subject's oracle-agreement rate may drop more than
  ``AGREEMENT_TOLERANCE`` (the previous report is read before being
  overwritten);
* **campaign health** — worker errors (exit 4 from the runner) fail
  the bench too.

Budgets: campaigns trim ``max_pairs`` well below the interactive
default, same precedent as ``make diffcheck-smoke`` — a smaller pair
budget only converts would-be proofs into ``exhausted`` (a budget data
point), never flips a verdict, so the soundness gate is unaffected.

Usage::

    python benchmarks/bench_diffcheck.py [--seed 0] [--count 10000]
        [--jobs N] [--max-pairs 120] [--max-refinements 2]
        [--output BENCH_diffcheck.json]
    python benchmarks/bench_diffcheck.py --quick   # make pdsc-smoke:
                                                   # 200 programs
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro.diffcheck.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.diffcheck.differ import SUBJECTS, DiffConfig

# Absolute drop in a subject's oracle-agreement rate that fails the
# regression gate (rates move a little whenever the generator or a
# budget knob changes; those changes regenerate the report on purpose).
AGREEMENT_TOLERANCE = 0.02

ORACLE = "oracle"
COLUMNS = (ORACLE,) + SUBJECTS


def _safe_bit(outcome, subject: str) -> Optional[bool]:
    """Subject's binary "calls it safe" verdict, None if skipped."""
    if subject == ORACLE:
        return not outcome.oracle_leaky
    if subject == "blazer":
        return outcome.blazer == "safe" if outcome.blazer != "skipped" else None
    if subject == "selfcomp":
        return outcome.selfcomp == "verified" if outcome.selfcomp else None
    if subject == "consttime":
        return outcome.constant_time
    if subject == "pdsc":
        return outcome.pdsc == "verified" if outcome.pdsc else None
    if subject == "leakage":
        # "Safe" in the binary sense = a sound claim of one timing
        # class (zero bits); unknown claims nothing and is excluded.
        if not outcome.leakage or outcome.leakage == "skipped":
            return None
        if outcome.leakage_cells is None:
            return None
        return outcome.leakage_cells <= 1
    raise ValueError(subject)


def agreement_matrix(report: CampaignReport) -> Dict[str, Dict[str, float]]:
    """Pairwise same-call rates over the campaign, oracle included.

    Conservative subjects (selfcomp/pdsc/consttime answer "safe" only
    on a proof) naturally agree with the oracle less often than Blazer
    on leak-heavy populations; the matrix is a drift detector, not a
    quality ranking.
    """
    matrix: Dict[str, Dict[str, float]] = {}
    for a in COLUMNS:
        matrix[a] = {}
        for b in COLUMNS:
            total = agree = 0
            for outcome in report.outcomes:
                if outcome.error:
                    continue
                bit_a, bit_b = _safe_bit(outcome, a), _safe_bit(outcome, b)
                if bit_a is None or bit_b is None:
                    continue
                total += 1
                agree += bit_a == bit_b
            matrix[a][b] = round(agree / total, 4) if total else 1.0
    return matrix


def build_report(report: CampaignReport, config: CampaignConfig, jobs: int) -> Dict:
    record = report.to_dict()
    return {
        "campaign": dict(
            record["campaign"],
            max_pairs=config.diff.max_pairs,
            max_refinements=config.diff.max_refinements,
            jobs=jobs,
        ),
        "summary": record["summary"],
        "agreement": agreement_matrix(report),
        # Volatile section: wall clock moves with the host; everything
        # above it is a pure function of the campaign coordinates.
        "subject_seconds": {
            subject: round(seconds, 2)
            for subject, seconds in sorted(report.subject_seconds().items())
        },
    }


def coordinates(record: Dict) -> Dict:
    campaign = dict(record.get("campaign", {}))
    campaign.pop("jobs", None)  # job count never changes the verdicts
    return campaign


def check_gates(record: Dict, previous: Optional[Dict]) -> List[str]:
    failures: List[str] = []
    summary = record["summary"]
    if summary["soundness_bugs"]:
        failures.append(
            "SOUNDNESS GATE: %d soundness_bug row(s)" % summary["soundness_bugs"]
        )
    if summary["errors"]:
        failures.append("HEALTH GATE: %d worker error(s)" % summary["errors"])
    if previous is None:
        return failures
    if coordinates(previous) != coordinates(record):
        print(
            "bench_diffcheck: coordinates changed; agreement gate skipped",
            file=sys.stderr,
        )
        return failures
    for subject in SUBJECTS:
        old = previous.get("agreement", {}).get(ORACLE, {}).get(subject)
        new = record["agreement"][ORACLE][subject]
        if old is not None and new < old - AGREEMENT_TOLERANCE:
            failures.append(
                "AGREEMENT GATE: %s oracle-agreement %.4f < committed %.4f - %.2f"
                % (subject, new, old, AGREEMENT_TOLERANCE)
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--count", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=0, help="0 = cpu count")
    parser.add_argument("--max-pairs", type=int, default=None)
    parser.add_argument("--max-refinements", type=int, default=None)
    parser.add_argument("--output", default="BENCH_diffcheck.json")
    parser.add_argument("--journal", default=None, help="JSONL journal path")
    parser.add_argument("--resume", action="store_true")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 200 programs at a leaner pair budget "
        "(the make pdsc-smoke gate; <90s on one core)",
    )
    args = parser.parse_args(argv)
    # Quick mode trims the budgets further: on one core the full-bench
    # knobs put 200 programs past the 90 s smoke envelope.
    defaults = (200, 40, 1) if args.quick else (10_000, 80, 2)
    args.count = defaults[0] if args.count is None else args.count
    args.max_pairs = defaults[1] if args.max_pairs is None else args.max_pairs
    if args.max_refinements is None:
        args.max_refinements = defaults[2]

    jobs = args.jobs or (os.cpu_count() or 1)
    config = CampaignConfig(
        seed=args.seed,
        count=args.count,
        diff=DiffConfig(
            max_pairs=args.max_pairs, max_refinements=args.max_refinements
        ),
        shrink=False,  # the bench wants verdicts, not reproducers
    )
    report = run_campaign(
        config, jobs=jobs, journal=args.journal, resume=args.resume
    )
    record = build_report(report, config, jobs)

    previous = None
    if os.path.exists(args.output):
        try:
            with open(args.output, encoding="utf-8") as handle:
                previous = json.load(handle)
        except (OSError, ValueError):
            previous = None
    failures = check_gates(record, previous)

    if not args.quick:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("bench_diffcheck: wrote %s" % args.output)

    oracle_row = record["agreement"][ORACLE]
    print(
        "bench_diffcheck: seed=%d programs=%d soundness_bugs=%d"
        % (args.seed, args.count, record["summary"]["soundness_bugs"])
    )
    print(
        "  oracle agreement: "
        + "  ".join("%s=%.3f" % (s, oracle_row[s]) for s in SUBJECTS)
    )
    print(
        "  subject seconds:  "
        + "  ".join(
            "%s=%.1fs" % (s, record["subject_seconds"].get(s, 0.0))
            for s in SUBJECTS
        )
    )
    for failure in failures:
        print("bench_diffcheck: " + failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
