"""Perf harness: the memoized+parallel engine vs. the plain serial one.

Runs every Table-1 benchmark twice —

* **serial baseline**: one benchmark after another in this process with
  the perf layer forced *off*, i.e. exactly the unmemoized seed engine;
* **optimized**: the same benchmarks with the perf layer on, fanned out
  over ``--jobs`` workers via :class:`ParallelSuiteRunner` (workers
  start with cold caches — nothing is pre-warmed).

— then verifies the two runs produced byte-identical analyses (content
digests per :func:`repro.core.report.verdict_digest`) and writes the
machine-readable ``BENCH_table1.json`` so future changes can track the
perf trajectory.

Usage::

    python benchmarks/bench_perf.py [--jobs N] [--output PATH]
    python benchmarks/bench_perf.py --quick     # CI smoke: 6 MicroBench
                                                # pairs, --jobs 2, asserts
                                                # speedup >= 1.0

Exit status is non-zero on any verdict mismatch, digest divergence, or
(in ``--quick`` mode) a speedup below 1.0.

Resilience (docs/RESILIENCE.md): both runs default to ``--retries 2``,
so an injected or real worker crash is retried on the serial backend
and the digests still gate correctness.  When a fault plan is active
(``REPRO_FAULTS``), the quick-mode speedup gate is skipped — injected
delays and crash/retry cycles make timing assertions meaningless — but
the verdict and digest gates still apply.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.benchsuite import ALL_BENCHMARKS, MICRO, BenchResult, ParallelSuiteRunner
from repro.resilience import faults


def run_serial_baseline(names: List[str], retries: int = 2) -> List[BenchResult]:
    """The reference run: perf layer off, strictly sequential."""
    runner = ParallelSuiteRunner(
        names, jobs=1, backend="serial", cache=False, retries=retries
    )
    return runner.run()


def run_optimized(names: List[str], jobs: int, retries: int = 2) -> List[BenchResult]:
    """The measured run: perf layer on, ``jobs`` workers."""
    runner = ParallelSuiteRunner(
        names, jobs=jobs, backend="auto", cache=True, retries=retries
    )
    return runner.run()


def build_report(
    serial: List[BenchResult],
    optimized: List[BenchResult],
    serial_wall: float,
    optimized_wall: float,
    jobs: int,
) -> Dict:
    rows = []
    for base, opt in zip(serial, optimized):
        total = opt.cache_hits + opt.cache_misses
        rows.append(
            {
                "name": base.name,
                "group": base.group,
                "verdict": opt.status,
                "expect": base.expect,
                "ok": opt.ok,
                "digest_match": base.digest == opt.digest,
                "serial_seconds": round(base.wall_seconds, 4),
                "parallel_seconds": round(opt.wall_seconds, 4),
                "speedup": round(base.wall_seconds / opt.wall_seconds, 2)
                if opt.wall_seconds
                else None,
                "cache_hits": opt.cache_hits,
                "cache_misses": opt.cache_misses,
                "hit_rate": round(opt.cache_hits / total, 4) if total else 0.0,
                "retries": base.retries + opt.retries,
                "quarantined": base.quarantined + opt.quarantined,
                "degraded_leaves": base.degraded_leaves + opt.degraded_leaves,
            }
        )
    plan = faults.active()
    return {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "jobs": jobs,
        "faults": [s.describe() for s in plan.specs] if plan is not None else [],
        "benchmarks": rows,
        "total": {
            "serial_seconds": round(serial_wall, 4),
            "parallel_seconds": round(optimized_wall, 4),
            "speedup": round(serial_wall / optimized_wall, 2)
            if optimized_wall
            else None,
            "all_ok": all(r["ok"] for r in rows),
            "all_digests_match": all(r["digest_match"] for r in rows),
            "retries": sum(r["retries"] for r in rows),
            "quarantined": sum(r["quarantined"] for r in rows),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=4, help="workers for the optimized run"
    )
    parser.add_argument(
        "--output", default="BENCH_table1.json", help="report path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: MicroBench only, --jobs 2, assert speedup >= 1.0",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry a failed benchmark up to N times on the serial backend",
    )
    args = parser.parse_args()

    if args.quick:
        benches = [b for b in ALL_BENCHMARKS if b.group == MICRO]
        jobs = 2
    else:
        benches = list(ALL_BENCHMARKS)
        jobs = args.jobs
    names = [b.name for b in benches]

    if faults.active() is not None:
        print(
            "fault plan active (%s): timing gates disabled"
            % "; ".join(s.describe() for s in faults.active().specs)
        )

    print("serial baseline (perf layer off, %d benchmarks)..." % len(names))
    t0 = time.perf_counter()
    serial = run_serial_baseline(names, retries=args.retries)
    serial_wall = time.perf_counter() - t0
    print("  %.2fs" % serial_wall)

    print("optimized (perf layer on, --jobs %d)..." % jobs)
    t0 = time.perf_counter()
    optimized = run_optimized(names, jobs, retries=args.retries)
    optimized_wall = time.perf_counter() - t0
    print("  %.2fs" % optimized_wall)

    report = build_report(serial, optimized, serial_wall, optimized_wall, jobs)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    total = report["total"]
    speedup = total["speedup"]
    print(
        "speedup: %.2fx (%.2fs -> %.2fs), verdicts ok: %s, digests match: %s"
        % (
            speedup,
            total["serial_seconds"],
            total["parallel_seconds"],
            total["all_ok"],
            total["all_digests_match"],
        )
    )
    print("report written to %s" % args.output)

    failed = False
    if not total["all_ok"]:
        bad = [r["name"] for r in report["benchmarks"] if not r["ok"]]
        print("FAIL: verdict mismatch in: %s" % ", ".join(bad), file=sys.stderr)
        failed = True
    if not total["all_digests_match"]:
        bad = [r["name"] for r in report["benchmarks"] if not r["digest_match"]]
        print(
            "FAIL: optimized run diverged from baseline in: %s" % ", ".join(bad),
            file=sys.stderr,
        )
        failed = True
    if (
        args.quick
        and speedup is not None
        and speedup < 1.0
        and faults.active() is None
    ):
        print(
            "FAIL: quick-mode speedup %.2fx is below 1.0x" % speedup,
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
