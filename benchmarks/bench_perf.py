"""Perf harness: the memoized+parallel engine vs. the plain serial one.

Runs every Table-1 benchmark twice —

* **serial baseline**: one benchmark after another in this process with
  the perf layer forced *off*, i.e. exactly the unmemoized seed engine;
* **optimized**: the same benchmarks with the perf layer on, dispatched
  through the persistent warm-worker pool (:mod:`repro.perf.pool`) in
  chunks via :class:`ParallelSuiteRunner`.

— then verifies the two runs produced byte-identical analyses (content
digests per :func:`repro.core.report.verdict_digest`) and writes the
machine-readable ``BENCH_table1.json`` so future changes can track the
perf trajectory.

Measurement: each side runs ``--repeat`` times (default 3) and every
benchmark reports its **minimum** wall across repeats — the standard
noise floor for sub-100ms measurements on a shared box.  The optimized
side deliberately keeps its process-wide memo tables and warm pool
across repeats: steady-state warm caches *are* the optimized
configuration (a long-lived analysis service, an interactive session),
while the serial seed baseline has no caches to keep.  Digests must
agree across repeats as well as across sides, so a cache that changed
an answer while warming is caught here, not in production.

Usage::

    python benchmarks/bench_perf.py [--jobs N] [--repeat N] [--output PATH]
    python benchmarks/bench_perf.py --quick     # CI smoke: 6 MicroBench
                                                # pairs, --jobs 2, asserts
                                                # total speedup >= 1.0

Exit status is non-zero on any verdict mismatch or digest divergence;
additionally in ``--quick`` mode when the total speedup falls below
1.0, and in full mode when any *single* benchmark's speedup falls
below 1.0, any **refinement-heavy** row (>= 3 partition leaves, where
the incremental re-analysis plane reuses parent fixpoints) falls below
1.3x, or the serial baseline wall regresses more than 20% against the
committed ``BENCH_table1.json`` (the previous report is read for its
reference wall before being overwritten).  Every row also publishes
its refinement-reuse column — ``refine_reuse_hits`` / ``_misses`` /
``_hit_rate``, the parent-artifact serves behind that speedup.

Resilience (docs/RESILIENCE.md): both runs default to ``--retries 2``,
so an injected or real worker crash is retried on the serial backend
and the digests still gate correctness.  When a fault plan is active
(``REPRO_FAULTS``), all timing gates are skipped — injected delays and
crash/retry cycles make timing assertions meaningless — but the verdict
and digest gates still apply.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.benchsuite import ALL_BENCHMARKS, MICRO, BenchResult, ParallelSuiteRunner
from repro.resilience import faults

# Serial-wall regression tolerance against the committed report (the
# timing gate that keeps the seed engine honest between regenerations).
SERIAL_REGRESSION_TOLERANCE = 1.20

# Refinement-heavy rows (at least this many partition leaves) are where
# the incremental re-analysis plane (docs/PERFORMANCE.md) earns its
# keep: split children derive their fixpoints from the parent's cached
# computation, so these rows must clear a *higher* speedup bar than the
# >= 1.0x everyone else gets.
REFINEMENT_HEAVY_LEAVES = 3
REFINEMENT_HEAVY_SPEEDUP = 1.3


def run_serial_baseline(names: List[str], retries: int = 2) -> List[BenchResult]:
    """The reference run: perf layer off, strictly sequential."""
    runner = ParallelSuiteRunner(
        names, jobs=1, backend="serial", cache=False, retries=retries
    )
    return runner.run()


def run_optimized(names: List[str], jobs: int, retries: int = 2) -> List[BenchResult]:
    """The measured run: perf layer on, warm-pool chunked dispatch."""
    runner = ParallelSuiteRunner(
        names, jobs=jobs, backend="auto", cache=True, retries=retries
    )
    return runner.run()


def measure(
    run,
    names: List[str],
    repeat: int,
    retries: int,
) -> Tuple[List[BenchResult], float, List[str]]:
    """Run ``run(names, retries=...)`` ``repeat`` times.

    Returns the last repeat's results with each ``wall_seconds``
    replaced by that benchmark's minimum across repeats and its cache
    counters replaced by the element-wise **sum** across repeats (the
    cold first repeat is where e.g. the refinement-reuse probes live —
    steady-state repeats answer from the trail-bound tier and would
    report an empty column), the minimum harness wall, and a list of
    cross-repeat digest divergences (empty on a healthy engine: warming
    a cache must never change an answer).
    """
    best: Optional[List[BenchResult]] = None
    best_wall = float("inf")
    min_walls: List[float] = []
    stats_acc: List[Dict[str, Tuple[int, int]]] = []
    divergent: List[str] = []
    digests: List[str] = []
    for attempt in range(max(1, repeat)):
        t0 = time.perf_counter()
        results = run(names, retries=retries)
        wall = time.perf_counter() - t0
        walls = [r.wall_seconds for r in results]
        if attempt == 0:
            min_walls = walls
            digests = [r.digest for r in results]
            stats_acc = [dict(r.cache_stats) for r in results]
        else:
            min_walls = [min(a, b) for a, b in zip(min_walls, walls)]
            for acc, r in zip(stats_acc, results):
                for cat, (h, m) in r.cache_stats.items():
                    h0, m0 = acc.get(cat, (0, 0))
                    acc[cat] = (h0 + h, m0 + m)
            for r, first in zip(results, digests):
                if r.digest != first and r.name not in divergent:
                    divergent.append(r.name)
        best = results
        best_wall = min(best_wall, wall)
    assert best is not None
    for r, wall, stats in zip(best, min_walls, stats_acc):
        r.wall_seconds = wall
        r.cache_stats = stats
        r.cache_hits = sum(pair[0] for pair in stats.values())
        r.cache_misses = sum(pair[1] for pair in stats.values())
    return best, best_wall, divergent


def committed_serial_wall(path: str) -> Optional[float]:
    """The serial wall of the committed report at ``path`` (pre-overwrite)."""
    try:
        with open(path) as handle:
            return float(json.load(handle)["total"]["serial_seconds"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def build_report(
    serial: List[BenchResult],
    optimized: List[BenchResult],
    serial_wall: float,
    optimized_wall: float,
    jobs: int,
    repeat: int,
) -> Dict:
    rows = []
    for base, opt in zip(serial, optimized):
        total = opt.cache_hits + opt.cache_misses
        reuse_hits, reuse_misses = opt.cache_stats.get("refine.reuse", (0, 0))
        reuse_total = reuse_hits + reuse_misses
        rows.append(
            {
                "name": base.name,
                "group": base.group,
                "verdict": opt.status,
                "expect": base.expect,
                "ok": opt.ok,
                "digest_match": base.digest == opt.digest,
                "serial_seconds": round(base.wall_seconds, 4),
                "parallel_seconds": round(opt.wall_seconds, 4),
                "speedup": round(base.wall_seconds / opt.wall_seconds, 2)
                if opt.wall_seconds
                else None,
                "leaves": opt.leaves,
                "refinement_heavy": opt.leaves >= REFINEMENT_HEAVY_LEAVES,
                "cache_hits": opt.cache_hits,
                "cache_misses": opt.cache_misses,
                "hit_rate": round(opt.cache_hits / total, 4) if total else 0.0,
                # The refinement-reuse column: parent loop artifacts
                # revalidated and served to split children (None = the
                # row never refined, so the tier was never probed).
                "refine_reuse_hits": reuse_hits,
                "refine_reuse_misses": reuse_misses,
                "refine_reuse_hit_rate": round(reuse_hits / reuse_total, 4)
                if reuse_total
                else None,
                "retries": base.retries + opt.retries,
                "quarantined": base.quarantined + opt.quarantined,
                "degraded_leaves": base.degraded_leaves + opt.degraded_leaves,
            }
        )
    plan = faults.active()
    return {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "jobs": jobs,
        "repeat": repeat,
        "faults": [s.describe() for s in plan.specs] if plan is not None else [],
        "benchmarks": rows,
        "total": {
            "serial_seconds": round(serial_wall, 4),
            "parallel_seconds": round(optimized_wall, 4),
            "speedup": round(serial_wall / optimized_wall, 2)
            if optimized_wall
            else None,
            "all_ok": all(r["ok"] for r in rows),
            "all_digests_match": all(r["digest_match"] for r in rows),
            "min_benchmark_speedup": min(
                (r["speedup"] for r in rows if r["speedup"] is not None),
                default=None,
            ),
            "min_refinement_heavy_speedup": min(
                (
                    r["speedup"]
                    for r in rows
                    if r["refinement_heavy"] and r["speedup"] is not None
                ),
                default=None,
            ),
            "refine_reuse_hits": sum(r["refine_reuse_hits"] for r in rows),
            "refine_reuse_misses": sum(r["refine_reuse_misses"] for r in rows),
            "retries": sum(r["retries"] for r in rows),
            "quarantined": sum(r["quarantined"] for r in rows),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=4, help="workers for the optimized run"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="measure each side N times; report min walls (noise floor)",
    )
    parser.add_argument(
        "--output", default="BENCH_table1.json", help="report path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: MicroBench only, --jobs 2, assert total speedup >= 1.0",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry a failed benchmark up to N times on the serial backend",
    )
    args = parser.parse_args()

    if args.quick:
        benches = [b for b in ALL_BENCHMARKS if b.group == MICRO]
        jobs = 2
    else:
        benches = list(ALL_BENCHMARKS)
        jobs = args.jobs
    names = [b.name for b in benches]

    # Fork the warm pool *before* the serial baseline runs: workers
    # snapshot the parent heap at fork time, and forking after 3×24
    # in-process analyses hands every worker a bloated inherited heap
    # (measurably slower GC in allocation-heavy benchmarks).
    from repro.perf.pool import shared_pool, warm_pool_usable

    if warm_pool_usable():
        shared_pool(jobs).prewarm()

    timing_gates = faults.active() is None
    if not timing_gates:
        print(
            "fault plan active (%s): timing gates disabled"
            % "; ".join(s.describe() for s in faults.active().specs)
        )
        # One repeat under chaos: min-of-N only serves the (disabled)
        # timing gates, and `once` faults fire in the first repeat —
        # their retry bookkeeping must reach the report, not be
        # overwritten by fault-free later repeats.
        args.repeat = 1
    reference_wall = committed_serial_wall(args.output) if os.path.exists(
        args.output
    ) else None

    print(
        "serial baseline (perf layer off, %d benchmarks, min of %d run(s))..."
        % (len(names), args.repeat)
    )
    serial, serial_wall, serial_diverged = measure(
        run_serial_baseline, names, args.repeat, args.retries
    )
    print("  %.2fs" % serial_wall)

    print("optimized (perf layer on, --jobs %d, min of %d run(s))..." % (
        jobs, args.repeat,
    ))
    optimized, optimized_wall, optimized_diverged = measure(
        lambda ns, retries: run_optimized(ns, jobs, retries=retries),
        names,
        args.repeat,
        args.retries,
    )
    print("  %.2fs" % optimized_wall)

    report = build_report(
        serial, optimized, serial_wall, optimized_wall, jobs, args.repeat
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    total = report["total"]
    speedup = total["speedup"]
    print(
        "speedup: %.2fx (%.2fs -> %.2fs), verdicts ok: %s, digests match: %s"
        % (
            speedup,
            total["serial_seconds"],
            total["parallel_seconds"],
            total["all_ok"],
            total["all_digests_match"],
        )
    )
    reuse_total = total["refine_reuse_hits"] + total["refine_reuse_misses"]
    print(
        "refinement reuse: %d/%d artifact probes served (%s); "
        "refinement-heavy rows (leaves >= %d): min speedup %s"
        % (
            total["refine_reuse_hits"],
            reuse_total,
            "%.1f%%" % (100.0 * total["refine_reuse_hits"] / reuse_total)
            if reuse_total
            else "n/a",
            REFINEMENT_HEAVY_LEAVES,
            total["min_refinement_heavy_speedup"],
        )
    )
    print("report written to %s" % args.output)

    failed = False
    if not total["all_ok"]:
        bad = [r["name"] for r in report["benchmarks"] if not r["ok"]]
        print("FAIL: verdict mismatch in: %s" % ", ".join(bad), file=sys.stderr)
        failed = True
    if not total["all_digests_match"]:
        bad = [r["name"] for r in report["benchmarks"] if not r["digest_match"]]
        print(
            "FAIL: optimized run diverged from baseline in: %s" % ", ".join(bad),
            file=sys.stderr,
        )
        failed = True
    for side, diverged in (("serial", serial_diverged), ("optimized", optimized_diverged)):
        if diverged:
            print(
                "FAIL: %s run digests changed across repeats in: %s"
                % (side, ", ".join(diverged)),
                file=sys.stderr,
            )
            failed = True
    if timing_gates and args.quick and speedup is not None and speedup < 1.0:
        print(
            "FAIL: quick-mode speedup %.2fx is below 1.0x" % speedup,
            file=sys.stderr,
        )
        failed = True
    if timing_gates and not args.quick:
        slow = [
            r["name"]
            for r in report["benchmarks"]
            if r["speedup"] is not None and r["speedup"] < 1.0
        ]
        if slow:
            print(
                "FAIL: per-benchmark speedup below 1.0x in: %s" % ", ".join(slow),
                file=sys.stderr,
            )
            failed = True
        heavy_slow = [
            "%s (%.2fx)" % (r["name"], r["speedup"])
            for r in report["benchmarks"]
            if r["refinement_heavy"]
            and r["speedup"] is not None
            and r["speedup"] < REFINEMENT_HEAVY_SPEEDUP
        ]
        if heavy_slow:
            print(
                "FAIL: refinement-heavy speedup below %.1fx in: %s"
                % (REFINEMENT_HEAVY_SPEEDUP, ", ".join(heavy_slow)),
                file=sys.stderr,
            )
            failed = True
        if (
            reference_wall is not None
            and serial_wall > reference_wall * SERIAL_REGRESSION_TOLERANCE
        ):
            print(
                "FAIL: serial wall %.2fs regressed more than %d%% over the "
                "committed %.2fs"
                % (
                    serial_wall,
                    round((SERIAL_REGRESSION_TOLERANCE - 1) * 100),
                    reference_wall,
                ),
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
