"""Leakage bench: bits-leaked on the unsafe Table-1 rows + the crypto
constant-time corpus, gated on soundness.

Publishes the machine-readable ``BENCH_leakage.json``:

* **table1** — for every *unsafe* Table-1 row, the quantitative
  leakage report at the row's own observer slack: timing classes,
  distinguishable cells, and the bits-leaked upper bound (min-entropy
  = channel capacity for the deterministic channel).  Every unsafe row
  must get a bits figure or an honest ``unknown`` — silence is not an
  option;
* **corpus** — the 8-kernel crypto corpus verdict matrix under both
  the instruction-count and the cache-aware cost model, against the
  expected matrix of :mod:`repro.leakage.corpus`;
* **sweep** — a seeded generated-program campaign cross-checking the
  analysis bound against the exhaustive oracle's *exact* leakage.

Gates (exit non-zero):

* **soundness** — zero generated programs where the analysis claims
  fewer timing classes than the oracle distinguishes (these surface as
  ``soundness_bug`` disagreements), always;
* **corpus** — every kernel matches its expected constant-time verdict
  under both cost models, always;
* **coverage** — every unsafe Table-1 row present with a bits bound or
  an explicit ``unknown``;
* **regression** — when a committed report exists, no unsafe row's
  status may degrade to ``unknown`` and no row's cell count may grow
  beyond ``CELL_TOLERANCE`` (the previous report is read before being
  overwritten).

Usage::

    python benchmarks/bench_leakage.py [--seed 0] [--count 500]
        [--jobs N] [--output BENCH_leakage.json]
    python benchmarks/bench_leakage.py --quick   # make leakage-smoke:
                                                 # corpus + 200 programs
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro.benchsuite import FULL_SUITE
from repro.core.blazer import Blazer, BlazerConfig
from repro.diffcheck.campaign import CampaignConfig, run_campaign
from repro.diffcheck.differ import DiffConfig
from repro.diffcheck.generator import GeneratorConfig
from repro.diffcheck.oracle import observer_slack
from repro.leakage import (
    CRYPTO_CORPUS,
    check_constant_time,
    leakage_from_verdict,
    resolve_model,
)

# Multiplicative growth in an unsafe row's cell count that fails the
# regression gate (cells move when summaries or the tree shape change;
# such changes regenerate the report on purpose).
CELL_TOLERANCE = 1.5

# The generated sweep needs only the subjects the leakage cross-check
# involves; dropping the pair-semantics subjects keeps 200 programs
# inside the smoke envelope.
SWEEP_SUBJECTS = ("blazer", "consttime", "leakage")

# Corpus analysis knobs: a small assumed-maximum keeps the kernels'
# interval evaluation and decomposition cheap without changing any
# constant-time verdict (the checker is purely static).
CORPUS_MAX_INPUT = 16
CORPUS_SLACK = 32


def table1_rows() -> List[Dict]:
    """Quantitative leakage for every unsafe Table-1 row."""
    rows = []
    for bench in FULL_SUITE:
        if bench.is_safe:
            continue
        observer = bench.observer_factory()
        blazer = Blazer.from_source(bench.source, bench.config())
        verdict = blazer.analyze(bench.proc)
        report = leakage_from_verdict(
            verdict,
            observer_slack(observer),
            domains={
                name: tuple(values)
                for name, values in (bench.witness_space or {}).items()
            },
        )
        rows.append(
            {
                "name": bench.name,
                "group": bench.group,
                "proc": bench.proc,
                "slack": report.slack,
                "status": report.status,
                "classes": len(report.classes),
                "cells": report.cells,
                "bits": report.bits_capacity,
            }
        )
    return sorted(rows, key=lambda r: r["name"])


def corpus_matrix() -> List[Dict]:
    """Constant-time verdicts for the crypto corpus under both models."""
    rows = []
    for kernel in CRYPTO_CORPUS:
        source = kernel.source()
        row: Dict = {"name": kernel.name, "proc": kernel.proc}
        for model_name, expected in (
            ("instr", kernel.ct_instr),
            ("cache", kernel.ct_cache),
        ):
            model = resolve_model(model_name)
            blazer = Blazer.from_source(
                source,
                BlazerConfig(summaries=model.summaries),
            )
            verdict = blazer.analyze(kernel.proc)
            consttime = check_constant_time(blazer, kernel.proc, model)
            leakage = leakage_from_verdict(
                verdict,
                CORPUS_SLACK,
                default_max=CORPUS_MAX_INPUT,
                cost_model=model_name,
            )
            row[model_name] = {
                "constant_time": consttime.constant_time,
                "expected": expected,
                "matches": consttime.constant_time == expected,
                "leakage_status": leakage.status,
                "bits": leakage.bits_capacity,
            }
        rows.append(row)
    return rows


def sweep(seed: int, count: int, jobs: int, quick: bool = False) -> Dict:
    """The generated-program oracle cross-check, summarized.

    Quick mode trims program size and the refinement budget — smaller
    programs only shed leaves and convert would-be proofs into honest
    ``unknown``/``upper-bound`` answers, so the soundness gate tests the
    same invariant at a tenth of the wall clock (~0.1s/program serial).
    """
    if quick:
        generator = GeneratorConfig(
            max_stmts=3, max_depth=1, max_loops=1, extern_prob=0.25
        )
        diff = DiffConfig(subjects=SWEEP_SUBJECTS, max_refinements=1)
    else:
        generator = GeneratorConfig(extern_prob=0.25)
        diff = DiffConfig(subjects=SWEEP_SUBJECTS)
    config = CampaignConfig(
        seed=seed,
        count=count,
        diff=diff,
        generator=generator,
        shrink=False,
    )
    report = run_campaign(config, jobs=jobs)
    under_reports = sum(
        1
        for o in report.outcomes
        if o.leakage_cells is not None
        and o.oracle_cells is not None
        and o.leakage_cells < o.oracle_cells
    )
    summary = report.to_dict()["summary"]
    return {
        "seed": seed,
        "count": count,
        "soundness_bugs": summary["soundness_bugs"],
        "under_reports": under_reports,
        "errors": summary["errors"],
        "leakage_exact": summary["leakage_exact"],
        "leakage_upper_bound": summary["leakage_upper_bound"],
        "leakage_unknown": summary["leakage_unknown"],
        "oracle_leaky": summary["oracle_leaky"],
    }


def check_gates(record: Dict, previous: Optional[Dict]) -> List[str]:
    failures: List[str] = []
    sweep_rec = record["sweep"]
    if sweep_rec["soundness_bugs"] or sweep_rec["under_reports"]:
        failures.append(
            "SOUNDNESS GATE: %d under-report(s) / %d soundness bug(s) in the "
            "generated sweep"
            % (sweep_rec["under_reports"], sweep_rec["soundness_bugs"])
        )
    if sweep_rec["errors"]:
        failures.append(
            "HEALTH GATE: %d generated program(s) errored" % sweep_rec["errors"]
        )
    for row in record["corpus"]:
        for model in ("instr", "cache"):
            if not row[model]["matches"]:
                failures.append(
                    "CORPUS GATE: %s under %s model: got constant_time=%s, "
                    "expected %s"
                    % (
                        row["name"],
                        model,
                        row[model]["constant_time"],
                        row[model]["expected"],
                    )
                )
    if record.get("table1") is not None:
        for row in record["table1"]:
            if row["status"] != "unknown" and row["bits"] is None:
                failures.append(
                    "COVERAGE GATE: unsafe row %s has status %r but no bits "
                    "figure" % (row["name"], row["status"])
                )
        if previous and previous.get("table1"):
            prior = {r["name"]: r for r in previous["table1"]}
            for row in record["table1"]:
                old = prior.get(row["name"])
                if old is None:
                    continue
                if old["status"] != "unknown" and row["status"] == "unknown":
                    failures.append(
                        "REGRESSION GATE: %s degraded from %r to 'unknown'"
                        % (row["name"], old["status"])
                    )
                if (
                    old.get("cells") is not None
                    and row.get("cells") is not None
                    and row["cells"] > old["cells"] * CELL_TOLERANCE
                ):
                    failures.append(
                        "REGRESSION GATE: %s cells grew %d -> %d (tolerance "
                        "x%.1f)"
                        % (row["name"], old["cells"], row["cells"], CELL_TOLERANCE)
                    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--count", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=0, help="0 = cpu count")
    parser.add_argument("--output", default="BENCH_leakage.json")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: corpus matrix + 200-program oracle cross-check, "
        "no Table-1 pass, nothing written (<60s on one core)",
    )
    args = parser.parse_args(argv)
    if args.count is None:
        args.count = 200 if args.quick else 500
    jobs = args.jobs or (os.cpu_count() or 1)

    record: Dict = {
        "bench": "leakage",
        "corpus": corpus_matrix(),
        "sweep": sweep(args.seed, args.count, jobs, quick=args.quick),
        "table1": None if args.quick else table1_rows(),
    }

    previous = None
    if os.path.exists(args.output):
        try:
            with open(args.output, encoding="utf-8") as handle:
                previous = json.load(handle)
        except (OSError, ValueError):
            previous = None
    failures = check_gates(record, previous)

    if not args.quick:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("bench_leakage: wrote %s" % args.output)

    print(
        "bench_leakage: seed=%d programs=%d under_reports=%d corpus_ok=%s"
        % (
            args.seed,
            args.count,
            record["sweep"]["under_reports"],
            all(
                row[m]["matches"]
                for row in record["corpus"]
                for m in ("instr", "cache")
            ),
        )
    )
    if record["table1"] is not None:
        for row in record["table1"]:
            bits = "unknown" if row["bits"] is None else "%.3f" % row["bits"]
            print(
                "  %-22s %-10s slack=%-6d bits<=%s"
                % (row["name"], row["status"], row["slack"], bits)
            )
    for failure in failures:
        print("bench_leakage: " + failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
