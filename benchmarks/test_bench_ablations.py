"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

1. decomposition vs naive self-composition (the paper's motivation);
2. numeric domain choice (interval / zone / octagon / polyhedra);
3. observer model (degree vs concrete threshold);
4. refinement granularity: cost growth with partition depth.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from repro.benchsuite import SUITE
from repro.core import Blazer, BlazerConfig, analyze_source
from repro.core.observer import ConcreteThresholdObserver, PolynomialDegreeObserver
from repro.core.selfcomp import SelfComposition
from repro.domains import DOMAINS
from tests.helpers import compile_one

COUNT_SRC = """
proc f(secret h: int, public l: uint): int {
    var i: int = 0;
    while (i < l) { i = i + 1; }
    return i;
}
"""

EX2_SRC = """
proc bar(secret high: int, public low: int) {
    var i: int = 0;
    if (low > 0) {
        while (i < low) { i = i + 1; }
        while (i > 0) { i = i - 1; }
    } else {
        if (high == 0) { i = 5; } else { i = 7; }
    }
}
"""


class TestDecompositionVsSelfComposition:
    """Ablation 1: the paper's headline comparison."""

    def test_decomposition(self, benchmark):
        verdict = benchmark.pedantic(
            lambda: analyze_source(COUNT_SRC, "f"), rounds=3, iterations=1
        )
        assert verdict.status == "safe"

    def test_self_composition(self, benchmark):
        cfg = compile_one(COUNT_SRC, "f")

        def run():
            return SelfComposition(cfg, DOMAINS["zone"], epsilon=4).verify()

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        # The baseline cannot verify what the decomposition proves.
        assert not result.verified


@pytest.mark.parametrize("domain", sorted(DOMAINS))
class TestDomainAblation:
    """Ablation 2: the transition-invariant domain."""

    def test_example2_under_domain(self, benchmark, domain):
        def run():
            return analyze_source(EX2_SRC, "bar", BlazerConfig(domain=domain))

        verdict = benchmark.pedantic(run, rounds=1, iterations=1)
        if domain in ("zone", "octagon"):
            assert verdict.status == "safe"
        # interval cannot relate i to low (loop bounds lost);
        # polyhedra is exact but slow — whatever the verdict, it must
        # never be a (spurious) attack on this safe program.
        assert verdict.status != "attack"


class TestObserverAblation:
    """Ablation 3: observer model swap on the same program."""

    def test_degree_observer(self, benchmark):
        bench = SUITE.get("login_safe")

        def run():
            config = BlazerConfig(observer=PolynomialDegreeObserver(epsilon=32))
            return Blazer.from_source(bench.source, config).analyze(bench.proc)

        verdict = benchmark.pedantic(run, rounds=1, iterations=1)
        assert verdict.status == "safe"  # same degree both sides

    def test_threshold_observer(self, benchmark):
        bench = SUITE.get("login_safe")
        verdict = benchmark.pedantic(bench.run, rounds=1, iterations=1)
        assert verdict.status == "safe"


class TestRefinementDepth:
    """Ablation 4: cost growth with the number of low splits."""

    @pytest.mark.parametrize("branches", [1, 2, 3])
    def test_split_depth_cost(self, benchmark, branches):
        conds = "\n".join(
            "    if (l%d > 0) { acc = acc + h; } else { acc = acc + h; }" % i
            for i in range(branches)
        )
        params = ", ".join("public l%d: int" % i for i in range(branches))
        source = (
            "proc f(secret h: int, %s): int {\n"
            "    var acc: int = 0;\n%s\n    return acc;\n}" % (params, conds)
        )

        verdict = benchmark.pedantic(
            lambda: analyze_source(source, "f"), rounds=1, iterations=1
        )
        assert verdict.status == "safe"
