"""Cache self-healing: corrupt entries are detected, quarantined, recomputed."""

import pytest

from repro.perf import runtime
from repro.perf.cache import AnalysisCache, entry_digest
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, parse_spec

pytestmark = pytest.mark.resilience


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    yield
    faults.clear()


class TestEntryDigest:
    def test_stable_for_equal_renderings(self):
        assert entry_digest([1, 2]) == entry_digest([1, 2])
        assert entry_digest([1, 2]) != entry_digest([1, 3])


class TestQuarantine:
    def test_clean_entries_hit(self):
        with runtime.override(True):
            cache = AnalysisCache()
            assert cache.derived("cat", ("k",), lambda: [1]) == [1]
            assert cache.derived("cat", ("k",), lambda: [2]) == [1]
            assert cache.quarantined == 0

    def test_mutated_entry_is_quarantined_and_recomputed(self):
        with runtime.override(True):
            cache = AnalysisCache()
            value = cache.derived("cat", ("k",), lambda: [1, 2])
            value.append(99)  # corrupt the supposedly-immutable entry
            healed = cache.derived("cat", ("k",), lambda: ["fresh"])
            assert healed == ["fresh"]
            assert cache.quarantined == 1
            # The recomputed entry is healthy again.
            assert cache.derived("cat", ("k",), lambda: ["newer"]) == ["fresh"]
            assert cache.quarantined == 1

    def test_injected_corruption_is_quarantined(self):
        with runtime.override(True):
            cache = AnalysisCache()
            cache.derived("cat", ("k",), lambda: "v")
            faults.install(FaultPlan([parse_spec("cache.get:corrupt")]))
            assert cache.derived("cat", ("k",), lambda: "recomputed") == "recomputed"
            assert cache.quarantined == 1

    def test_quarantine_counts_to_stats_event(self):
        with runtime.override(True):
            before = runtime.STATS.events_snapshot()
            cache = AnalysisCache()
            cache.derived("cat", ("k",), lambda: "v")
            faults.install(FaultPlan([parse_spec("cache.get:corrupt")]))
            cache.derived("cat", ("k",), lambda: "recomputed")
            delta = runtime.STATS.events_delta(before)
            assert delta.get("cache.quarantine") == 1

    def test_bound_result_path_heals_too(self):
        class FakeTrail:
            def fingerprint(self):
                return "fp"

        with runtime.override(True):
            cache = AnalysisCache()
            trail = FakeTrail()
            assert cache.bound_result(trail, lambda: [10]) == [10]
            assert cache.bound_result(trail, lambda: [20]) == [10]  # clean hit
            cache._bounds["fp"][0].append(1)  # corrupt it
            assert cache.bound_result(trail, lambda: [30]) == [30]
            assert cache.quarantined == 1

    def test_disabled_runtime_bypasses_cache_and_checks(self):
        with runtime.override(False):
            cache = AnalysisCache()
            assert cache.derived("cat", ("k",), lambda: [1]) == [1]
            assert cache.derived("cat", ("k",), lambda: [2]) == [2]
            assert len(cache) == 0


class TestClearResetsQuarantine:
    def test_clear_zeroes_counter_and_stats_event(self):
        with runtime.override(True):
            stats = runtime.PerfStats()
            cache = AnalysisCache(stats=stats)
            cache.derived("cat", ("k",), lambda: "v")
            faults.install(FaultPlan([parse_spec("cache.get:corrupt")]))
            cache.derived("cat", ("k",), lambda: "recomputed")
            faults.clear()
            assert cache.quarantined == 1
            assert stats.events_snapshot().get("cache.quarantine") == 1
            cache.clear()
            assert len(cache) == 0
            assert cache.quarantined == 0
            assert stats.events_snapshot().get("cache.quarantine") is None

    def test_clear_leaves_other_events_alone(self):
        with runtime.override(True):
            stats = runtime.PerfStats()
            stats.event("unrelated.event")
            AnalysisCache(stats=stats).clear()
            assert stats.events_snapshot().get("unrelated.event") == 1

    def test_clear_discounts_only_own_contribution(self):
        """Two caches share one stats object: clearing one retracts its
        own quarantines and leaves the other's standing."""
        with runtime.override(True):
            stats = runtime.PerfStats()
            first = AnalysisCache(stats=stats)
            second = AnalysisCache(stats=stats)
            for cache in (first, second):
                cache.derived("cat", ("k",), lambda: "v")
            faults.install(FaultPlan([parse_spec("cache.get:corrupt@1+")]))
            for cache in (first, second):
                cache.derived("cat", ("k",), lambda: "recomputed")
            faults.clear()
            assert stats.events_snapshot().get("cache.quarantine") == 2
            first.clear()
            assert first.quarantined == 0
            assert second.quarantined == 1
            assert stats.events_snapshot().get("cache.quarantine") == 1
            second.clear()
            assert stats.events_snapshot().get("cache.quarantine") is None


class TestDiskBackedBounds:
    class FakeTrail:
        def fingerprint(self):
            return "fp"

    def test_disk_hit_across_cache_instances(self, tmp_path):
        from repro.perf.disktier import DiskTier

        path = str(tmp_path / "bounds.jsonl")
        with runtime.override(True):
            stats = runtime.PerfStats()
            warm = AnalysisCache(stats=stats, disk=DiskTier(path, stats=stats))
            assert warm.bound_result(self.FakeTrail(), lambda: [10]) == [10]
            # A fresh cache (fresh driver, maybe a fresh process) warms
            # up from the shared disk tier instead of recomputing.
            cold = AnalysisCache(stats=stats, disk=DiskTier(path, stats=stats))
            assert cold.bound_result(self.FakeTrail(), lambda: ["MISS"]) == [10]
            snap = stats.snapshot()
            # One disk miss (the cold write) and one disk hit (the warm read).
            assert snap["bound.disk"] == (1, 1)

    def test_disk_scope_isolates_configurations(self, tmp_path):
        """Entries written under one analysis scope (domain, summaries,
        module) are invisible to caches opened under another — a bound
        computed for configuration A must never answer configuration B."""
        from repro.perf.disktier import DiskTier

        path = str(tmp_path / "bounds.jsonl")
        with runtime.override(True):
            stats = runtime.PerfStats()
            zone = AnalysisCache(
                stats=stats, disk=DiskTier(path, stats=stats), disk_scope="scope-A"
            )
            assert zone.bound_result(self.FakeTrail(), lambda: ["A"]) == ["A"]
            other = AnalysisCache(
                stats=stats, disk=DiskTier(path, stats=stats), disk_scope="scope-B"
            )
            assert other.bound_result(self.FakeTrail(), lambda: ["B"]) == ["B"]
            # Same scope still warms up across instances.
            warm = AnalysisCache(
                stats=stats, disk=DiskTier(path, stats=stats), disk_scope="scope-A"
            )
            assert warm.bound_result(self.FakeTrail(), lambda: ["MISS"]) == ["A"]

    def test_degraded_bound_results_never_persist(self, tmp_path):
        """A ⊤ substitute after budget exhaustion describes a deadline,
        not the trail: it must not be written to (or served from) the
        shared persistent tier."""
        from repro.bounds.analysis import BoundResult
        from repro.bounds.cost import CostBound
        from repro.perf.disktier import DiskTier

        path = str(tmp_path / "bounds.jsonl")
        degraded = BoundResult(
            feasible=True, bound=CostBound.unbounded(), degraded=True
        )
        with runtime.override(True):
            stats = runtime.PerfStats()
            tier = DiskTier(path, stats=stats)
            cache = AnalysisCache(stats=stats, disk=tier)
            assert cache.bound_result(self.FakeTrail(), lambda: degraded) is degraded
            assert len(tier) == 0  # nothing written
            fresh = AnalysisCache(stats=stats, disk=DiskTier(path, stats=stats))
            assert fresh.bound_result(self.FakeTrail(), lambda: "clean") == "clean"

    def test_clear_leaves_disk_tier_alone(self, tmp_path):
        from repro.perf.disktier import DiskTier

        path = str(tmp_path / "bounds.jsonl")
        with runtime.override(True):
            stats = runtime.PerfStats()
            cache = AnalysisCache(stats=stats, disk=DiskTier(path, stats=stats))
            cache.bound_result(self.FakeTrail(), lambda: [10])
            cache.clear()
            assert len(cache) == 0
            # The persistent tier outlives the driver by design.
            again = AnalysisCache(stats=stats, disk=DiskTier(path, stats=stats))
            assert again.bound_result(self.FakeTrail(), lambda: ["MISS"]) == [10]
