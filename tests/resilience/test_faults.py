"""The fault-injection harness itself: parsing, determinism, semantics."""

import os

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec, parse_spec, plan_from_env
from repro.util.errors import InjectedFault

pytestmark = pytest.mark.resilience


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


class TestParseSpec:
    def test_minimal(self):
        spec = parse_spec("worker.run:error")
        assert spec.site == "worker.run"
        assert spec.kind == "error"
        assert spec.at == 1 and not spec.from_on and not spec.once

    def test_all_the_flags(self):
        spec = parse_spec("cache.get:corrupt:once:match=modPow:p=0.5@3+")
        assert spec.site == "cache.get"
        assert spec.kind == "corrupt"
        assert spec.once
        assert spec.match == "modPow"
        assert spec.prob == 0.5
        assert spec.at == 3 and spec.from_on

    def test_delay_carries_seconds(self):
        spec = parse_spec("engine.step:delay=0.25")
        assert spec.kind == "delay"
        assert spec.delay == 0.25

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_spec("worker.run:explode")

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError, match="unknown fault flag"):
            parse_spec("worker.run:error:sometimes")

    def test_round_trips_through_describe(self):
        for text in ["worker.run:error@2", "cache.get:corrupt:once@1",
                     "zone.closure:delay=0.1@1+"]:
            spec = parse_spec(text)
            assert parse_spec(spec.describe()) == spec


class TestFiring:
    def test_fires_on_nth_hit_only(self):
        plan = FaultPlan([parse_spec("engine.step:error@3")])
        assert plan.fire("engine.step") is None
        assert plan.fire("engine.step") is None
        with pytest.raises(InjectedFault):
            plan.fire("engine.step")
        assert plan.fire("engine.step") is None  # @N without + is one-shot

    def test_from_on_fires_repeatedly(self):
        plan = FaultPlan([parse_spec("engine.step:error@2+")])
        assert plan.fire("engine.step") is None
        for _ in range(3):
            with pytest.raises(InjectedFault):
                plan.fire("engine.step")

    def test_site_isolation(self):
        plan = FaultPlan([parse_spec("cache.get:corrupt")])
        assert plan.fire("engine.step") is None
        assert plan.fire("cache.get") == "corrupt"

    def test_match_filters_by_key(self):
        plan = FaultPlan([parse_spec("worker.run:error:match=modPow")])
        assert plan.fire("worker.run", key="array_safe") is None
        with pytest.raises(InjectedFault):
            plan.fire("worker.run", key="modPow1_safe")

    def test_delay_sleeps_and_continues(self):
        slept = []
        plan = FaultPlan([parse_spec("zone.closure:delay=0.5")], sleep=slept.append)
        assert plan.fire("zone.closure") == "delay"
        assert slept == [0.5]

    def test_seeded_probability_is_deterministic(self):
        def outcomes(seed):
            plan = FaultPlan([parse_spec("engine.step:corrupt:p=0.5@1+")], seed=seed)
            return [plan.fire("engine.step") for _ in range(32)]

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)
        assert "corrupt" in outcomes(7) and None in outcomes(7)

    def test_once_without_ledger_is_per_plan(self):
        plan = FaultPlan([parse_spec("worker.run:error:once@1+")])
        with pytest.raises(InjectedFault):
            plan.fire("worker.run")
        assert plan.fire("worker.run") is None

    def test_once_with_ledger_spans_plans(self, tmp_path):
        ledger = str(tmp_path / "ledger")
        first = FaultPlan([parse_spec("worker.run:error:once")], ledger=ledger)
        second = FaultPlan([parse_spec("worker.run:error:once")], ledger=ledger)
        with pytest.raises(InjectedFault):
            first.fire("worker.run")
        # A fresh plan (another process, in real life) sees the claim.
        assert second.fire("worker.run") is None
        assert os.listdir(ledger)


class TestActivation:
    def test_inactive_by_default(self):
        assert faults.maybe_fire("worker.run") is None

    def test_install_and_clear(self):
        faults.install(FaultPlan([parse_spec("cache.get:corrupt")]))
        assert faults.maybe_fire("cache.get") == "corrupt"
        faults.clear()
        os.environ.pop(faults.ENV_FAULTS, None)
        assert faults.maybe_fire("cache.get") is None

    def test_plan_from_env(self):
        env = {
            faults.ENV_FAULTS: "worker.run:error@2, cache.get:corrupt:once",
            faults.ENV_SEED: "9",
            faults.ENV_LEDGER: "/tmp/some-ledger",
        }
        plan = plan_from_env(env)
        assert plan is not None
        assert len(plan.specs) == 2
        assert plan.seed == 9
        assert plan.ledger == "/tmp/some-ledger"
        assert plan_from_env({}) is None

    def test_fire_counts_events(self):
        from repro.perf import runtime

        before = runtime.STATS.events_snapshot()
        faults.install(FaultPlan([parse_spec("cache.get:corrupt")]))
        faults.maybe_fire("cache.get")
        delta = runtime.STATS.events_delta(before)
        assert delta.get("fault.corrupt") == 1
