"""The circuit breaker state machine, driven by a fake clock.

Every transition of docs/RESILIENCE.md's three-state machine: the
consecutive-failure trip, the timed and the forced probation, probe
accounting, and the reports the shard manager relies on.  No test here
sleeps — ``clock`` is injected.
"""

import threading

import pytest

from repro.resilience.breaker import CircuitBreaker

pytestmark = pytest.mark.resilience


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, reset_seconds=30.0, clock=clock)


class TestClosed:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self, breaker):
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        # Two more failures are again below the threshold of three.
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state == "closed"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestTrip:
    def test_threshold_consecutive_failures_trip(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.record_failure() is True  # this report tripped it
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_failures_while_open_do_not_retrip(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.record_failure() is False
        assert breaker.trips == 1


class TestProbation:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"

    def test_timed_half_open_after_quiet_period(self, breaker, clock):
        self._trip(breaker)
        clock.advance(29.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half_open"

    def test_probe_slots_are_consumed(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=1.0, half_open_max=2, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # both probe slots taken

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(30.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_timer(self, breaker, clock):
        self._trip(breaker)
        clock.advance(30.0)
        assert breaker.allow()
        assert breaker.record_failure() is True  # probe failed: caller rebuilds
        assert breaker.state == "open"
        assert breaker.trips == 2
        clock.advance(29.0)
        assert breaker.state == "open"  # the quiet period restarted
        clock.advance(1.0)
        assert breaker.state == "half_open"

    def test_force_probe_skips_the_wait(self, breaker):
        self._trip(breaker)
        breaker.force_probe()
        assert breaker.state == "half_open"
        assert breaker.allow()

    def test_force_probe_noop_unless_open(self, breaker):
        breaker.force_probe()
        assert breaker.state == "closed"

    def test_close_resets_probe_accounting(self, breaker, clock):
        self._trip(breaker)
        breaker.force_probe()
        assert breaker.allow()
        breaker.record_success()
        # A later trip + probation starts with a full probe budget.
        self._trip(breaker)
        breaker.force_probe()
        assert breaker.allow()


class TestReports:
    def test_reset_returns_to_pristine(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.snapshot()["streak"] == 0

    def test_snapshot_fields(self, breaker):
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap == {"state": "closed", "streak": 1, "trips": 0}
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.snapshot()["state"] == "open"
        assert breaker.snapshot()["trips"] == 1

    def test_thread_safety_under_mixed_reports(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        errors = []

        def hammer():
            try:
                for _ in range(200):
                    breaker.allow()
                    breaker.record_failure()
                    breaker.record_success()
                    breaker.state
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert breaker.state in ("closed", "open", "half_open")
