"""Satellite fault-matrix smoke: the perf harness survives injected chaos.

Runs ``benchmarks/bench_perf.py --quick`` as a subprocess with a fault
plan that (a) kills one pool worker (``BrokenProcessPool`` in the
parent; ``pool`` keeps the serial baseline alive) and (b) corrupts a
cache entry on read.  The harness must still exit 0 — the crashed row
retried on the serial backend, the corrupt entry quarantined and
recomputed — with every digest matching the fault-free baseline.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.resilience import faults

pytestmark = [pytest.mark.resilience, pytest.mark.slow]

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _run_quick(tmp_path, tag, **fault_env):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    for var in (faults.ENV_FAULTS, faults.ENV_SEED, faults.ENV_LEDGER):
        env.pop(var, None)
    env.update(fault_env)
    output = str(tmp_path / ("report-%s.json" % tag))
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join("benchmarks", "bench_perf.py"),
            "--quick",
            "--output",
            output,
        ],
        env=env,
        capture_output=True,
        text=True,
        cwd=REPO,
        timeout=600,
    )
    report = None
    if os.path.exists(output):
        with open(output) as handle:
            report = json.load(handle)
    return proc, report


def test_quick_survives_worker_crash_and_cache_corruption(tmp_path):
    ledger = str(tmp_path / "ledger")
    proc, report = _run_quick(
        tmp_path,
        "faulted",
        REPRO_FAULTS="worker.run:crash:once:pool,cache.get:corrupt",
        REPRO_FAULT_LEDGER=ledger,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert report is not None
    assert report["total"]["all_ok"]
    assert report["total"]["all_digests_match"]
    # The chaos actually happened: the crash was claimed in the ledger
    # and the broken pool forced serial retries.
    assert os.listdir(ledger)
    assert report["total"]["retries"] >= 1
    assert report["faults"]  # the plan is recorded in the report
