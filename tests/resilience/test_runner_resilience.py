"""Crash-safe suite execution: retries, journal/resume, interrupt handling."""

import json
import os
import subprocess
import sys

import pytest

from repro.benchsuite import ALL_BENCHMARKS
from repro.benchsuite.runner import BenchResult, ParallelSuiteRunner
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, parse_spec
from repro.resilience.journal import SuiteJournal
from repro.resilience.retry import RetryPolicy
from repro.util.errors import SuiteInterrupted, WorkerCrashed

pytestmark = pytest.mark.resilience

MICRO = [b for b in ALL_BENCHMARKS if b.group == "MicroBench"]
REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

NO_SLEEP = RetryPolicy(retries=2, sleep=lambda s: None)


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    yield
    faults.clear()


def _cli_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env.pop(faults.ENV_FAULTS, None)
    env.pop(faults.ENV_LEDGER, None)
    env.update(extra)
    return env


class TestRetries:
    def test_injected_failure_is_retried_to_success(self):
        benches = MICRO[:2]
        baseline = {
            r.name: r.digest
            for r in ParallelSuiteRunner(benches, jobs=1, backend="serial").run()
        }
        faults.install(FaultPlan([parse_spec("worker.run:error:once")]))
        runner = ParallelSuiteRunner(
            benches, jobs=1, backend="serial", retry_policy=NO_SLEEP
        )
        results = runner.run()
        assert {r.name: r.digest for r in results} == baseline
        assert sum(runner.retry_counts.values()) == 1
        assert sum(r.retries for r in results) == 1

    def test_exhausted_retries_raise_worker_crashed(self):
        faults.install(FaultPlan([parse_spec("worker.run:error@1+")]))
        runner = ParallelSuiteRunner(
            MICRO[:1],
            jobs=1,
            backend="serial",
            retry_policy=RetryPolicy(retries=1, sleep=lambda s: None),
        )
        with pytest.raises(WorkerCrashed) as info:
            runner.run()
        assert info.value.attempts == 2

    def test_zero_retries_fails_on_first_error(self):
        faults.install(FaultPlan([parse_spec("worker.run:error:once")]))
        with pytest.raises(WorkerCrashed):
            ParallelSuiteRunner(MICRO[:1], jobs=1, backend="serial").run()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ParallelSuiteRunner(MICRO[:1], retries=-1)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelSuiteRunner(MICRO[:1], jobs=-4)


class TestJournalResume:
    def test_completed_rows_are_journaled(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        ParallelSuiteRunner(MICRO[:3], jobs=1, backend="serial", journal=path).run()
        records = SuiteJournal(path).load()
        assert sorted(records) == sorted(b.name for b in MICRO[:3])

    def test_resume_skips_journaled_rows(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        first = ParallelSuiteRunner(
            MICRO[:3], jobs=1, backend="serial", journal=path
        ).run()
        # A resumed run must not re-execute anything: make every fresh
        # execution fail loudly and rely on the journal alone.
        faults.install(FaultPlan([parse_spec("worker.run:error@1+")]))
        runner = ParallelSuiteRunner(
            MICRO[:3], jobs=1, backend="serial", journal=path, resume=True
        )
        resumed = runner.run()
        assert [r.name for r in resumed] == [r.name for r in first]
        assert [r.digest for r in resumed] == [r.digest for r in first]
        assert all(r.resumed for r in resumed)
        assert runner.resumed_names == [b.name for b in MICRO[:3]]

    def test_partial_journal_runs_only_the_rest(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        ParallelSuiteRunner(MICRO[:2], jobs=1, backend="serial", journal=path).run()
        faults.install(
            FaultPlan([parse_spec("worker.run:error:match=%s" % MICRO[0].name)])
        )
        runner = ParallelSuiteRunner(
            MICRO[:3], jobs=1, backend="serial", journal=path, resume=True
        )
        results = runner.run()  # MICRO[0] comes from the journal: no fault hit
        assert len(results) == 3
        assert results[0].resumed and results[1].resumed
        assert not results[2].resumed

    def test_bench_result_round_trips_through_json(self):
        result = ParallelSuiteRunner(MICRO[:1], jobs=1, backend="serial").run()[0]
        clone = BenchResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.digest == result.digest
        assert clone.cache_stats == result.cache_stats
        assert isinstance(
            next(iter(clone.cache_stats.values()), (0, 0)), tuple
        )

    def test_malformed_journal_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as handle:
            handle.write("this is not json\n")
            handle.write('{"name": "x"}\n')  # no result payload
        runner = ParallelSuiteRunner(
            MICRO[:1], jobs=1, backend="serial", journal=path, resume=True
        )
        results = runner.run()
        assert len(results) == 1 and not results[0].resumed


class TestInterrupt:
    def test_injected_interrupt_raises_suite_interrupted(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        target = MICRO[2].name
        faults.install(
            FaultPlan([parse_spec("worker.run:interrupt:match=%s" % target)])
        )
        runner = ParallelSuiteRunner(
            MICRO[:4], jobs=1, backend="serial", journal=path
        )
        with pytest.raises(SuiteInterrupted) as info:
            runner.run()
        # The journal holds exactly the rows that finished first.
        records = SuiteJournal(path).load()
        assert sorted(records) == sorted(b.name for b in MICRO[:2])
        assert {r.name for r in info.value.completed} == set(records)

    def test_interrupt_exit_code_is_130_and_distinct_from_mismatch(self, tmp_path):
        """Satellite: SIGINT during a suite run must exit 130 — non-zero
        and distinct from the MISMATCH exit code 1 — with the journal
        flushed for --resume."""
        journal = str(tmp_path / "journal.jsonl")
        target = MICRO[2].name
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "table1",
                "--group",
                "MicroBench",
                "--jobs",
                "1",
                "--journal",
                journal,
            ],
            env=_cli_env(
                REPRO_FAULTS="worker.run:interrupt:match=%s" % target
            ),
            capture_output=True,
            text=True,
            cwd=REPO,
            timeout=300,
        )
        assert proc.returncode == 130, proc.stderr
        assert proc.returncode != 1
        records = SuiteJournal(journal).load()
        assert sorted(records) == sorted(b.name for b in MICRO[:2])
        # ...and a --resume run completes the table without re-running
        # the journaled rows.
        done = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "table1",
                "--group",
                "MicroBench",
                "--jobs",
                "1",
                "--journal",
                journal,
                "--resume",
            ],
            env=_cli_env(),
            capture_output=True,
            text=True,
            cwd=REPO,
            timeout=300,
        )
        assert done.returncode == 0, done.stderr
        assert "resumed 2 row(s)" in done.stderr

    def test_interrupt_during_pool_run_shuts_down_and_surfaces(self, tmp_path):
        """A KeyboardInterrupt surfacing from a process-pool collection
        must shut the pool down and raise SuiteInterrupted (not hang and
        not return partial results as if complete)."""
        ledger = str(tmp_path / "ledger")
        env_plan = FaultPlan(
            [parse_spec("worker.run:interrupt:once")], ledger=ledger
        )
        faults.install(env_plan)
        # The interrupt fires inside a worker (serial backend here keeps
        # it in-process and deterministic; the pool path is covered by
        # the subprocess test above via --jobs).
        with pytest.raises(SuiteInterrupted):
            ParallelSuiteRunner(MICRO[:2], jobs=1, backend="serial").run()


class TestCrashRecovery:
    def test_pool_worker_crash_is_retried_to_completion(self, tmp_path):
        """Acceptance criterion: an injected worker crash under a
        process pool (BrokenProcessPool) is retried on the serial
        backend and the suite completes with correct verdicts."""
        ledger = str(tmp_path / "ledger")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "table1",
                "--group",
                "MicroBench",
                "--jobs",
                "4",
                "--retries",
                "2",
                "--journal",
                str(tmp_path / "journal.jsonl"),
            ],
            env=_cli_env(
                REPRO_FAULTS="worker.run:crash:once",
                REPRO_FAULT_LEDGER=ledger,
            ),
            capture_output=True,
            text=True,
            cwd=REPO,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "MISMATCH" not in proc.stdout
        assert os.listdir(ledger)  # the crash really fired
