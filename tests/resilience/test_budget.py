"""Budgets and sound degradation: the deadline half of the resilience layer."""

import pytest

from repro.benchsuite import ALL_BENCHMARKS
from repro.core.report import verdict_digest, verdict_to_dict
from repro.resilience.budget import Budget, DegradationReport
from repro.util.errors import ResourceExhausted

pytestmark = pytest.mark.resilience

MICRO = [b for b in ALL_BENCHMARKS if b.group == "MicroBench"]


class TestBudget:
    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        budget.start()
        for _ in range(10_000):
            budget.step("engine.step")
        budget.checkpoint("bounds.compute")
        budget.refinement()

    def test_wall_budget_trips(self):
        budget = Budget(wall_seconds=0.0)
        budget.start()
        with pytest.raises(ResourceExhausted) as info:
            budget.checkpoint("bounds.compute")
        assert info.value.kind == "wall"
        assert info.value.site == "bounds.compute"

    def test_step_budget_trips_at_limit(self):
        budget = Budget(max_steps=3)
        budget.start()
        budget.step("engine.step")
        budget.step("engine.step")
        budget.step("engine.step")
        with pytest.raises(ResourceExhausted) as info:
            budget.step("engine.step")
        assert info.value.kind == "steps"

    def test_refinement_budget_trips(self):
        budget = Budget(max_refinements=1)
        budget.start()
        budget.refinement()
        with pytest.raises(ResourceExhausted) as info:
            budget.refinement()
        assert info.value.kind == "refinements"

    def test_start_is_idempotent(self):
        budget = Budget(wall_seconds=100.0)
        budget.start()
        first = budget.elapsed()
        budget.start()
        assert budget.elapsed() >= first

    def test_steps_check_wall_at_interval(self):
        budget = Budget(wall_seconds=0.0, check_interval=8)
        budget.start()
        with pytest.raises(ResourceExhausted) as info:
            for _ in range(8):
                budget.step("engine.step")
        assert info.value.kind == "wall"


class TestDegradedAnalysis:
    def test_tiny_deadline_degrades_to_unknown(self):
        bench = MICRO[0]
        verdict = bench.run(budget=Budget(wall_seconds=0.001))
        assert verdict.status == "unknown"
        assert verdict.degraded
        report = verdict.degradation
        assert isinstance(report, DegradationReport)
        assert report.kind == "wall"
        assert report.leaves_degraded >= 1
        assert report.leaves_degraded <= report.leaves_total

    def test_tiny_deadline_is_bounded_in_time(self):
        import time

        t0 = time.monotonic()
        MICRO[0].run(budget=Budget(wall_seconds=0.001))
        assert time.monotonic() - t0 < 5.0

    def test_step_budget_degrades(self):
        verdict = MICRO[0].run(budget=Budget(max_steps=5))
        assert verdict.status == "unknown"
        assert verdict.degradation.kind == "steps"
        assert verdict.degraded_leaves >= 1

    def test_degraded_leaf_is_wide_never_safe(self):
        """Soundness: an exhausted budget can only lose precision.  A
        ⊤-bounded leaf must be classified "wide" — it can never support
        a "safe" verdict."""
        verdict = MICRO[0].run(budget=Budget(max_steps=5))
        assert verdict.status != "safe"
        wide = [l for l in verdict.tree.leaves() if l.bound and l.bound.degraded]
        assert wide
        assert all(l.status == "wide" for l in wide)

    def test_degradation_in_json_report_but_not_digest(self):
        bench = MICRO[0]
        degraded = bench.run(budget=Budget(wall_seconds=0.001))
        data = verdict_to_dict(degraded)
        assert data["resilience"]["degraded"] is True
        assert data["resilience"]["degradation"]["kind"] == "wall"
        # The resilience block is volatile: two equally-degraded runs
        # with different timings must still digest over analysis content
        # only (the partition differs from the seed's, and that is the
        # only thing allowed to differ).
        from repro.core.report import _VOLATILE_KEYS

        assert "resilience" in _VOLATILE_KEYS

    def test_generous_budget_matches_seed_digest(self):
        bench = MICRO[0]
        plain = bench.run()
        budgeted = bench.run(budget=Budget(wall_seconds=3600.0))
        assert not budgeted.degraded
        assert verdict_digest(plain) == verdict_digest(budgeted)


class TestDegradationReport:
    def test_from_exhaustion_and_render(self):
        budget = Budget(wall_seconds=0.0)
        budget.start()
        try:
            budget.checkpoint("bounds.compute")
        except ResourceExhausted as exc:
            report = DegradationReport.from_exhaustion(exc, budget, phase="safety")
        assert report.kind == "wall"
        assert report.phase == "safety"
        assert "wall" in report.render()
        data = report.to_dict()
        assert data["site"] == "bounds.compute"
