"""Generic digraph algorithm tests (the product-graph toolbox)."""

import pytest

from repro.bounds.graphops import (
    GraphLoop,
    IrreducibleGraphError,
    dominates,
    immediate_dominators,
    natural_loops,
    predecessors,
    reverse_postorder,
    topo_order_dag,
)

DIAMOND = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
LOOP = {"a": ["b"], "b": ["c", "d"], "c": ["b"], "d": []}
NESTED = {
    "a": ["h1"],
    "h1": ["h2", "x"],
    "h2": ["body", "h1"],
    "body": ["h2"],
    "x": [],
}
IRREDUCIBLE = {"a": ["b", "c"], "b": ["c"], "c": ["b", "d"], "d": []}


class TestTraversals:
    def test_rpo_starts_at_root(self):
        order = reverse_postorder(["a"], DIAMOND)
        assert order[0] == "a"
        assert order[-1] == "d"
        assert set(order) == set(DIAMOND)

    def test_rpo_respects_edges_in_dag(self):
        order = reverse_postorder(["a"], DIAMOND)
        pos = {n: i for i, n in enumerate(order)}
        assert pos["a"] < pos["b"] < pos["d"]
        assert pos["a"] < pos["c"] < pos["d"]

    def test_predecessors(self):
        preds = predecessors(DIAMOND)
        assert sorted(preds["d"]) == ["b", "c"]
        assert preds["a"] == []

    def test_topo_order_rejects_cycles(self):
        with pytest.raises(ValueError):
            topo_order_dag(list(LOOP), LOOP)

    def test_topo_order_on_dag(self):
        order = topo_order_dag(list(DIAMOND), DIAMOND)
        pos = {n: i for i, n in enumerate(order)}
        assert pos["a"] < pos["b"] and pos["a"] < pos["c"] and pos["b"] < pos["d"]


class TestDominators:
    def test_diamond_idoms(self):
        idom = immediate_dominators("a", DIAMOND)
        assert idom["a"] is None
        assert idom["b"] == "a" and idom["c"] == "a"
        assert idom["d"] == "a"

    def test_dominates_reflexive_and_transitive(self):
        idom = immediate_dominators("a", NESTED)
        assert dominates(idom, "a", "body")
        assert dominates(idom, "h1", "h2")
        assert dominates(idom, "body", "body")
        assert not dominates(idom, "body", "h1")


class TestLoops:
    def test_simple_loop(self):
        loops = natural_loops("a", LOOP)
        assert len(loops) == 1
        (loop,) = loops
        assert loop.header == "b"
        assert loop.body == {"b", "c"}
        assert loop.back_edges == [("c", "b")]
        assert loop.exit_edges(LOOP) == [("b", "d")]

    def test_nested_loops(self):
        loops = natural_loops("a", NESTED)
        assert len(loops) == 2
        outer = next(l for l in loops if l.header == "h1")
        inner = next(l for l in loops if l.header == "h2")
        assert inner.parent is outer
        assert inner.body < outer.body
        assert outer.depth == 0 and inner.depth == 1

    def test_acyclic_graph_has_no_loops(self):
        assert natural_loops("a", DIAMOND) == []

    def test_irreducible_raises(self):
        with pytest.raises(IrreducibleGraphError):
            natural_loops("a", IRREDUCIBLE)
