"""BOUNDANALYSIS integration tests: symbolic bounds match executions."""

import pytest

from repro.bounds import compute_bound, compute_proc_bounds, default_summaries
from repro.domains import DOMAINS
from repro.interp import Interpreter
from tests.helpers import compile_one, compile_to_cfgs

ZONE = DOMAINS["zone"]


def bound_of(source, proc, domain=ZONE):
    return compute_bound(compile_one(source, proc), domain)


def check_contains(source, proc, arg_sets, env_of):
    """The static bound must contain every concrete running time."""
    cfgs = compile_to_cfgs(source)
    interp = Interpreter(cfgs)
    result = compute_bound(cfgs[proc], ZONE)
    assert result.feasible
    for args in arg_sets:
        time = interp.time_of(proc, args)
        lo, hi = result.bound.evaluate(env_of(args))
        assert hi is not None, "expected a finite upper bound"
        assert lo <= time <= hi, (args, time, lo, hi)


class TestStraightLine:
    def test_constant_program_exact(self):
        result = bound_of("proc f(): int { return 41; }", "f")
        lo, hi = result.bound.evaluate({})
        assert lo == hi

    def test_branchy_range(self):
        source = """
        proc f(a: int): int {
            if (a > 0) { return 1; }
            var x: int = 0;
            x = x + 1;
            x = x + 1;
            return x;
        }
        """
        result = bound_of(source, "f")
        lo, hi = result.bound.evaluate({"a": 0})
        assert lo < hi  # two paths with different lengths


class TestLoops:
    def test_counter_loop_linear(self):
        source = """
        proc f(n: uint): int {
            var i: int = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        """
        result = bound_of(source, "f")
        assert result.bound.degree() == 1
        check_contains(source, "f", [[0], [1], [7]], lambda a: {"n": a[0]})

    def test_exact_iteration_count(self):
        source = """
        proc f(n: uint): int {
            var i: int = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        """
        result = bound_of(source, "f")
        ((_, ib),) = list(result.loop_bounds.items())
        assert ib.exact
        assert str(ib.lower) == "n" and str(ib.upper) == "n"

    def test_loop_over_array_length(self):
        source = """
        proc f(a: byte[]): int {
            var s: int = 0;
            for (var i: int = 0; i < len(a); i = i + 1) { s = s + a[i]; }
            return s;
        }
        """
        result = bound_of(source, "f")
        assert "a#len" in {s for s in result.bound.symbols()}
        check_contains(
            source, "f", [[[]], [[1]], [[1, 2, 3, 4]]], lambda a: {"a#len": len(a[0])}
        )

    def test_nested_loops_quadratic(self):
        source = """
        proc f(n: uint): int {
            var t: int = 0;
            for (var i: int = 0; i < n; i = i + 1) {
                for (var j: int = 0; j < n; j = j + 1) { t = t + 1; }
            }
            return t;
        }
        """
        result = bound_of(source, "f")
        assert result.bound.degree() == 2
        check_contains(source, "f", [[0], [1], [3]], lambda a: {"n": a[0]})

    def test_loop_with_break_upper_only(self):
        source = """
        proc f(n: uint, a: byte[]): int {
            var i: int = 0;
            while (i < n) {
                if (i < len(a)) {
                    if (a[i] == 0) { break; }
                }
                i = i + 1;
            }
            return i;
        }
        """
        result = bound_of(source, "f")
        assert result.feasible and result.bound.upper is not None
        check_contains(
            source,
            "f",
            [[3, [1, 1, 1]], [3, [1, 0, 1]], [0, []]],
            lambda a: {"n": a[0], "a#len": len(a[1])},
        )

    def test_decrementing_loop(self):
        source = """
        proc f(n: uint): int {
            var i: int = n;
            while (i > 0) { i = i - 1; }
            return i;
        }
        """
        result = bound_of(source, "f")
        assert result.bound.degree() == 1
        check_contains(source, "f", [[0], [5]], lambda a: {"n": a[0]})

    def test_step_two_loop(self):
        source = """
        proc f(n: uint): int {
            var i: int = 0;
            while (i < n) { i = i + 2; }
            return i;
        }
        """
        result = bound_of(source, "f")
        assert result.feasible and result.bound.upper is not None
        check_contains(source, "f", [[0], [1], [8], [9]], lambda a: {"n": a[0]})

    def test_unbounded_loop_reported(self):
        source = """
        proc f(n: int): int {
            var i: int = 0;
            while (i != n) { i = i + 1; }
            return i;
        }
        """
        # The != guard is not representable; no upper bound derivable.
        result = bound_of(source, "f")
        assert result.feasible
        assert result.bound.upper is None


class TestTrailsAndFeasibility:
    def test_infeasible_trail(self):
        from repro.trails import Trail, split_trail

        source = """
        proc f(n: uint): int {
            if (n < 0) { return 1; }
            return 2;
        }
        """
        cfg = compile_one(source, "f")
        trail = Trail.most_general(cfg)
        branch = cfg.branch_blocks()[0]
        parts = split_trail(trail, branch, "taint")
        results = {
            p.description: compute_bound(cfg, ZONE, trail_dfa=p.dfa) for p in parts
        }
        feasibility = sorted(r.feasible for r in results.values())
        assert feasibility == [False, True]


class TestCalls:
    def test_extern_summary_cost(self):
        source = (
            "extern md5(p: byte[]): byte[];\n"
            "proc f(p: byte[]): int { var h: byte[] = md5(p); return len(h); }"
        )
        result = bound_of(source, "f")
        lo, hi = result.bound.evaluate({"p#len": 4})
        assert lo > 500  # includes the md5 summary cost

    def test_extern_without_summary_unbounded(self):
        source = "extern mystery(): int;\nproc f(): int { return mystery(); }"
        result = bound_of(source, "f")
        assert result.bound.upper is None

    def test_interprocedural_bound(self):
        source = """
        proc inner(n: uint): int {
            var i: int = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        proc outer(m: uint): int { return inner(m); }
        """
        cfgs = compile_to_cfgs(source)
        proc_bounds = compute_proc_bounds(cfgs, ZONE, default_summaries())
        assert "inner" in proc_bounds and "outer" in proc_bounds
        result = compute_bound(
            cfgs["outer"], ZONE, proc_bounds=proc_bounds
        )
        # The callee's n-linear bound must be re-expressed in m.
        assert result.bound.upper is not None
        lo, hi = result.bound.evaluate({"m": 6})
        interp = Interpreter(cfgs)
        time = interp.time_of("outer", [6])
        assert lo <= time <= hi

    def test_recursion_stays_unbounded(self):
        source = """
        proc rec(n: int): int {
            if (n <= 0) { return 0; }
            return rec(n - 1);
        }
        """
        cfgs = compile_to_cfgs(source)
        proc_bounds = compute_proc_bounds(cfgs, ZONE, default_summaries())
        assert "rec" not in proc_bounds
