"""Memoized per-CFG helpers: repeated calls must not re-walk the CFG."""

from repro.bounds.analysis import input_symbols, nonneg_symbols, symbol_levels
from repro.lang import ast
from repro.perf import runtime
from tests.helpers import compile_one

SOURCE = """
proc walk(secret high: int, public data: byte[], public flag: bool): int {
    var i: int = 0;
    while (i < len(data)) { i = i + 1; }
    return i;
}
"""


class CountingParams(list):
    """A params list that counts how many times it is iterated."""

    def __init__(self, items):
        super().__init__(items)
        self.walks = 0

    def __iter__(self):
        self.walks += 1
        return super().__iter__()


def _instrumented_cfg():
    cfg = compile_one(SOURCE, "walk")
    cfg.params = CountingParams(cfg.params)
    return cfg


class TestMetaMemo:
    def test_repeated_calls_do_not_rewalk(self):
        cfg = _instrumented_cfg()
        with runtime.override(True):
            first = input_symbols(cfg)
            for _ in range(5):
                assert input_symbols(cfg) == first
        assert cfg.params.walks == 1

    def test_each_helper_walks_once(self):
        cfg = _instrumented_cfg()
        with runtime.override(True):
            for _ in range(3):
                input_symbols(cfg)
                nonneg_symbols(cfg)
                symbol_levels(cfg)
        assert cfg.params.walks == 3  # one walk per distinct helper

    def test_disabled_rewalks_every_call(self):
        cfg = _instrumented_cfg()
        with runtime.override(False):
            input_symbols(cfg)
            input_symbols(cfg)
        assert cfg.params.walks == 2

    def test_values_are_correct_and_isolated(self):
        cfg = _instrumented_cfg()
        with runtime.override(True):
            symbols = input_symbols(cfg)
            assert symbols == ["high", "data#len", "flag"]
            # Mutating the returned copies must not corrupt the cache.
            symbols.append("corrupted")
            levels = symbol_levels(cfg)
            levels["corrupted"] = None
            assert input_symbols(cfg) == ["high", "data#len", "flag"]
            assert "corrupted" not in symbol_levels(cfg)
            assert nonneg_symbols(cfg) == frozenset({"data#len", "flag"})
            assert symbol_levels(cfg)["high"] is ast.SecLevel.SECRET
