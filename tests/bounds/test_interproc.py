"""Interprocedural bound tests: ProcBound instantiation and ordering."""

from fractions import Fraction

from repro.bounds import compute_bound, compute_proc_bounds, default_summaries
from repro.bounds.interproc import call_graph, proc_param_symbols
from repro.domains import DOMAINS
from repro.interp import Interpreter
from tests.helpers import compile_to_cfgs

ZONE = DOMAINS["zone"]


class TestCallGraph:
    def test_edges(self):
        cfgs = compile_to_cfgs(
            """
            proc a(): int { return b() + c(); }
            proc b(): int { return c(); }
            proc c(): int { return 1; }
            """
        )
        graph = call_graph(cfgs)
        assert graph["a"] == {"b", "c"}
        assert graph["b"] == {"c"}
        assert graph["c"] == set()

    def test_externs_excluded(self):
        cfgs = compile_to_cfgs(
            "extern md5(p: byte[]): byte[];\n"
            'proc f(): int { return len(md5("x")); }'
        )
        assert call_graph(cfgs)["f"] == set()


class TestParamSymbols:
    def test_kinds(self):
        cfgs = compile_to_cfgs("proc f(a: byte[], n: int, u: uint) { }")
        symbols = proc_param_symbols(cfgs["f"])
        assert symbols == [("a#len", "len"), ("n", "int"), ("u", "int")]


class TestInstantiation:
    def test_symbolic_argument_substitution(self):
        source = """
        proc inner(k: uint): int {
            var i: int = 0;
            while (i < k) { i = i + 1; }
            return i;
        }
        proc outer(n: uint): int {
            return inner(n) + inner(n);
        }
        """
        cfgs = compile_to_cfgs(source)
        bounds = compute_proc_bounds(cfgs, ZONE, default_summaries())
        result = compute_bound(cfgs["outer"], ZONE, proc_bounds=bounds)
        interp = Interpreter(cfgs)
        for n in (0, 3, 6):
            time = interp.time_of("outer", [n])
            lo, hi = result.bound.evaluate({"n": n})
            assert hi is not None
            assert lo <= time <= hi, (n, time, lo, hi)

    def test_constant_argument(self):
        source = """
        proc inner(k: uint): int {
            var i: int = 0;
            while (i < k) { i = i + 1; }
            return i;
        }
        proc outer(): int { return inner(5); }
        """
        cfgs = compile_to_cfgs(source)
        bounds = compute_proc_bounds(cfgs, ZONE, default_summaries())
        result = compute_bound(cfgs["outer"], ZONE, proc_bounds=bounds)
        lo, hi = result.bound.evaluate({})
        time = Interpreter(cfgs).time_of("outer", [])
        assert lo <= time <= hi

    def test_array_length_argument(self):
        source = """
        proc scan(a: byte[]): int {
            var s: int = 0;
            for (var i: int = 0; i < len(a); i = i + 1) { s = s + a[i]; }
            return s;
        }
        proc caller(data: byte[]): int { return scan(data); }
        """
        cfgs = compile_to_cfgs(source)
        bounds = compute_proc_bounds(cfgs, ZONE, default_summaries())
        result = compute_bound(cfgs["caller"], ZONE, proc_bounds=bounds)
        assert "data#len" in result.bound.symbols()
        interp = Interpreter(cfgs)
        for data in ([], [1, 2, 3, 4]):
            time = interp.time_of("caller", [data])
            lo, hi = result.bound.evaluate({"data#len": len(data)})
            assert lo <= time <= hi

    def test_unresolvable_argument_loses_upper_only(self):
        source = """
        proc inner(k: int): int {
            var i: int = 0;
            while (i < k) { i = i + 1; }
            return i;
        }
        proc outer(n: int, m: int): int {
            return inner(n * m);
        }
        """
        cfgs = compile_to_cfgs(source)
        bounds = compute_proc_bounds(cfgs, ZONE, default_summaries())
        result = compute_bound(cfgs["outer"], ZONE, proc_bounds=bounds)
        # n*m is not affine: the callee's n-linear upper bound cannot be
        # instantiated; the result must be feasible with upper = None.
        assert result.feasible
        assert result.bound.upper is None

    def test_mutual_recursion_skipped(self):
        source = """
        proc even(n: int): bool {
            if (n == 0) { return true; }
            return odd(n - 1);
        }
        proc odd(n: int): bool {
            if (n == 0) { return false; }
            return even(n - 1);
        }
        """
        cfgs = compile_to_cfgs(source)
        bounds = compute_proc_bounds(cfgs, ZONE, default_summaries())
        # Mutual recursion: sound bounds exist but never a finite upper.
        for name in ("even", "odd"):
            if name in bounds:
                assert bounds[name].bound.upper is None
