"""Extern-summary tests, incl. consistency with the concrete models."""

from fractions import Fraction

from repro.bounds.cost import Poly
from repro.bounds.summaries import CallSummary, SummaryRegistry, default_summaries
from repro.interp.externs import (
    DEFAULT_MAX_BITS,
    big_mod_cost,
    big_multiply_cost,
    default_registry,
)


class TestCallSummary:
    def test_constant_summary(self):
        summary = CallSummary("f", Fraction(10), Fraction(20))
        bound = summary.instantiate([])
        assert bound.evaluate({}) == (10, 20)

    def test_per_byte_summary(self):
        summary = CallSummary(
            "hash", Fraction(5), Fraction(5), per_byte_arg=0, per_byte=Fraction(3)
        )
        bound = summary.instantiate([Poly.symbol("p#len")])
        lo, hi = bound.evaluate({"p#len": 4})
        assert (lo, hi) == (17, 17)

    def test_per_byte_with_unknown_length(self):
        summary = CallSummary(
            "hash", Fraction(5), Fraction(5), per_byte_arg=0, per_byte=Fraction(3)
        )
        bound = summary.instantiate([None])
        assert bound.upper is None  # upper lost, lower kept

    def test_registry_lookup_and_copy(self):
        registry = SummaryRegistry()
        registry.register(CallSummary("f", Fraction(1), Fraction(1)))
        assert registry.lookup("f") is not None
        assert registry.lookup("g") is None
        clone = registry.copy()
        clone.register(CallSummary("g", Fraction(2), Fraction(2)))
        assert registry.lookup("g") is None


class TestDefaults:
    def test_all_benchmark_externs_covered(self):
        registry = default_summaries()
        for name in ("md5", "bigMultiply", "bigMod", "bigTestBit", "bigBitLength"):
            assert registry.lookup(name) is not None, name

    def test_costs_match_concrete_models(self):
        """The static summaries and the interpreter's extern models must
        charge the same constants, or the soundness tests would drift."""
        registry = default_summaries(DEFAULT_MAX_BITS)
        concrete = default_registry()
        mul_result, mul_cost = concrete.resolve("bigMultiply").impl([3, 5])
        assert mul_result == 15
        summary = registry.lookup("bigMultiply")
        assert summary.lo == summary.hi == mul_cost == big_multiply_cost()
        mod_result, mod_cost = concrete.resolve("bigMod").impl([17, 5])
        assert mod_result == 2
        assert registry.lookup("bigMod").hi == mod_cost == big_mod_cost()

    def test_bit_length_return_range_is_modeled_width(self):
        registry = default_summaries(512)
        summary = registry.lookup("bigBitLength")
        assert summary.ret_lo == summary.ret_hi == 512

    def test_testbit_returns_boolean_range(self):
        summary = default_summaries().lookup("bigTestBit")
        assert (summary.ret_lo, summary.ret_hi) == (0, 1)

    def test_md5_returns_16_bytes(self):
        registry = default_summaries()
        assert registry.lookup("md5").ret_len == 16
        concrete = default_registry()
        digest, _ = concrete.resolve("md5").impl([[1, 2, 3]])
        assert len(digest) == 16

    def test_md5_digest_deterministic(self):
        concrete = default_registry()
        a, _ = concrete.resolve("md5").impl([[1, 2, 3]])
        b, _ = concrete.resolve("md5").impl([[1, 2, 3]])
        c, _ = concrete.resolve("md5").impl([[1, 2, 4]])
        assert a == b
        assert a != c
