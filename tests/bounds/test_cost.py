"""Symbolic cost algebra unit tests."""

from fractions import Fraction

import pytest

from repro.bounds.cost import CostBound, Poly

L = frozenset({"n"})


def sym(name):
    return Poly.symbol(name)


class TestPoly:
    def test_arithmetic(self):
        p = sym("n") * 2 + Poly.constant(3)
        q = sym("n") + Poly.constant(1)
        assert (p + q).terms == (3 * sym("n") + Poly.constant(4)).terms

    def test_multiplication_degree(self):
        p = sym("n") + Poly.constant(1)
        sq = p * p
        assert sq.degree() == 2
        assert sq.terms[("n", "n")] == 1
        assert sq.terms[("n",)] == 2

    def test_evaluate(self):
        p = sym("a") * sym("b") + 2 * sym("a") + Poly.constant(5)
        assert p.evaluate({"a": 3, "b": 4}) == 12 + 6 + 5

    def test_dominates_with_nonneg(self):
        big = 2 * sym("n")
        small = sym("n")
        assert big.dominates(small, L)
        assert not small.dominates(big, L)
        # Without nonneg knowledge nothing dominates.
        assert not big.dominates(small, frozenset())

    def test_zero_and_one(self):
        assert Poly.ZERO.degree() == 0
        assert Poly.ONE.const_value == 1

    def test_str_readable(self):
        assert str(23 * sym("g#len") + Poly.constant(10)) == "23*g#len + 10"


class TestCostBound:
    def test_exact_and_range(self):
        exact = CostBound.exact(Poly.constant(8))
        assert exact.evaluate({}) == (8, 8)
        rng = CostBound.range(Poly.constant(8), 23 * sym("n") + Poly.constant(10), L)
        lo, hi = rng.evaluate({"n": 4})
        assert (lo, hi) == (8, 102)

    def test_addition(self):
        a = CostBound.range(Poly.constant(1), Poly.constant(2))
        b = CostBound.range(sym("n"), sym("n") + Poly.constant(1), L)
        total = a + b
        lo, hi = total.evaluate({"n": 10})
        assert (lo, hi) == (11, 13)

    def test_unbounded_propagates(self):
        a = CostBound.unbounded(Poly.constant(1))
        b = CostBound.exact(Poly.constant(5))
        assert (a + b).upper is None
        assert b.multiply(a).upper is None
        assert a.degree() is None

    def test_multiply_loop_semantics(self):
        body = CostBound.range(Poly.constant(19), Poly.constant(23), L)
        iters = CostBound.exact(sym("n"), L)
        # The caller vouches for the iteration lower bound's validity
        # (the lemma's side condition); only then is the product exact.
        total = body.multiply(iters, iterations_nonneg=True)
        lo, hi = total.evaluate({"n": 4})
        assert (lo, hi) == (76, 92)

    def test_multiply_clamps_possibly_negative_iterations(self):
        body = CostBound.exact(Poly.constant(10))
        # "n" not known non-negative here.
        iters = CostBound.exact(sym("n"))
        total = body.multiply(iters)
        lo, _ = total.evaluate({"n": -3})
        assert lo <= 0  # clamped member keeps the bound sound

    def test_multiply_unclamped_when_flagged(self):
        body = CostBound.exact(Poly.constant(10))
        iters = CostBound.exact(sym("n"))
        total = body.multiply(iters, iterations_nonneg=True)
        lo, hi = total.evaluate({"n": 5})
        assert (lo, hi) == (50, 50)

    def test_join_widens(self):
        a = CostBound.exact(Poly.constant(5))
        b = CostBound.exact(sym("n"), L)
        joined = a.join(b)
        lo, hi = joined.evaluate({"n": 100})
        assert lo == 5 and hi == 100

    def test_scale(self):
        bound = CostBound.range(Poly.constant(2), Poly.constant(4))
        assert bound.scale(Fraction(3, 2)).evaluate({}) == (3, 6)
        with pytest.raises(ValueError):
            bound.scale(-1)

    def test_upper_clamped_at_zero(self):
        bound = CostBound.exact(sym("n"))  # n may be negative
        _, hi = bound.evaluate({"n": -7})
        assert hi == 0  # the embedded zero polynomial clamps the max

    def test_symbols_and_degree(self):
        bound = CostBound.range(
            sym("a"), sym("a") * sym("b") + Poly.constant(1), frozenset({"a", "b"})
        )
        assert bound.symbols() == frozenset({"a", "b"})
        assert bound.degree() == 2
        assert bound.lower_degree() == 1

    def test_set_cap_collapse_is_sound(self):
        from repro.bounds.cost import MAX_SET_SIZE

        bounds = CostBound.exact(Poly.constant(0), L)
        for k in range(MAX_SET_SIZE + 3):
            bounds = bounds.join(CostBound.exact(k * sym("n") + Poly.constant(k), L))
        # After collapse the upper bound must still dominate every member.
        k_max = MAX_SET_SIZE + 2
        _, hi = bounds.evaluate({"n": 10})
        assert hi >= k_max * 10 + k_max

    def test_str_shape(self):
        bound = CostBound.range(
            19 * sym("g#len") + Poly.constant(10),
            23 * sym("g#len") + Poly.constant(10),
            frozenset({"g#len"}),
        )
        assert str(bound) == "[19*g#len + 10, 23*g#len + 10]"
