"""Lemma-database unit tests: the iteration-bound matcher in isolation."""

from fractions import Fraction

from repro.bounds.lemmas import (
    IterationBound,
    RankCandidate,
    linexpr_to_poly,
    match_iteration_lemmas,
    seed_name,
    symbolic_form,
)
from repro.domains import DOMAINS, LinCons, LinExpr

ZONE = DOMAINS["zone"]
x = LinExpr.var


def make_transition(delta_lo, delta_hi, var="i"):
    """A transition relation with var - var@pre in [delta_lo, delta_hi]."""
    state = ZONE.top()
    pre = x(seed_name(var))
    state = state.guard(LinCons.ge(x(var) - pre, delta_lo))
    state = state.guard(LinCons.le(x(var) - pre, delta_hi))
    # The bound symbol 'n' is loop-invariant.
    npre = x(seed_name("n"))
    state = state.guard(LinCons.eq(x("n") - npre, 0))
    return state


def make_entry(i0=0, n_nonneg=True):
    state = ZONE.top().assign("i", LinExpr.constant(i0))
    if n_nonneg:
        state = state.guard(LinCons.ge(x("n"), 0))
    return state


RANK = RankCandidate(rank=x("n") - x("i") - 1, branch_node=(1, -1))


class TestHelpers:
    def test_seed_name(self):
        assert seed_name("i") == "i@pre"

    def test_linexpr_to_poly(self):
        poly = linexpr_to_poly(2 * x("a") - x("b") + 3)
        assert poly.evaluate({"a": 5, "b": 1}) == 12

    def test_symbolic_form_direct_symbol(self):
        state = ZONE.top()
        expr = symbolic_form(x("n") + 1, state, ["n"])
        assert expr == x("n") + 1

    def test_symbolic_form_via_equality(self):
        state = ZONE.top().assign("t", x("n") + 2)
        expr = symbolic_form(x("t"), state, ["n"])
        assert expr == x("n") + 2

    def test_symbolic_form_constant_var(self):
        state = ZONE.top().assign("c", LinExpr.constant(7))
        expr = symbolic_form(x("c") + x("n"), state, ["n"])
        assert expr == x("n") + 7

    def test_symbolic_form_unresolvable(self):
        state = ZONE.top()  # 'mystery' unconstrained
        assert symbolic_form(x("mystery"), state, ["n"]) is None


class TestLemmaMatching:
    def _match(self, transition, entry, single_exit=True, **kwargs):
        return match_iteration_lemmas(
            candidates=[RANK],
            transition=transition,
            entry_state=entry,
            seeded_vars={"i", "n"},
            symbols=["n"],
            single_exit_branch=RANK.branch_node if single_exit else None,
            inner_loops_finite=True,
            **kwargs,
        )

    def test_unit_counter_exact(self):
        bound = self._match(make_transition(1, 1), make_entry())
        assert bound.exact
        assert str(bound.upper) == "n"
        assert str(bound.lower) == "n"
        assert bound.lower_nonneg  # delta_max == 1 => unclamped lower valid

    def test_variable_increment_upper_only(self):
        bound = self._match(make_transition(1, 3), make_entry())
        assert not bound.exact
        assert bound.upper is not None and str(bound.upper) == "n"
        # lower uses delta_max=3: ((n-1)+1)/3 = n/3
        assert bound.lower.evaluate({"n": 7}) == Fraction(7, 3)

    def test_fast_decrease_tightens_upper(self):
        bound = self._match(make_transition(2, 2), make_entry())
        # upper = (n-1)/2 + 1 = (n+1)/2
        assert bound.upper.evaluate({"n": 9}) == 5

    def test_non_decreasing_rank_rejected(self):
        bound = self._match(make_transition(-1, 1), make_entry())
        assert bound.upper is None

    def test_multiple_exits_forbid_lower(self):
        bound = self._match(make_transition(1, 1), make_entry(), single_exit=False)
        assert bound.upper is not None
        assert str(bound.lower) == "0"
        assert not bound.exact

    def test_unseeded_rank_variable_skipped(self):
        bound = match_iteration_lemmas(
            candidates=[RankCandidate(rank=x("w") - x("i"), branch_node=(1, -1))],
            transition=make_transition(1, 1),
            entry_state=make_entry(),
            seeded_vars={"i", "n"},  # 'w' not seeded
            symbols=["n"],
            single_exit_branch=(1, -1),
            inner_loops_finite=True,
        )
        assert bound.upper is None

    def test_constant_entry_fallback(self):
        """When the rank has no symbolic form, the entry state's numeric
        upper bound is used (the bigBitLength-style case)."""
        entry = ZONE.top().assign("i", LinExpr.constant(0))
        entry = entry.guard(LinCons.le(x("n"), 100)).guard(LinCons.ge(x("n"), 1))
        bound = match_iteration_lemmas(
            candidates=[RANK],
            transition=make_transition(1, 1),
            entry_state=entry,
            seeded_vars={"i", "n"},
            symbols=[],  # no symbols available at all
            single_exit_branch=RANK.branch_node,
            inner_loops_finite=True,
        )
        assert bound.upper is not None
        assert bound.upper.evaluate({}) == 100  # (100-0-1)/1 + 1

    def test_inner_loops_must_be_finite_for_lower(self):
        bound = match_iteration_lemmas(
            candidates=[RANK],
            transition=make_transition(1, 1),
            entry_state=make_entry(),
            seeded_vars={"i", "n"},
            symbols=["n"],
            single_exit_branch=RANK.branch_node,
            inner_loops_finite=False,
        )
        assert str(bound.lower) == "0"

    def test_no_candidates(self):
        bound = match_iteration_lemmas(
            candidates=[],
            transition=make_transition(1, 1),
            entry_state=make_entry(),
            seeded_vars={"i", "n"},
            symbols=["n"],
            single_exit_branch=None,
            inner_loops_finite=True,
        )
        assert bound.upper is None and str(bound.lower) == "0"
