"""The zone domain's perf layer: incremental closure and memo soundness.

The incremental ``_tightened`` path must produce *exactly* the matrix a
full Floyd–Warshall closure would (the closure of a DBM is its unique
shortest-path matrix), and every memoized operation must return the same
result as the unmemoized seed path.  Checked here both on hand-picked
cases and on randomized operation sequences.
"""

import random
from fractions import Fraction

import pytest

from repro.domains import LinCons, LinExpr
from repro.domains.zone import ZoneDomain, ZoneState
from repro.perf import runtime

x = LinExpr.var("x")
y = LinExpr.var("y")
z = LinExpr.var("z")

DOMAIN = ZoneDomain()


def _entries(state):
    """Comparable content of a zone state (closed form)."""
    closed = state._close()
    if closed._bottom:
        return "bot"
    return (tuple(closed._vars), tuple(tuple(row) for row in closed._m))


def _random_ops(seed, steps=12):
    rng = random.Random(seed)
    names = ["x", "y", "z"]
    ops = []
    for _ in range(steps):
        kind = rng.choice(["const", "shift", "copy", "guard_le", "guard_diff"])
        a, b = rng.sample(names, 2)
        c = rng.randint(-5, 5)
        ops.append((kind, a, b, c))
    return ops


def _apply(state, ops):
    for kind, a, b, c in ops:
        va, vb = LinExpr.var(a), LinExpr.var(b)
        if kind == "const":
            state = state.assign(a, LinExpr.constant(c))
        elif kind == "shift":
            state = state.assign(a, va + c)
        elif kind == "copy":
            state = state.assign(a, vb + c)
        elif kind == "guard_le":
            state = state.guard(LinCons.le(va, c))
        elif kind == "guard_diff":
            state = state.guard(LinCons.le(va - vb, c))
    return state


class TestIncrementalClosure:
    def test_tightened_matches_full_closure(self):
        base = DOMAIN.top(["x", "y", "z"])
        base = base.guard(LinCons.le(x - y, 3)).guard(LinCons.le(y - z, 2))
        closed = base._close()
        # Tighten x - z (index 1 and 3): incremental vs full must agree.
        incremental = closed._tightened([(1, 3, 1)])
        m = closed._copy_matrix()
        m[1][3] = 1
        full = ZoneState(closed._vars, m, False, closed=False)._close_full()
        assert _entries(incremental) == _entries(full)

    def test_tightened_detects_emptiness(self):
        base = DOMAIN.top(["x", "y"])
        base = base.guard(LinCons.le(x - y, -1))._close()
        # y - x <= -1 together with x - y <= -1 is a negative cycle.
        result = base._tightened([(2, 1, -1)])
        assert result.is_bottom()

    def test_no_op_update_keeps_state(self):
        base = DOMAIN.top(["x"]).guard(LinCons.le(x, 5))._close()
        result = base._tightened([(1, 0, 10)])  # looser than x <= 5
        assert _entries(result) == _entries(base)

    def test_fraction_zero_diagonal_is_normalized(self):
        """forget() leaves Fraction(0) on the diagonal; the incremental
        path must not let it poison the matrix with Fraction arithmetic."""
        with runtime.override(True):
            state = DOMAIN.top(["x", "y"]).guard(LinCons.le(x - y, 3))
            state = state.forget("x").assign("x", LinExpr.constant(2))
            closed = state._close()
            assert not closed.is_bottom()
            for row in closed._m:
                for entry in row:
                    assert entry is None or not (
                        isinstance(entry, Fraction) and entry.denominator == 1
                    )


class TestFlagEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_sequences_agree(self, seed):
        ops = _random_ops(seed)
        with runtime.override(False):
            plain = _apply(DOMAIN.top(["x", "y", "z"]), ops)
        with runtime.override(True):
            runtime.clear_caches()
            fast = _apply(DOMAIN.top(["x", "y", "z"]), ops)
        assert _entries(plain) == _entries(fast)
        # Lattice queries agree too.
        with runtime.override(True):
            assert plain.leq(fast) and fast.leq(plain)

    @pytest.mark.parametrize("seed", range(10))
    def test_joins_and_orders_agree(self, seed):
        ops_a = _random_ops(seed * 2 + 100)
        ops_b = _random_ops(seed * 2 + 101)
        with runtime.override(False):
            a_plain = _apply(DOMAIN.top(["x", "y", "z"]), ops_a)
            b_plain = _apply(DOMAIN.top(["x", "y", "z"]), ops_b)
            join_plain = _entries(a_plain.join(b_plain))
            leq_plain = a_plain.leq(b_plain)
        with runtime.override(True):
            runtime.clear_caches()
            a_fast = _apply(DOMAIN.top(["x", "y", "z"]), ops_a)
            b_fast = _apply(DOMAIN.top(["x", "y", "z"]), ops_b)
            assert _entries(a_fast.join(b_fast)) == join_plain
            assert a_fast.leq(b_fast) == leq_plain


class TestCacheKey:
    def test_equal_content_equal_key(self):
        a = DOMAIN.top(["x"]).guard(LinCons.le(x, 3))
        b = DOMAIN.top(["x"]).guard(LinCons.le(x, 3))
        assert a is not b
        assert a.cache_key() == b.cache_key()

    def test_different_content_different_key(self):
        a = DOMAIN.top(["x"]).guard(LinCons.le(x, 3))
        b = DOMAIN.top(["x"]).guard(LinCons.le(x, 4))
        assert a.cache_key() != b.cache_key()

    def test_bottom_key(self):
        assert DOMAIN.bottom().cache_key() == "bot"

    def test_close_memo_returns_equal_state(self):
        with runtime.override(True):
            runtime.clear_caches()
            a = DOMAIN.top(["x", "y"]).guard(LinCons.le(x - y, 2))
            b = DOMAIN.top(["x", "y"]).guard(LinCons.le(x - y, 2))
            assert _entries(a) == _entries(b)
