"""Shared behavioural tests run against every numeric domain.

Each domain (interval, zone, octagon, polyhedra) must satisfy the same
lattice/transfer contracts; relational facts are additionally checked on
the domains that can express them.
"""

from fractions import Fraction

import pytest

from repro.domains import DOMAINS, LinCons, LinExpr

x = LinExpr.var("x")
y = LinExpr.var("y")
z = LinExpr.var("z")

ALL = sorted(DOMAINS)
RELATIONAL = ["zone", "octagon", "polyhedra"]


@pytest.fixture(params=ALL)
def domain(request):
    return DOMAINS[request.param]


@pytest.fixture(params=RELATIONAL)
def rel_domain(request):
    return DOMAINS[request.param]


class TestLattice:
    def test_top_is_not_bottom(self, domain):
        assert not domain.top().is_bottom()
        assert domain.bottom().is_bottom()

    def test_bottom_leq_everything(self, domain):
        bot = domain.bottom()
        top = domain.top()
        assert bot.leq(top)
        assert bot.leq(bot)
        assert top.leq(top)
        assert not top.leq(bot)

    def test_join_upper_bound(self, domain):
        a = domain.top().assign("x", LinExpr.constant(1))
        b = domain.top().assign("x", LinExpr.constant(5))
        joined = a.join(b)
        assert a.leq(joined) and b.leq(joined)
        lo, hi = joined.var_bounds("x")
        assert lo == 1 and hi == 5

    def test_join_with_bottom_is_identity(self, domain):
        a = domain.top().assign("x", LinExpr.constant(2))
        assert a.join(domain.bottom()).var_bounds("x") == (Fraction(2), Fraction(2))
        assert domain.bottom().join(a).var_bounds("x") == (Fraction(2), Fraction(2))

    def test_widen_covers_join(self, domain):
        a = domain.top().assign("x", LinExpr.constant(0))
        b = domain.top().assign("x", LinExpr.constant(1))
        widened = a.widen(a.join(b))
        assert a.leq(widened) and b.leq(widened)


class TestTransfer:
    def test_assign_constant(self, domain):
        state = domain.top().assign("x", LinExpr.constant(7))
        assert state.var_bounds("x") == (Fraction(7), Fraction(7))

    def test_assign_affine(self, domain):
        state = domain.top().assign("x", LinExpr.constant(3)).assign("y", x + 2)
        assert state.var_bounds("y") == (Fraction(5), Fraction(5))

    def test_assign_havoc(self, domain):
        state = domain.top().assign("x", LinExpr.constant(3)).assign("x", None)
        assert state.var_bounds("x") == (None, None)

    def test_self_increment(self, domain):
        state = domain.top().assign("x", LinExpr.constant(1)).assign("x", x + 1)
        assert state.var_bounds("x") == (Fraction(2), Fraction(2))

    def test_guard_refines(self, domain):
        state = domain.top().guard(LinCons.le(x, 9)).guard(LinCons.ge(x, 1))
        assert state.var_bounds("x") == (Fraction(1), Fraction(9))

    def test_contradiction_is_bottom(self, domain):
        state = domain.top().guard(LinCons.le(x, 0)).guard(LinCons.ge(x, 1))
        assert state.is_bottom()

    def test_constant_contradiction(self, domain):
        assert domain.top().guard(LinCons.le(LinExpr.constant(3), 0)).is_bottom()

    def test_forget(self, domain):
        state = domain.top().assign("x", LinExpr.constant(2)).forget("x")
        assert state.var_bounds("x") == (None, None)

    def test_entails(self, domain):
        state = domain.top().guard(LinCons.le(x, 4))
        assert state.entails(LinCons.le(x, 5))
        assert not state.entails(LinCons.le(x, 3))


class TestRelational:
    def test_difference_tracked(self, rel_domain):
        state = rel_domain.top().assign("y", x + 3)
        lo, hi = state.bounds_of(y - x)
        assert lo == 3 and hi == 3

    def test_guard_between_variables(self, rel_domain):
        state = rel_domain.top().guard(LinCons.le(x, y))
        assert state.entails(LinCons.le(x - y, 0))

    def test_transitivity_via_closure(self, rel_domain):
        state = (
            rel_domain.top()
            .guard(LinCons.le(x, y))
            .guard(LinCons.le(y, z))
        )
        assert state.entails(LinCons.le(x, z))

    def test_assign_preserves_relations_of_others(self, rel_domain):
        state = rel_domain.top().guard(LinCons.eq(x, y)).assign("z", LinExpr.constant(0))
        lo, hi = state.bounds_of(x - y)
        assert lo == 0 and hi == 0

    def test_join_keeps_common_relation(self, rel_domain):
        a = rel_domain.top().guard(LinCons.eq(y - x, 1)).guard(LinCons.eq(x, 0))
        b = rel_domain.top().guard(LinCons.eq(y - x, 1)).guard(LinCons.eq(x, 5))
        joined = a.join(b)
        lo, hi = joined.bounds_of(y - x)
        assert lo == 1 and hi == 1

    def test_counter_loop_invariant(self, rel_domain):
        """The canonical fixpoint: x:=0; while (x<n) x++ gives x==n at exit."""
        D = rel_domain
        n = LinExpr.var("n")
        # n >= 0 needed for x == n at exit (else the loop exits with x=0 > n).
        init = D.top().guard(LinCons.ge(n, 0)).assign("x", LinExpr.constant(0))
        inv = init
        for _ in range(30):
            body = inv.guard(LinCons.lt(x, n)).assign("x", x + 1)
            nxt = init.join(body)
            if nxt.leq(inv):
                break
            inv = inv.widen(nxt)
        # one narrowing pass
        body = inv.guard(LinCons.lt(x, n)).assign("x", x + 1)
        inv = init.join(body)
        exit_state = inv.guard(LinCons.ge(x, n))
        lo, hi = exit_state.bounds_of(x - n)
        assert lo == 0 and hi == 0


class TestOctagonExtras:
    def test_sum_constraints(self):
        D = DOMAINS["octagon"]
        state = D.top().guard(LinCons.le(x + y, 5)).guard(LinCons.ge(x + y, 5))
        lo, hi = state.bounds_of(x + y)
        assert lo == 5 and hi == 5

    def test_negated_assign(self):
        D = DOMAINS["octagon"]
        state = D.top().assign("x", LinExpr.constant(3)).assign("y", -x + 1)
        assert state.var_bounds("y") == (Fraction(-2), Fraction(-2))

    def test_octagon_at_least_as_precise_as_zone_on_sums(self):
        zone = DOMAINS["zone"].top().guard(LinCons.le(x + y, 5))
        octa = DOMAINS["octagon"].top().guard(LinCons.le(x + y, 5))
        # The zone cannot represent x+y<=5 exactly; the octagon can.
        _, zone_hi = zone.bounds_of(x + y)
        _, octa_hi = octa.bounds_of(x + y)
        assert octa_hi == 5
        assert zone_hi is None or zone_hi >= 5


class TestPolyhedraExtras:
    def test_general_affine_relation(self):
        D = DOMAINS["polyhedra"]
        # y = 2x + 1 is beyond octagons.
        state = D.top().guard(LinCons.eq(y, 2 * x + 1)).guard(LinCons.eq(x, 4))
        assert state.var_bounds("y") == (Fraction(9), Fraction(9))

    def test_projection_keeps_consequences(self):
        D = DOMAINS["polyhedra"]
        state = (
            D.top()
            .guard(LinCons.le(x, y))
            .guard(LinCons.le(y, z))
            .forget("y")
        )
        assert state.entails(LinCons.le(x, z))

    def test_assign_is_fourier_motzkin_exact(self):
        D = DOMAINS["polyhedra"]
        state = D.top().guard(LinCons.eq(x, 2)).assign("x", 3 * x + y)
        # x' = 6 + y
        lo, hi = state.bounds_of(LinExpr.var("x") - y)
        assert lo == 6 and hi == 6
