"""Linear expressions and constraints."""

from fractions import Fraction

import pytest

from repro.domains.linexpr import LinCons, LinExpr, RelOp

x = LinExpr.var("x")
y = LinExpr.var("y")


class TestLinExpr:
    def test_arithmetic(self):
        expr = 2 * x + y - 3
        assert expr.coeff("x") == 2
        assert expr.coeff("y") == 1
        assert expr.const == -3

    def test_zero_coefficients_dropped(self):
        expr = x - x + y
        assert expr.variables() == ("y",)

    def test_evaluate(self):
        expr = 2 * x - y + 1
        assert expr.evaluate({"x": 3, "y": 5}) == 2

    def test_substitute(self):
        expr = 2 * x + y
        assert expr.substitute("x", y + 1) == 3 * y + 2
        assert expr.substitute("z", y) == expr

    def test_rename(self):
        expr = x + 2 * y
        renamed = expr.rename({"x": "x@pre"})
        assert renamed.coeff("x@pre") == 1
        assert renamed.coeff("x") == 0

    def test_equality_and_hash(self):
        assert x + 1 == LinExpr({"x": 1}, 1)
        assert hash(x + 1) == hash(LinExpr({"x": 1}, 1))
        assert x + 1 != x + 2

    def test_scalar_multiplication(self):
        expr = (x + 2) * Fraction(1, 2)
        assert expr.coeff("x") == Fraction(1, 2)
        assert expr.const == 1


class TestLinCons:
    def test_le_normalization(self):
        cons = LinCons.le(x, y)  # x - y <= 0
        assert cons.op is RelOp.LE
        assert cons.holds({"x": 1, "y": 2})
        assert not cons.holds({"x": 3, "y": 2})

    def test_strict_integer_tightening(self):
        cons = LinCons.lt(x, 5)  # x <= 4
        assert cons.holds({"x": 4})
        assert not cons.holds({"x": 5})

    def test_ge_gt(self):
        assert LinCons.ge(x, 3).holds({"x": 3})
        assert not LinCons.gt(x, 3).holds({"x": 3})

    def test_eq(self):
        cons = LinCons.eq(x + y, 4)
        assert cons.holds({"x": 1, "y": 3})
        assert not cons.holds({"x": 1, "y": 4})

    def test_negate_inequality(self):
        cons = LinCons.le(x, 3)
        neg = cons.negate()
        for value in (-1, 3, 4, 10):
            assert cons.holds({"x": value}) != neg.holds({"x": value})

    def test_negate_equality_raises(self):
        with pytest.raises(ValueError):
            LinCons.eq(x, 1).negate()

    def test_rename(self):
        cons = LinCons.le(x, y).rename({"x": "a"})
        assert "a" in cons.variables()
