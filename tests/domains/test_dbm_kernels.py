"""Property tests: flat DBM kernels vs the seed list-of-lists closure.

The referee is :func:`repro.domains.dbm.closure_reference` — the seed
engine's ``None``-encoded triple loop, kept verbatim.  On seeded random
DBMs (ints and Fractions, varying +∞ density, planted negative cycles):

* the flat Floyd–Warshall kernel must agree entry-wise, including the
  inconsistency verdict and the int-vs-Fraction *type* of every entry;
* the O(n²) incremental closure after one tightened constraint must
  agree with re-closing the tightened matrix from scratch;
* the bytes cache key must be injective where defined and refuse
  exactly the matrices it cannot encode.
"""

import random
from fractions import Fraction

import pytest

from repro.domains import dbm
from repro.domains.dbm import INF


def random_opt_matrix(rng, n, frac_prob=0.0, inf_prob=0.35, lo=-8, hi=12):
    """A random ``None``-encoded DBM with a zero diagonal."""
    m = []
    for i in range(n):
        row = []
        for j in range(n):
            if i == j:
                row.append(0)
            elif rng.random() < inf_prob:
                row.append(None)
            elif rng.random() < frac_prob:
                row.append(Fraction(rng.randint(lo, hi), rng.randint(1, 4)))
            else:
                row.append(rng.randint(lo, hi))
        m.append(row)
    return m


def close_flat(matrix):
    """Close a ``None``-encoded matrix with the flat kernel; mirror the
    ``(closed, empty)`` contract of ``closure_reference``."""
    rows = dbm.rows_from_opt(matrix)
    ok = dbm.fw_close_rows(rows, len(rows))
    if not ok:
        return None, True
    return dbm.rows_to_opt(rows), False


class TestFlatClosureAgreesWithSeed:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_int_matrices(self, seed):
        rng = random.Random(seed)
        matrix = random_opt_matrix(rng, rng.randint(1, 7))
        expect, expect_empty = dbm.closure_reference(matrix)
        got, got_empty = close_flat(matrix)
        assert got_empty == expect_empty
        if not expect_empty:
            assert got == expect
            # Entry *types* must survive too: a min tie keeps the
            # original int, never a float or needless Fraction.
            for row_e, row_g in zip(expect, got):
                for e, g in zip(row_e, row_g):
                    assert type(e) is type(g)

    @pytest.mark.parametrize("seed", range(40))
    def test_random_fraction_matrices(self, seed):
        rng = random.Random(1000 + seed)
        matrix = random_opt_matrix(rng, rng.randint(1, 6), frac_prob=0.4)
        expect, expect_empty = dbm.closure_reference(matrix)
        got, got_empty = close_flat(matrix)
        assert got_empty == expect_empty
        if not expect_empty:
            assert got == expect

    @pytest.mark.parametrize("seed", range(20))
    def test_planted_negative_cycles_are_detected(self, seed):
        rng = random.Random(2000 + seed)
        n = rng.randint(2, 6)
        matrix = random_opt_matrix(rng, n, inf_prob=0.2)
        # Plant a certain negative 2-cycle.
        i, j = rng.sample(range(n), 2)
        matrix[i][j] = -5
        matrix[j][i] = 2
        expect, expect_empty = dbm.closure_reference(matrix)
        got, got_empty = close_flat(matrix)
        assert expect_empty and got_empty
        assert got is None and expect is None


class TestIncrementalClosureAgreesWithFull:
    @pytest.mark.parametrize("seed", range(60))
    def test_tighten_matches_reclose(self, seed):
        rng = random.Random(3000 + seed)
        n = rng.randint(2, 7)
        matrix = random_opt_matrix(
            rng, n, frac_prob=0.2 if seed % 3 == 0 else 0.0
        )
        closed, empty = dbm.closure_reference(matrix)
        if empty:
            return
        a, b = rng.sample(range(n), 2)
        old = closed[a][b]
        # Pick a strictly tightening, still-consistent bound.
        c = (old - rng.randint(1, 3)) if old is not None else rng.randint(-3, 3)
        back = closed[b][a]
        if back is not None and back + c < 0:
            return  # would go empty; tighten_rows' contract excludes this
        rows = dbm.rows_from_opt(closed)
        rows[a][b] = c
        dbm.tighten_rows(rows, n, a, b, c)
        tightened = [list(r) for r in closed]
        tightened[a][b] = c
        expect, expect_empty = dbm.closure_reference(tightened)
        assert not expect_empty
        assert dbm.rows_to_opt(rows) == expect


class TestIntKey:
    def test_distinct_matrices_distinct_keys(self):
        rng = random.Random(7)
        seen = {}
        for _ in range(200):
            m = dbm.rows_from_opt(random_opt_matrix(rng, 3))
            key = dbm.int_key(m)
            assert key is not None
            flat = tuple(tuple(r) for r in m)
            if key in seen:
                assert seen[key] == flat
            seen[key] = flat

    def test_fraction_entries_refuse_fast_key(self):
        assert dbm.int_key([[0, Fraction(1, 2)], [1, 0]]) is None

    def test_huge_int_refuses_fast_key(self):
        assert dbm.int_key([[0, 10**25], [1, 0]]) is None

    def test_sentinel_collision_refuses_fast_key(self):
        # A *finite* entry equal to the +∞ sentinel must not be
        # conflated with a real +∞.
        sentinel = (1 << 63) - 1
        assert dbm.int_key([[0, sentinel], [1, 0]]) is None
        assert dbm.int_key([[0, INF], [1, 0]]) is not None

    def test_inf_encodes_stably(self):
        a = dbm.int_key([[0, INF], [3, 0]])
        b = dbm.int_key([[0, INF], [3, 0]])
        c = dbm.int_key([[0, INF], [4, 0]])
        assert a == b and a != c
