"""Utility-module tests: tables, trees, errors, source positions."""

import pytest

from repro.util import (
    LexError,
    ParseError,
    Pos,
    ReproError,
    SourceError,
    Span,
    render_table,
    render_tree,
)


class TestTable:
    def test_alignment(self):
        text = render_table(["name", "n"], [["a", 1], ["bbb", 22]], ["l", "r"])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].endswith(" 1")
        assert lines[3].endswith("22")

    def test_separator_row(self):
        text = render_table(["x"], [["yy"]])
        assert "--" in text.splitlines()[1]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert len(text.splitlines()) == 2


class TestTree:
    def test_single_level(self):
        text = render_tree("root", ["child1", "child2"])
        assert "|-- child1" in text
        assert "`-- child2" in text

    def test_nesting_indents_continuations(self):
        inner = render_tree("mid", ["leaf"])
        text = render_tree("root", [inner, "sibling"])
        lines = text.splitlines()
        assert lines[0] == "root"
        assert lines[1] == "|-- mid"
        assert lines[2] == "|   `-- leaf"
        assert lines[3] == "`-- sibling"

    def test_no_children(self):
        assert render_tree("lonely", []) == "lonely"


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(LexError, SourceError)
        assert issubclass(ParseError, ReproError)

    def test_source_error_formats_position(self):
        err = SourceError("bad thing", 3, 7)
        assert "3:7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_source_error_without_position(self):
        assert str(SourceError("plain")) == "plain"


class TestPositions:
    def test_pos_str(self):
        assert str(Pos(2, 5)) == "2:5"

    def test_span(self):
        span = Span(Pos(1, 1), Pos(1, 9))
        assert str(span) == "1:1-1:9"
        assert Span.at(Pos(4, 2)).start == Pos(4, 2)
