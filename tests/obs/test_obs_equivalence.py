"""The off-switch contract: ``REPRO_OBS=0`` (the default) must be the
seed engine — identical verdict digests, no trace output, no span
overhead objects on the hot path (docs/OBSERVABILITY.md)."""

import os
import subprocess
import sys

import pytest

from repro.core import Blazer
from repro.core.report import verdict_digest, verdict_to_dict
from repro.obs import runtime as obs_runtime
from repro.obs.trace import COLLECTOR

SAFE_SRC = """
proc check(secret pin: int, public attempts: uint): int {
    var i: int = 0;
    while (i < attempts) { i = i + 1; }
    return i;
}
"""

LEAKY_SRC = """
proc leak(secret high: int, public low: uint): int {
    var i: int = 0;
    if (high > 0) {
        while (i < low) { i = i + 1; }
    }
    return i;
}
"""


@pytest.fixture(autouse=True)
def _clean_obs():
    COLLECTOR.clear()
    obs_runtime.set_trace_path(None)
    yield
    COLLECTOR.clear()
    obs_runtime.set_trace_path(None)


def test_obs_defaults_off_in_a_fresh_process():
    env = {k: v for k, v in os.environ.items() if k != "REPRO_OBS"}
    env["PYTHONPATH"] = "src"
    out = subprocess.run(
        [sys.executable, "-c", "from repro.obs import runtime; print(runtime.enabled())"],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert out.stdout.strip() == "False"


def test_env_zero_means_off_and_one_means_on():
    for value, expected in (("0", "False"), ("", "False"), ("1", "True")):
        env = dict(os.environ, PYTHONPATH="src", REPRO_OBS=value)
        out = subprocess.run(
            [sys.executable, "-c", "from repro.obs import runtime; print(runtime.enabled())"],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == expected, "REPRO_OBS=%r" % value


@pytest.mark.parametrize(
    "source,proc,status",
    [(SAFE_SRC, "check", "safe"), (LEAKY_SRC, "leak", "attack")],
)
def test_digests_identical_with_obs_on(source, proc, status, tmp_path):
    with obs_runtime.override(False):
        off = Blazer.from_source(source).analyze(proc)
    obs_runtime.set_trace_path(str(tmp_path / "trace.jsonl"))
    with obs_runtime.override(True):
        on = Blazer.from_source(source).analyze(proc)
    assert off.status == on.status == status
    assert verdict_digest(off) == verdict_digest(on)
    assert COLLECTOR.spans("blazer.analyze")  # the on-run really traced


def test_phase_timings_are_volatile(tmp_path):
    with obs_runtime.override(False):
        verdict = Blazer.from_source(SAFE_SRC).analyze("check")
    assert set(verdict.phase_seconds) >= {"taint", "bounds", "total"}
    assert "phases" in verdict_to_dict(verdict)
    before = verdict_digest(verdict)
    verdict.phase_seconds = {"taint": 99.0}
    assert verdict_digest(verdict) == before  # timings never shift the digest


def test_no_spans_recorded_when_off():
    with obs_runtime.override(False):
        Blazer.from_source(SAFE_SRC).analyze("check")
    assert COLLECTOR.spans() == []
