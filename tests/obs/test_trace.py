"""Trace spans: nesting, cross-thread/process linkage, JSONL export.

The process-backend test fans span-producing workers over the real
:func:`repro.perf.parallel.try_map` process pool; workers inherit
``REPRO_OBS`` / ``REPRO_TRACE`` through the environment (fork) and
append to one shared JSONL trace, which is then reassembled with
:func:`load_trace`.
"""

import os
import threading

import pytest

from repro.obs import runtime as obs_runtime
from repro.obs.trace import (
    COLLECTOR,
    _NULL,
    Span,
    current_context,
    load_trace,
    span,
)
from repro.perf.parallel import process_pool_usable, try_map


@pytest.fixture(autouse=True)
def _clean_obs():
    COLLECTOR.clear()
    obs_runtime.set_trace_path(None)
    yield
    COLLECTOR.clear()
    obs_runtime.set_trace_path(None)
    obs_runtime.set_enabled(os.environ.get("REPRO_OBS", "0") not in ("", "0", "false", "off"))


class TestOffSwitch:
    def test_disabled_span_is_the_shared_noop(self):
        with obs_runtime.override(False):
            assert span("checksafe") is _NULL
            assert span("other", trail="x") is _NULL

    def test_noop_span_records_nothing(self):
        with obs_runtime.override(False):
            with span("checksafe") as s:
                s.annotate(extra=1)
                assert s.context is None
            assert current_context() is None
        assert COLLECTOR.spans() == []

    def test_enabled_span_is_real(self):
        with obs_runtime.override(True):
            assert isinstance(span("checksafe"), Span)


class TestNesting:
    def test_parent_child_share_trace(self):
        with obs_runtime.override(True):
            with span("blazer.analyze") as root:
                assert root.trace_id == root.span_id  # root starts the trace
                assert root.parent_id is None
                with span("checksafe") as child:
                    assert child.trace_id == root.trace_id
                    assert child.parent_id == root.span_id
                    assert current_context() == child.context
                assert current_context() == root.context
        records = {r["name"]: r for r in COLLECTOR.spans()}
        assert records["checksafe"]["parent"] == records["blazer.analyze"]["span"]

    def test_explicit_parent_overrides_stack(self):
        with obs_runtime.override(True):
            with span("root") as root:
                ctx = root.context
            with span("adopted", parent=ctx) as adopted:
                assert adopted.trace_id == root.trace_id
                assert adopted.parent_id == root.span_id

    def test_attrs_rendered_lazily(self):
        calls = []

        def thunk():
            calls.append(1)
            return "rendered"

        with obs_runtime.override(True):
            with span("lazy", value=thunk):
                assert calls == []  # not rendered while open
        assert COLLECTOR.spans("lazy")[0]["attrs"]["value"] == "rendered"

    def test_exception_still_records_and_pops(self):
        with obs_runtime.override(True):
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError("boom")
            assert current_context() is None
        assert len(COLLECTOR.spans("doomed")) == 1

    def test_span_ids_embed_pid(self):
        with obs_runtime.override(True):
            with span("here") as s:
                assert s.span_id.startswith("%x-" % os.getpid())

    def test_backdate_stretches_duration(self):
        with obs_runtime.override(True):
            with span("stretched") as s:
                s.backdate(5.0)
        assert COLLECTOR.spans("stretched")[0]["seconds"] >= 5.0
        with obs_runtime.override(False):
            span("noop").backdate(5.0)  # the null span just ignores it

    def test_process_age_covers_interpreter_startup(self):
        age = obs_runtime.process_age_seconds()
        assert age > 0.0  # /proc-less platforms would report 0.0
        assert age < 3600.0


class TestThreads:
    def test_sibling_threads_get_independent_stacks(self):
        seen = {}

        def worker(name):
            with span(name) as s:
                seen[name] = (s.trace_id, s.parent_id)

        with obs_runtime.override(True):
            with span("main.root"):
                threads = [
                    threading.Thread(target=worker, args=("t%d" % i,))
                    for i in range(4)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        for trace_id, parent_id in seen.values():
            assert parent_id is None  # not nested under another thread's span
        assert len({trace for trace, _ in seen.values()}) == 4

    def test_explicit_context_links_across_threads(self):
        def worker(ctx, idx):
            with span("thread.child", parent=ctx, idx=idx):
                pass

        with obs_runtime.override(True):
            with span("fanout.root") as root:
                ctx = current_context()
                threads = [
                    threading.Thread(target=worker, args=(ctx, i)) for i in range(4)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        children = COLLECTOR.spans("thread.child")
        assert len(children) == 4
        assert {c["parent"] for c in children} == {root.span_id}
        assert {c["trace"] for c in children} == {root.trace_id}


def _process_span_worker(arg):
    """Module-level for pickling; runs inside a pool worker process."""
    idx, parent = arg
    from repro.obs import runtime as worker_runtime
    from repro.obs.trace import span as worker_span

    worker_runtime.set_enabled(True)  # idempotent under fork, needed under spawn
    with worker_span("process.child", parent=tuple(parent), idx=idx):
        pass
    return os.getpid()


class TestProcesses:
    @pytest.mark.skipif(not process_pool_usable(), reason="no process pools here")
    def test_workers_export_linked_spans_to_shared_trace(self, tmp_path, monkeypatch):
        trace_file = str(tmp_path / "trace.jsonl")
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_TRACE", trace_file)
        with obs_runtime.override(True):
            with span("suite.root") as root:
                ctx = current_context()
                outcomes = try_map(
                    _process_span_worker,
                    [(i, ctx) for i in range(4)],
                    jobs=2,
                    backend="process",
                )
        pids = [o for o in outcomes if isinstance(o, int)]
        assert len(pids) == 4
        assert all(pid != os.getpid() for pid in pids)

        records = list(load_trace(trace_file))
        children = [r for r in records if r["name"] == "process.child"]
        assert len(children) == 4
        assert {c["parent"] for c in children} == {root.span_id}
        assert {c["trace"] for c in children} == {root.trace_id}
        assert {c["pid"] for c in children} == set(pids)
        roots = [r for r in records if r["name"] == "suite.root"]
        assert len(roots) == 1  # the parent process exported its root too


class TestExport:
    def test_jsonl_export_and_forgiving_loader(self, tmp_path):
        trace_file = str(tmp_path / "trace.jsonl")
        obs_runtime.set_trace_path(trace_file)
        with obs_runtime.override(True):
            with span("outer", proc="foo"):
                with span("inner"):
                    pass
        with open(trace_file, "a", encoding="utf-8") as handle:
            handle.write("not json\n\n{\"no_span_key\": true}\n")
        records = list(load_trace(trace_file))
        assert [r["name"] for r in records] == ["inner", "outer"]  # exit order
        assert records[0]["parent"] == records[1]["span"]
        assert records[1]["attrs"] == {"proc": "foo"}
        assert all(r["seconds"] >= 0 for r in records)

    def test_span_metrics_feed_the_global_registry(self):
        from repro.obs.metrics import REGISTRY

        with obs_runtime.override(True):
            with span("metered"):
                pass
        families = {f.name: f for f in REGISTRY.collect()}
        totals = {
            dict(c.key)["name"]: c.value
            for c in families["repro_spans_total"].children()
        }
        assert totals.get("metered", 0) >= 1
