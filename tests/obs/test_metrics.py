"""The metrics registry and its Prometheus text exposition.

The exposition assertions follow the text format spec (version 0.0.4):
``# HELP`` / ``# TYPE`` comment lines, label-value escaping, and
cumulative histogram buckets closed by ``+Inf`` with matching
``_sum`` / ``_count`` samples.
"""

import json
import re

import pytest

from repro.obs.exporters import metrics_json, metrics_snapshot, prometheus_text
from repro.obs.metrics import DEFAULT_BUCKETS, Family, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestRegistry:
    def test_families_are_idempotent(self, registry):
        a = registry.counter("repro_jobs_total", "jobs")
        b = registry.counter("repro_jobs_total", "jobs")
        assert a is b

    def test_kind_clash_rejected(self, registry):
        registry.counter("repro_x")
        with pytest.raises(ValueError):
            registry.gauge("repro_x")

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Family("0bad", "counter")
        with pytest.raises(ValueError):
            Family("ok", "counter", labelnames=("bad-label",))
        with pytest.raises(ValueError):
            Family("ok", "nonsense")

    def test_counter_cannot_decrease(self, registry):
        counter = registry.counter("repro_c")
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ValueError):
            counter.dec()

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("repro_g")
        gauge.inc(3)
        gauge.dec(1)
        gauge.set(7.5)
        assert gauge.children()[0].value == 7.5

    def test_labels_address_distinct_children(self, registry):
        counter = registry.counter("repro_l", labelnames=("outcome",))
        counter.labels(outcome="hit").inc(2)
        counter.labels(outcome="miss").inc()
        values = {c.key: c.value for c in counter.children()}
        assert values[(("outcome", "hit"),)] == 2
        assert values[(("outcome", "miss"),)] == 1

    def test_wrong_label_set_rejected(self, registry):
        counter = registry.counter("repro_l", labelnames=("outcome",))
        with pytest.raises(ValueError):
            counter.labels(result="hit")
        with pytest.raises(ValueError):
            counter.inc()  # labelled family has no default child

    def test_default_buckets_are_log_scale_and_increasing(self):
        assert DEFAULT_BUCKETS[0] == 0.001
        assert all(
            b2 == pytest.approx(2 * b1)
            for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )

    def test_non_increasing_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("repro_h", buckets=(1.0, 1.0, 2.0))

    def test_collector_shadows_native_family(self, registry):
        registry.counter("repro_shadow").inc(1)
        registry.register_collector(
            lambda: [Family.constant("repro_shadow", "counter", "pulled", [({}, 9)])]
        )
        families = {f.name: f for f in registry.collect()}
        assert families["repro_shadow"].children()[0].value == 9


class TestPrometheusText:
    def test_help_and_type_lines(self, registry):
        registry.counter("repro_jobs_total", "Jobs executed").inc()
        text = prometheus_text(registry)
        assert "# HELP repro_jobs_total Jobs executed\n" in text
        assert "# TYPE repro_jobs_total counter\n" in text
        assert "repro_jobs_total 1\n" in text

    def test_help_escaping(self, registry):
        registry.gauge("repro_g", "line one\nback\\slash")
        text = prometheus_text(registry)
        assert "# HELP repro_g line one\\nback\\\\slash" in text

    def test_label_value_escaping(self, registry):
        counter = registry.counter("repro_l", labelnames=("path",))
        counter.labels(path='a"b\\c\nd').inc()
        text = prometheus_text(registry)
        assert 'repro_l{path="a\\"b\\\\c\\nd"} 1' in text

    def test_histogram_buckets_cumulative_and_closed(self, registry):
        histo = registry.histogram("repro_h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.7, 5.0, 99.0):  # 99 lands only in +Inf
            histo.observe(value)
        text = prometheus_text(registry)
        counts = [
            int(m.group(2))
            for m in re.finditer(r'repro_h_bucket\{le="([^"]+)"\} (\d+)', text)
        ]
        assert counts == [1, 3, 4, 5]  # cumulative, monotone, +Inf == count
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        assert 'repro_h_bucket{le="+Inf"} 5' in text
        assert "repro_h_count 5" in text
        assert "repro_h_sum 105.25" in text

    def test_integral_values_render_without_exponent(self, registry):
        registry.counter("repro_c").inc(12345)
        assert "repro_c 12345\n" in prometheus_text(registry)

    def test_families_sorted_and_merged_across_registries(self, registry):
        other = MetricsRegistry()
        registry.counter("repro_b").inc()
        other.counter("repro_a").inc()
        text = prometheus_text(registry, other)
        assert text.index("repro_a") < text.index("repro_b")

    def test_later_registry_shadows_on_name_clash(self, registry):
        other = MetricsRegistry()
        registry.counter("repro_same").inc(1)
        other.counter("repro_same").inc(5)
        assert "repro_same 5\n" in prometheus_text(registry, other)

    def test_empty_registry_renders_empty(self, registry):
        assert prometheus_text(registry) == ""


class TestJsonSnapshot:
    def test_snapshot_shape(self, registry):
        registry.counter("repro_c", "help", labelnames=("k",)).labels(k="v").inc(2)
        registry.histogram("repro_h", buckets=(1.0,)).observe(0.5)
        snap = metrics_snapshot(registry)
        assert snap["repro_c"]["kind"] == "counter"
        assert snap["repro_c"]["samples"][0] == {"labels": {"k": "v"}, "value": 2.0}
        histo = snap["repro_h"]["samples"][0]
        assert histo["buckets"] == [{"le": 1.0, "count": 1}]
        assert histo["count"] == 1

    def test_json_round_trips(self, registry):
        registry.gauge("repro_g").set(4)
        assert json.loads(metrics_json(registry))["repro_g"]["samples"][0]["value"] == 4


class TestHistogramQuantile:
    def test_no_observations_is_none(self, registry):
        histo = registry.histogram("repro_q")._default()
        assert histo.quantile(0.5) is None

    def test_interpolates_inside_one_bucket(self, registry):
        # Buckets (0,1], (1,2]: four observations in the second bucket
        # put every quantile on the interpolated line through (1, 2).
        histo = registry.histogram("repro_q", buckets=(1.0, 2.0))._default()
        for _ in range(4):
            histo.observe(1.5)
        assert histo.quantile(0.25) == pytest.approx(1.25)
        assert histo.quantile(0.5) == pytest.approx(1.5)
        assert histo.quantile(1.0) == pytest.approx(2.0)

    def test_rank_walks_across_buckets(self, registry):
        histo = registry.histogram("repro_q", buckets=(1.0, 2.0, 4.0))._default()
        for value in (0.5, 0.5, 1.5, 3.0):
            histo.observe(value)
        # Half the mass sits at or below the first bucket's bound.
        assert histo.quantile(0.5) == pytest.approx(1.0)
        assert histo.quantile(0.75) == pytest.approx(2.0)
        assert 2.0 < histo.quantile(0.9) <= 4.0

    def test_overflow_clamps_to_last_bound(self, registry):
        histo = registry.histogram("repro_q", buckets=(1.0,))._default()
        histo.observe(100.0)  # beyond every bound: only +Inf sees it
        assert histo.quantile(0.99) == 1.0

    def test_estimate_tracks_exact_percentile_on_default_buckets(self, registry):
        histo = registry.histogram("repro_q")._default()
        values = [0.001 * (1.13 ** n) for n in range(80)]
        for value in values:
            histo.observe(value)
        exact = sorted(values)[int(0.5 * len(values))]
        estimate = histo.quantile(0.5)
        # Log-scale buckets bound the relative error by the bucket ratio.
        assert exact / 2 <= estimate <= exact * 2

    def test_invalid_quantile_rejected(self, registry):
        histo = registry.histogram("repro_q")._default()
        with pytest.raises(ValueError):
            histo.quantile(0.0)
        with pytest.raises(ValueError):
            histo.quantile(1.5)

    def test_non_histogram_has_no_quantile(self, registry):
        counter = registry.counter("repro_q_c")._default()
        with pytest.raises((AssertionError, TypeError)):
            counter.quantile(0.5)
