"""The daemon's ``metrics`` verb end to end (``make smoke-metrics``).

Boots the real socket server in-process, pushes a job through it, and
scrapes the merged registries over the wire: Prometheus text must carry
the service counters, queue/worker gauges, job-latency histogram, and
the perf layer's cache hit/miss counters.
"""

import pytest

from repro.service import AnalysisDaemon, ServiceClient
from repro.service.daemon import PROMETHEUS_CONTENT_TYPE
from repro.service.protocol import unix_supported
from repro.util.errors import ServiceError

pytestmark = pytest.mark.obs

SAFE_SRC = """
proc check(secret pin: int, public attempts: uint): int {
    var i: int = 0;
    while (i < attempts) { i = i + 1; }
    return i;
}
"""


def _address(tmp_path):
    if unix_supported():
        return "unix:%s" % (tmp_path / "svc.sock")
    return "tcp:127.0.0.1:0"  # pragma: no cover - non-POSIX


@pytest.fixture
def daemon(tmp_path):
    d = AnalysisDaemon(_address(tmp_path), workers=1).start()
    yield d
    d.stop()


class TestMetricsVerb:
    def test_text_exposition_covers_every_source(self, daemon):
        with ServiceClient(daemon.address) as client:
            client.submit(SAFE_SRC, wait=True)
            reply = client.metrics()
        assert reply["format"] == "text"
        assert reply["content_type"] == PROMETHEUS_CONTENT_TYPE
        text = reply["text"]
        # ServiceStats via the pull-time collector:
        assert '# TYPE repro_service_events_total counter' in text
        assert 'repro_service_events_total{event="submitted"} 1' in text
        assert 'repro_service_events_total{event="completed"} 1' in text
        # Queue / pool gauges:
        assert "repro_service_queue_depth 0" in text
        assert "repro_service_workers 1" in text
        assert "# TYPE repro_service_uptime_seconds gauge" in text
        # Native daemon families (latency histogram, utilization):
        assert '# TYPE repro_service_job_seconds histogram' in text
        assert 'repro_service_job_seconds_bucket{outcome="completed",le="+Inf"} 1' in text
        assert 'repro_service_job_seconds_count{outcome="completed"} 1' in text
        assert "repro_service_busy_workers 0" in text
        # The perf layer's cache counters ride the same scrape:
        assert "# TYPE repro_cache_requests_total counter" in text

    def test_json_format(self, daemon):
        with ServiceClient(daemon.address) as client:
            client.submit(SAFE_SRC, wait=True)
            reply = client.metrics(format="json")
        assert reply["format"] == "json"
        metrics = reply["metrics"]
        events = {
            sample["labels"]["event"]: sample["value"]
            for sample in metrics["repro_service_events_total"]["samples"]
        }
        assert events["executed"] == 1
        assert metrics["repro_service_job_seconds"]["kind"] == "histogram"

    def test_unknown_format_rejected(self, daemon):
        with ServiceClient(daemon.address) as client:
            with pytest.raises(ServiceError, match="unknown metrics format"):
                client.metrics(format="xml")

    def test_scrape_is_read_only(self, daemon):
        with ServiceClient(daemon.address) as client:
            before = client.metrics()["text"]
            after = client.metrics()["text"]
        # Scraping twice must not bump any job/submission counter.
        assert 'repro_service_events_total{event="submitted"} 0' in before
        assert 'repro_service_events_total{event="submitted"} 0' in after
