"""Taint analysis unit tests (branch classification fidelity)."""

from repro.taint import Taint, analyze_taint
from tests.helpers import compile_one


def branch_annotations(source, proc):
    cfg = compile_one(source, proc)
    result = analyze_taint(cfg)
    return result, cfg


def annotation_set(source, proc):
    result, cfg = branch_annotations(source, proc)
    return {result.annotation(b) for b in cfg.branch_blocks()}


class TestExplicitFlows:
    def test_branch_on_public(self):
        assert annotation_set(
            "proc f(secret h: int, public l: int) { if (l > 0) { } }", "f"
        ) == {"l"}

    def test_branch_on_secret(self):
        assert annotation_set(
            "proc f(secret h: int, public l: int) { if (h > 0) { } }", "f"
        ) == {"h"}

    def test_branch_on_both(self):
        assert annotation_set(
            "proc f(secret h: int, public l: int) { if (h > l) { } }", "f"
        ) == {"l,h"}

    def test_branch_on_constant_is_untainted(self):
        result, cfg = branch_annotations(
            "proc f(secret h: int) { var c: int = 3; if (c > 1) { } }", "f"
        )
        assert result.untainted_branches() == cfg.branch_blocks()

    def test_taint_through_arithmetic(self):
        assert annotation_set(
            "proc f(secret h: int) { var x: int = h * 2 + 1; if (x > 0) { } }",
            "f",
        ) == {"h"}

    def test_taint_through_array_contents(self):
        source = """
        proc f(secret h: int, public l: int) {
            var a: int[] = new int[4];
            a[0] = h;
            if (a[1] > 0) { }
        }
        """
        # Array taint is coarse: any element read is tainted once any
        # element was written with secret data.
        assert annotation_set(source, "f") == {"h"}

    def test_array_length_taint(self):
        assert annotation_set(
            "proc f(secret h: byte[]) { if (len(h) > 0) { } }", "f"
        ) == {"h"}

    def test_call_result_absorbs_args(self):
        source = """
        proc id(x: int): int { return x; }
        proc f(secret h: int) { if (id(h) > 0) { } }
        """
        assert annotation_set(source, "f") == {"h"}


class TestImplicitFlows:
    def test_assignment_under_secret_branch(self):
        source = """
        proc f(secret h: int): int {
            var x: int = 0;
            if (h > 0) { x = 1; }
            if (x > 0) { return 1; }
            return 0;
        }
        """
        result, cfg = branch_annotations(source, "f")
        annotations = [result.annotation(b) for b in cfg.branch_blocks()]
        assert annotations == ["h", "h"]

    def test_loop_counter_under_public_guard_stays_public(self):
        """Flow sensitivity: a low loop must not absorb taints from
        disjoint high branches (the Example 1/2 requirement)."""
        source = """
        proc f(secret h: int, public l: int): int {
            var i: int = 0;
            if (l > 0) {
                while (i < l) { i = i + 1; }
            } else {
                if (h == 0) { i = 5; } else { i = 7; }
            }
            return i;
        }
        """
        result, cfg = branch_annotations(source, "f")
        labels = {b: result.annotation(b) for b in cfg.branch_blocks()}
        # The low loop guard stays "l".  The h==0 branch reports "l,h":
        # its condition is high data and it sits under low control (the
        # context keeps occurrence splits at such branches out of the
        # safety phase, which is the sound direction).
        assert sorted(labels.values()) == ["l", "l", "l,h"]
        assert len(result.low_branches()) == 2

    def test_low_and_high_branches_reported_separately(self):
        source = """
        proc f(secret h: int, public l: int) {
            if (l > 0) { }
            if (h > 0) { }
        }
        """
        result, cfg = branch_annotations(source, "f")
        assert len(result.low_branches()) == 1
        assert len(result.high_branches()) == 1
        assert set(result.low_branches()).isdisjoint(result.high_branches())

    def test_secret_index_taints_read(self):
        source = """
        proc f(secret h: int, public a: byte[]) {
            if (a[h] > 0) { }
        }
        """
        assert annotation_set(source, "f") == {"l,h"}


class TestSummaries:
    def test_var_taint_reported(self):
        source = "proc f(secret h: int, public l: int) { var m: int = h + l; }"
        cfg = compile_one(source, "f")
        result = analyze_taint(cfg)
        assert result.taint_of_var("m") == frozenset({Taint.LOW, Taint.HIGH})
        assert result.taint_of_var("h") == frozenset({Taint.HIGH})

    def test_render_mentions_annotations(self):
        source = "proc f(secret h: int) { if (h > 0) { } }"
        cfg = compile_one(source, "f")
        text = str(analyze_taint(cfg))
        assert "|h" in text
