"""Benchmark-registry sanity tests (fast: no full analysis runs)."""

import pytest

from repro.benchsuite import (
    ALL_BENCHMARKS,
    EXTRA_BENCHMARKS,
    FULL_SUITE,
    LITERATURE,
    MICRO,
    STAC,
    SUITE,
    BenchmarkSuite,
)
from repro.bytecode import compile_program, verify_module
from repro.interp import Interpreter
from repro.ir import lift_module
from repro.lang import frontend
from repro.taint import analyze_taint


@pytest.mark.parametrize("bench", ALL_BENCHMARKS + EXTRA_BENCHMARKS, ids=lambda b: b.name)
def test_sources_compile_and_verify(bench):
    module = compile_program(frontend(bench.source))
    verify_module(module)
    cfgs = lift_module(module)
    assert bench.proc in cfgs


@pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
def test_every_benchmark_has_a_secret_or_is_nosecret(bench):
    cfgs = lift_module(compile_program(frontend(bench.source)))
    cfg = cfgs[bench.proc]
    has_secret = bool(cfg.secret_params())
    if bench.name == "nosecret_safe":
        assert not has_secret
    else:
        assert has_secret, bench.name


@pytest.mark.parametrize(
    "bench",
    [b for b in ALL_BENCHMARKS if b.expect == "attack" and b.name != "notaint_unsafe"],
    ids=lambda b: b.name,
)
def test_unsafe_benchmarks_have_high_influence(bench):
    """Every unsafe benchmark's leak flows through a secret-dependent
    branch or a secret-length loop."""
    cfgs = lift_module(compile_program(frontend(bench.source)))
    taint = analyze_taint(cfgs[bench.proc])
    # Either a high branch exists, or some branch is secret-length driven.
    assert taint.high_branches(), bench.name


@pytest.mark.parametrize(
    "bench",
    [b for b in ALL_BENCHMARKS + EXTRA_BENCHMARKS if b.witness_space is not None],
    ids=lambda b: b.name,
)
def test_witness_spaces_are_executable(bench):
    """Every registered witness input combination actually runs."""
    from repro.core.witness import enumerate_inputs

    module = compile_program(frontend(bench.source))
    verify_module(module)
    cfgs = lift_module(module)
    interp = Interpreter(cfgs, fuel=10_000_000)
    count = 0
    for args in enumerate_inputs(cfgs[bench.proc], bench.witness_space, limit=4):
        interp.run(bench.proc, args)  # must not raise
        count += 1
    assert count > 0


class TestSuiteContainer:
    def test_duplicate_names_rejected(self):
        bench = ALL_BENCHMARKS[0]
        with pytest.raises(ValueError):
            BenchmarkSuite([bench, bench])

    def test_groups_partition_suite(self):
        names = set()
        for group in (MICRO, STAC, LITERATURE):
            names.update(b.name for b in SUITE.by_group(group))
        assert names == set(SUITE.names())

    def test_full_suite_is_25_programs(self):
        assert len(FULL_SUITE) == 25

    def test_get_and_iter(self):
        assert SUITE.get("login_safe").proc == "login_safe"
        assert len(list(iter(SUITE))) == 24
