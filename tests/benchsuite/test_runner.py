"""ParallelSuiteRunner: backend equivalence on real benchmarks."""

import pytest

from repro.benchsuite import (
    ALL_BENCHMARKS,
    MICRO,
    BenchResult,
    ParallelSuiteRunner,
    run_benchmark,
)

SMALL = [b for b in ALL_BENCHMARKS if b.group == MICRO][:4]


class TestRunBenchmark:
    def test_returns_slim_result(self):
        result = run_benchmark(SMALL[0].name)
        assert isinstance(result, BenchResult)
        assert result.name == SMALL[0].name
        assert result.status == SMALL[0].expect
        assert result.ok
        assert result.digest and len(result.digest) == 64
        assert result.wall_seconds > 0

    def test_cache_flag_does_not_change_digest(self):
        on = run_benchmark(SMALL[1].name, cache=True)
        off = run_benchmark(SMALL[1].name, cache=False)
        assert on.digest == off.digest
        assert on.status == off.status
        assert off.cache_hits == 0 and off.cache_misses == 0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_benchmark("no_such_benchmark")


class TestParallelSuiteRunner:
    def _digests(self, backend, jobs=2):
        runner = ParallelSuiteRunner(SMALL, jobs=jobs, backend=backend)
        results = runner.run()
        assert [r.name for r in results] == [b.name for b in SMALL]
        return [r.digest for r in results]

    def test_backends_produce_identical_analyses(self):
        serial = self._digests("serial", jobs=1)
        assert self._digests("thread") == serial
        assert self._digests("process") == serial

    def test_accepts_names_or_benchmarks(self):
        by_obj = ParallelSuiteRunner(SMALL[:2], jobs=1).run()
        by_name = ParallelSuiteRunner([b.name for b in SMALL[:2]], jobs=1).run()
        assert [r.digest for r in by_obj] == [r.digest for r in by_name]

    def test_default_jobs_resolution(self):
        assert ParallelSuiteRunner(SMALL, jobs=0).jobs >= 1
        assert ParallelSuiteRunner(SMALL, jobs=None).jobs >= 1
