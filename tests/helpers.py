"""Shared helpers for the test suite: tiny pipelines over source text."""

from __future__ import annotations

from typing import Dict

from repro.bytecode import compile_program, verify_module
from repro.cfg.graph import ControlFlowGraph
from repro.interp import Interpreter
from repro.ir import lift_module
from repro.lang import frontend


def compile_to_module(source: str):
    """source -> verified bytecode module."""
    module = compile_program(frontend(source))
    verify_module(module)
    return module


def compile_to_cfgs(source: str) -> Dict[str, ControlFlowGraph]:
    """source -> lifted CFGs for every defined procedure."""
    return lift_module(compile_to_module(source))


def compile_one(source: str, name: str) -> ControlFlowGraph:
    return compile_to_cfgs(source)[name]


def interpreter_for(source: str) -> Interpreter:
    return Interpreter(compile_to_cfgs(source))


COUNT_LOOP = """
proc count(public low: int): int {
    var i: int = 0;
    while (i < low) { i = i + 1; }
    return i;
}
"""

BRANCHY = """
proc branchy(secret high: int, public low: int): int {
    var x: int = 0;
    if (low > 0) {
        x = 1;
    } else {
        if (high > 0) { x = 2; } else { x = 3; }
    }
    return x;
}
"""
