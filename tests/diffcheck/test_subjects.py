"""Subject selection, the pdsc column, and the ``exhausted`` taxonomy."""

import pytest

from repro.diffcheck.differ import (
    FATAL_KIND,
    SKIPPED,
    SUBJECTS,
    DiffConfig,
    check_source,
    parse_subjects,
)
from repro.util.errors import AnalysisError

pytestmark = pytest.mark.diffcheck

SAFE_LOOP = """
proc main(public l: uint, secret h: int): int {
    var i: int = 0;
    while (i < l) { i = i + 1; }
    return i + h - h;
}
"""

LEAKY = """
proc main(public l: uint, secret h: int): int {
    var acc: int = 0;
    if (h > 0) {
        var i: int = 0;
        while (i < 30) { acc = acc + i; i = i + 1; }
    }
    return acc + l;
}
"""

DOMAINS = {"l": (0, 1, 2), "h": (-1, 0, 1, 2)}


def test_parse_subjects_is_order_insensitive_and_canonical():
    assert parse_subjects("pdsc,blazer") == ("blazer", "pdsc")
    assert parse_subjects("blazer, pdsc, blazer") == ("blazer", "pdsc")
    assert parse_subjects("blazer,selfcomp,consttime,pdsc,leakage") == SUBJECTS


def test_parse_subjects_rejects_unknown_and_empty():
    with pytest.raises(AnalysisError):
        parse_subjects("blazer,typo")
    with pytest.raises(AnalysisError):
        parse_subjects(" , ")


def test_all_four_subjects_report_by_default():
    report = check_source(LEAKY, DOMAINS, DiffConfig(threshold=24), name="p")
    assert report.blazer_status != SKIPPED
    assert report.selfcomp_outcome != SKIPPED
    assert report.pdsc_outcome != SKIPPED
    assert report.constant_time is not None
    assert set(report.subject_seconds) == set(SUBJECTS)


def test_skipped_subjects_report_skipped_and_stay_silent():
    config = DiffConfig(threshold=24, subjects=("blazer",))
    report = check_source(LEAKY, DOMAINS, config, name="p")
    assert report.selfcomp_outcome == SKIPPED
    assert report.pdsc_outcome == SKIPPED
    assert report.constant_time is None
    assert set(report.subject_seconds) == {"blazer"}
    assert all(d.engine == "blazer" for d in report.disagreements)
    record = report.to_dict()
    assert record["pdsc"] == SKIPPED and record["constant_time"] is None


def test_subset_report_is_independent_of_the_other_subjects():
    # The blazer column of a blazer-only run must equal the blazer
    # column of a full run: subjects are independent by construction.
    full = check_source(LEAKY, DOMAINS, DiffConfig(threshold=24), name="p")
    solo = check_source(
        LEAKY, DOMAINS, DiffConfig(threshold=24, subjects=("blazer",)), name="p"
    )
    assert solo.blazer_status == full.blazer_status
    assert solo.oracle.to_dict() == full.oracle.to_dict()


def test_pdsc_exhaustion_on_safe_program_is_exhausted_not_precision():
    # A starved pair budget on a genuinely safe program: the engines gave
    # up, they were not out-reasoned — the taxonomy must say so.
    config = DiffConfig(threshold=24, max_pairs=2)
    report = check_source(SAFE_LOOP, DOMAINS, config, name="starved")
    assert not report.oracle.leaky
    assert report.pdsc_outcome == "exhausted"
    kinds = {(d.kind, d.engine) for d in report.disagreements}
    assert ("exhausted", "pdsc") in kinds
    assert ("precision_gap", "pdsc") not in kinds
    assert not report.fatal


def test_pdsc_proves_the_safe_loop_the_baseline_cannot():
    report = check_source(SAFE_LOOP, DOMAINS, DiffConfig(threshold=24), name="p")
    assert report.pdsc_outcome == "verified"
    assert report.selfcomp_outcome == "unverified"  # the widening ablation
    assert not any(d.engine == "pdsc" for d in report.disagreements)


def test_sabotaged_pdsc_is_caught_as_soundness_bug():
    config = DiffConfig(threshold=24, break_engine="pdsc-verify")
    report = check_source(LEAKY, DOMAINS, config, name="sabotaged")
    assert report.pdsc_outcome == "verified"  # the sabotage "works"...
    assert report.fatal  # ...and the oracle refutes it
    kinds = {(d.kind, d.engine) for d in report.disagreements}
    assert (FATAL_KIND, "pdsc") in kinds
