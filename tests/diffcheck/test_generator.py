"""The generator's contract: deterministic, well-typed, enumerable.

Every downstream guarantee of the differential harness rests on three
properties checked here: the program for ``(seed, index)`` is a pure
function of its coordinates, every emitted program passes the real
frontend (parse + typecheck), and the input product stays small enough
for the oracle to enumerate exhaustively.
"""

import pytest

from repro.diffcheck.generator import (
    GeneratorConfig,
    generate_program,
)
from repro.interp import Interpreter
from repro.lang import ast, frontend
from tests.helpers import compile_to_cfgs

pytestmark = pytest.mark.diffcheck

SEEDS = [0, 1, 17]
INDICES = range(40)


def test_same_coordinates_same_program():
    for seed in SEEDS:
        for index in (0, 3, 11):
            a = generate_program(seed, index)
            b = generate_program(seed, index)
            assert a.source == b.source
            assert a.domains == b.domains
            assert a.name == b.name == "p%06d" % index


def test_distinct_indices_vary():
    sources = {generate_program(0, i).source for i in INDICES}
    assert len(sources) > len(INDICES) // 2


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_programs_are_well_typed(seed):
    for index in INDICES:
        program = generate_program(seed, index)
        checked = frontend(program.source)  # raises on any frontend error
        proc = checked.procs[0]
        assert proc.name == "main"


@pytest.mark.parametrize("seed", SEEDS)
def test_state_space_is_enumerable(seed):
    cfg = GeneratorConfig()
    bound = max(
        len(cfg.domain(ast.INT)), len(cfg.domain(ast.UINT))
    ) ** (len(("l", "k")) + len(("h", "g")))
    for index in INDICES:
        program = generate_program(seed, index)
        assert 0 < program.state_space <= bound
        for name, values in program.domains:
            assert values, "empty domain for %s" % name


def test_every_program_terminates_within_fuel():
    """Counted loops make termination structural: the whole input
    product of a sample of programs runs to completion on modest fuel."""
    import itertools

    for index in range(12):
        program = generate_program(2, index)
        interp = Interpreter(compile_to_cfgs(program.source), fuel=50_000)
        names = [name for name, _ in program.domains]
        spaces = [values for _, values in program.domains]
        for combo in itertools.product(*spaces):
            interp.run("main", dict(zip(names, combo)))  # must not raise


def test_domains_follow_declared_types():
    cfg = GeneratorConfig()
    program = generate_program(5, 7, cfg)
    checked = frontend(program.source)
    declared = {p.name: p.declared for p in checked.procs[0].params}
    for name, values in program.domains:
        assert tuple(values) == cfg.domain(declared[name])
