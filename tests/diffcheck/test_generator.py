"""The generator's contract: deterministic, well-typed, enumerable.

Every downstream guarantee of the differential harness rests on three
properties checked here: the program for ``(seed, index)`` is a pure
function of its coordinates, every emitted program passes the real
frontend (parse + typecheck), and the input product stays small enough
for the oracle to enumerate exhaustively.
"""

import pytest

from repro.diffcheck.generator import (
    GeneratorConfig,
    generate_program,
)
from repro.interp import Interpreter
from repro.lang import ast, frontend
from tests.helpers import compile_to_cfgs

pytestmark = pytest.mark.diffcheck

SEEDS = [0, 1, 17]
INDICES = range(40)


def test_same_coordinates_same_program():
    for seed in SEEDS:
        for index in (0, 3, 11):
            a = generate_program(seed, index)
            b = generate_program(seed, index)
            assert a.source == b.source
            assert a.domains == b.domains
            assert a.name == b.name == "p%06d" % index


def test_distinct_indices_vary():
    sources = {generate_program(0, i).source for i in INDICES}
    assert len(sources) > len(INDICES) // 2


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_programs_are_well_typed(seed):
    for index in INDICES:
        program = generate_program(seed, index)
        checked = frontend(program.source)  # raises on any frontend error
        proc = checked.procs[0]
        assert proc.name == "main"


@pytest.mark.parametrize("seed", SEEDS)
def test_state_space_is_enumerable(seed):
    cfg = GeneratorConfig()
    bound = max(
        len(cfg.domain(ast.INT)), len(cfg.domain(ast.UINT))
    ) ** (len(("l", "k")) + len(("h", "g")))
    for index in INDICES:
        program = generate_program(seed, index)
        assert 0 < program.state_space <= bound
        for name, values in program.domains:
            assert values, "empty domain for %s" % name


def test_every_program_terminates_within_fuel():
    """Counted loops make termination structural: the whole input
    product of a sample of programs runs to completion on modest fuel."""
    import itertools

    for index in range(12):
        program = generate_program(2, index)
        interp = Interpreter(compile_to_cfgs(program.source), fuel=50_000)
        names = [name for name, _ in program.domains]
        spaces = [values for _, values in program.domains]
        for combo in itertools.product(*spaces):
            interp.run("main", dict(zip(names, combo)))  # must not raise


def test_domains_follow_declared_types():
    cfg = GeneratorConfig()
    program = generate_program(5, 7, cfg)
    checked = frontend(program.source)
    declared = {p.name: p.declared for p in checked.procs[0].params}
    for name, values in program.domains:
        assert tuple(values) == cfg.domain(declared[name])


def test_extern_prob_zero_is_byte_identical_to_the_legacy_stream():
    # The determinism contract across the config extension: with
    # extern_prob at its 0.0 default the rng is never consulted for
    # extern decisions, so pre-extern campaign journals stay replayable.
    plain = GeneratorConfig()
    explicit = GeneratorConfig(extern_prob=0.0, max_cost_externs=5)
    for index in range(20):
        assert (
            generate_program(3, index, plain).source
            == generate_program(3, index, explicit).source
        )


def test_extern_emission_is_deterministic_and_well_typed():
    cfg = GeneratorConfig(extern_prob=0.3)
    with_cost = with_array = 0
    for index in range(20):
        a = generate_program(9, index, cfg)
        b = generate_program(9, index, cfg)
        assert a.source == b.source
        checked = frontend(a.source)  # externs must typecheck too
        assert checked.procs[-1].name == "main"
        if "extern cost_" in a.source:
            with_cost += 1
        if "arrayRead" in a.source:
            with_array += 1
    assert with_cost > 0, "extern_prob=0.3 must emit cost externs"
    assert with_array > 0, "extern_prob=0.3 must emit arrayRead programs"


def test_cost_extern_names_carry_their_summary():
    import re

    from repro.leakage.model import extern_env

    cfg = GeneratorConfig(extern_prob=0.5)
    seen = 0
    for index in range(30):
        program = generate_program(4, index, cfg)
        names = re.findall(r"\bextern\s+(cost_\d+_\d+)\s*\(", program.source)
        if not names:
            continue
        seen += 1
        model = extern_env(program.source)
        for name in names:
            lo, hi = (int(x) for x in name.split("_")[1:])
            summary = model.summaries.lookup(name)
            assert summary is not None
            assert (summary.lo, summary.hi) == (lo, hi)
            assert lo <= hi
    assert seen > 0


def test_extern_bearing_programs_still_terminate_and_enumerate():
    import itertools

    from repro.leakage.model import extern_env

    cfg = GeneratorConfig(extern_prob=0.4)
    checked_any = False
    for index in range(8):
        program = generate_program(6, index, cfg)
        if "extern" not in program.source:
            continue
        checked_any = True
        model = extern_env(program.source)
        interp = Interpreter(
            compile_to_cfgs(program.source), externs=model.externs, fuel=50_000
        )
        names = [name for name, _ in program.domains]
        spaces = [values for _, values in program.domains]
        for combo in itertools.product(*spaces):
            interp.run("main", dict(zip(names, combo)))  # must not raise
    assert checked_any
