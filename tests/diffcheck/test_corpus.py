"""Seed-pinned regression corpus: fixed bugs stay fixed.

Every file in ``tests/diffcheck/corpus/`` is a shrunk counterexample
harvested from a development campaign (``repro diffcheck --corpus``):
the program source, its exact input domains, the campaign threshold,
and the disagreement signature it exhibited.  This test replays each
one through the live differ and asserts the expected classification
still shows — so a "fixed" attack-spec or soundness regression cannot
silently return.

Entries record non-fatal signatures too (``attack_spec_mismatch`` is
corpus material: it documents known spec-replay imprecision).  What
must NEVER appear on replay is a disagreement kind *worse* than the
recorded one: a corpus entry recorded as a mismatch that starts
tripping ``soundness_bug`` is a new bug, not a known one.
"""

import glob
import json
import os

import pytest

from repro.diffcheck.differ import FATAL_KIND, DiffConfig, check_source

pytestmark = pytest.mark.diffcheck

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
ENTRIES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def test_corpus_is_not_empty():
    assert ENTRIES, "the regression corpus must ship at least one entry"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: os.path.basename(p))
def test_corpus_entry_replays_expected_classification(path):
    entry = _load(path)
    domains = {name: tuple(values) for name, values in entry["domains"].items()}
    config = DiffConfig(threshold=entry["threshold"], domain=entry["domain"])
    report = check_source(entry["source"], domains, config, name=entry["name"])

    observed = {(d.kind, d.engine) for d in report.disagreements}
    expected = {(kind, engine) for kind, engine in entry["expect"]}
    missing = expected - observed
    assert not missing, (
        "corpus entry %s lost its recorded disagreement(s) %s (observed %s) "
        "without the corpus being updated" % (entry["name"], missing, observed)
    )
    if FATAL_KIND not in {kind for kind, _ in expected}:
        assert not report.fatal, (
            "corpus entry %s regressed from %s to a soundness bug: %s"
            % (entry["name"], sorted(expected), [d.to_dict() for d in report.disagreements])
        )
