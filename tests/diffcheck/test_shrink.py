"""The greedy shrinker: smaller reproducer, same disagreement."""

import pytest

from repro.diffcheck.differ import FATAL_KIND, DiffConfig, check_source
from repro.diffcheck.shrink import shrink_source, signature_of
from repro.lang import frontend

pytestmark = pytest.mark.diffcheck

# A leaky core buried in noise: the secret-guarded loop is the story,
# the rest is deletable padding.
NOISY_LEAK = """
proc main(public l: uint, secret h: int): int {
    var junk: int = l * 2;
    junk = junk + 3;
    var acc: int = 0;
    if (l > 1) { junk = junk - 1; } else { junk = junk + 1; }
    if (h > 0) {
        var i: int = 0;
        while (i < 30) { acc = acc + i; i = i + 1; }
    }
    var tail: int = junk * junk;
    return acc + tail;
}
"""

DOMAINS = {"l": (0, 1, 2), "h": (-1, 0, 1, 2)}
BROKEN = DiffConfig(threshold=24, break_engine="narrow")


def test_shrink_preserves_soundness_bug_signature():
    original = check_source(NOISY_LEAK, DOMAINS, BROKEN)
    target = signature_of(original)
    assert (FATAL_KIND, "blazer") in target

    result = shrink_source(NOISY_LEAK, DOMAINS, BROKEN, target=target)
    assert result.removed > 0
    assert target <= signature_of(result.report)
    # The reproducer still passes the frontend and still leaks.
    frontend(result.source)
    assert result.report.oracle.leaky


def test_shrunk_source_is_a_fixpoint():
    """Re-shrinking the shrunk source removes nothing further."""
    result = shrink_source(NOISY_LEAK, DOMAINS, BROKEN)
    again = shrink_source(result.source, DOMAINS, BROKEN)
    assert again.removed == 0
    assert again.source == result.source


def test_clean_program_is_returned_untouched():
    clean = """
    proc main(public l: uint, secret h: int): int {
        return l + 1;
    }
    """
    result = shrink_source(clean, DOMAINS, DiffConfig(threshold=24))
    assert signature_of(result.report) == frozenset()
    assert result.removed == 0
    assert result.checks == 1


def test_max_checks_caps_differ_invocations():
    result = shrink_source(NOISY_LEAK, DOMAINS, BROKEN, max_checks=3)
    assert result.checks <= 3
