"""Campaign runner: determinism, resume, exit codes, corpus output."""

import json
import os

import pytest

from repro.diffcheck.campaign import (
    CampaignConfig,
    CampaignReport,
    ProgramOutcome,
    run_campaign,
    write_corpus,
)
from repro.diffcheck.differ import DiffConfig

pytestmark = pytest.mark.diffcheck

# Small but non-trivial: enough programs that the sample includes leaky
# and safe ones, cheap enough for the default suite.  The trimmed pair
# budget keeps the pair-analysis subjects fast; every assertion here is
# about report shape and byte-identity, which budgets don't touch.
SMALL = CampaignConfig(seed=1, count=6, diff=DiffConfig(max_pairs=600), shrink=False)


def test_serial_and_parallel_reports_are_byte_identical():
    serial = run_campaign(SMALL, jobs=1)
    parallel = run_campaign(SMALL, jobs=4)
    assert serial.to_json() == parallel.to_json()


def test_same_seed_twice_is_byte_identical():
    assert run_campaign(SMALL, jobs=1).to_json() == run_campaign(SMALL, jobs=1).to_json()


def test_report_shape_and_exit_code_clean():
    report = run_campaign(SMALL, jobs=1)
    record = report.to_dict()
    assert record["campaign"] == {
        "seed": 1,
        "count": 6,
        "threshold": 24,
        "domain": "zone",
        "subjects": ["blazer", "selfcomp", "consttime", "pdsc", "leakage"],
    }
    assert record["summary"]["programs"] == 6
    assert len(record["programs"]) == 6
    assert [p["name"] for p in record["programs"]] == [
        "p%06d" % i for i in range(6)
    ]
    assert report.exit_code in (0, 4)  # never 1: the engine is sound here
    assert not report.soundness_bugs


def test_subject_subset_reports_are_byte_identical_at_any_jobs():
    config = CampaignConfig(
        seed=1,
        count=4,
        diff=DiffConfig(subjects=("blazer", "pdsc")),
        shrink=False,
    )
    serial = run_campaign(config, jobs=1)
    parallel = run_campaign(config, jobs=4)
    assert serial.to_json() == parallel.to_json()
    record = serial.to_dict()
    assert record["campaign"]["subjects"] == ["blazer", "pdsc"]
    for program in record["programs"]:
        assert program["selfcomp"] == "skipped"
        assert program["constant_time"] is None
        assert program["pdsc"] != "skipped"


def test_resume_from_journal_is_byte_identical(tmp_path):
    journal = str(tmp_path / "campaign.jsonl")
    first = run_campaign(SMALL, jobs=1, journal=journal)
    assert os.path.exists(journal)
    resumed = run_campaign(SMALL, jobs=1, journal=journal, resume=True)
    assert first.to_json() == resumed.to_json()


def test_broken_engine_campaign_exits_fatal(tmp_path):
    config = CampaignConfig(
        seed=1,
        count=6,
        diff=DiffConfig(break_engine="narrow", max_pairs=600),
        shrink=False,
    )
    report = run_campaign(config, jobs=1)
    assert report.soundness_bugs, "sabotaged engine must be caught"
    assert report.exit_code == 1
    # Fatal rows keep their source so the bug is reproducible.
    for outcome in report.soundness_bugs:
        assert outcome.source
        assert outcome.domains

    written = write_corpus(report, str(tmp_path / "corpus"))
    assert written
    entry = json.loads(open(written[0], encoding="utf-8").read())
    assert entry["source"]
    assert ["soundness_bug", "blazer"] in entry["expect"]


def test_exit_code_degraded_on_worker_errors():
    ok = ProgramOutcome(name="p000000", index=0, seed=0)
    broken = ProgramOutcome(name="p000001", index=1, seed=0, error="boom")
    report = CampaignReport(
        seed=0, count=2, threshold=24, domain="zone", outcomes=[ok, broken]
    )
    assert report.degraded and report.exit_code == 4
    fatal = ProgramOutcome(
        name="p000002",
        index=2,
        seed=0,
        disagreements=[{"kind": "soundness_bug", "engine": "blazer", "detail": ""}],
    )
    report.outcomes.append(fatal)
    assert report.exit_code == 1  # fatal outranks degraded


def test_outcome_round_trip_drops_runner_bookkeeping():
    outcome = ProgramOutcome(
        name="p000003", index=3, seed=9, blazer="safe", retries=2, resumed=True
    )
    record = outcome.to_dict()
    assert "retries" not in record and "resumed" not in record
    back = ProgramOutcome.from_dict(record)
    assert back.name == outcome.name and back.blazer == "safe"
    assert back.retries == 0 and back.resumed is False
