"""The ground-truth oracle: exact TCF by exhaustive interpretation."""

import pytest

from repro.core.observer import (
    ConcreteThresholdObserver,
    PolynomialDegreeObserver,
)
from repro.diffcheck.oracle import TimingOracle, observer_slack
from repro.interp import Interpreter
from tests.helpers import compile_to_cfgs

pytestmark = pytest.mark.diffcheck

LEAKY = """
proc main(public l: uint, secret h: int): int {
    var acc: int = 0;
    if (h > 0) {
        var i: int = 0;
        while (i < 8) { acc = acc + i; i = i + 1; }
    }
    return acc + l;
}
"""

STRAIGHTLINE = """
proc main(public l: uint, secret h: int): int {
    var acc: int = h + 1;
    return acc + l;
}
"""

DOMAINS = {"l": (0, 1, 2), "h": (-1, 0, 1, 2)}


def _oracle(source, slack, fuel=50_000, limit=8192):
    cfgs = compile_to_cfgs(source)
    return TimingOracle(
        Interpreter(cfgs, fuel=fuel), cfgs["main"], DOMAINS, slack=slack, limit=limit
    )


def test_leaky_program_is_leaky():
    verdict = _oracle(LEAKY, slack=4).run()
    assert verdict.leaky
    assert verdict.max_gap >= 4
    assert verdict.traces == 12 and verdict.classes == 3
    assert verdict.errors == 0
    # The witness is a genuine low-equivalent pair realizing the gap.
    w = verdict.witness
    assert w is not None
    assert dict(w.high_a) != dict(w.high_b)
    assert w.gap == verdict.max_gap == abs(w.time_a - w.time_b)


def test_straightline_program_is_gap_free():
    verdict = _oracle(STRAIGHTLINE, slack=1).run()
    assert not verdict.leaky
    assert verdict.max_gap == 0
    assert verdict.witness is None


def test_slack_is_the_leak_criterion():
    gap = _oracle(LEAKY, slack=1).run().max_gap
    assert _oracle(LEAKY, slack=gap).run().leaky
    assert not _oracle(LEAKY, slack=gap + 1).run().leaky


def test_fuel_exhaustion_aborts_enumeration():
    """One nonterminating input is enough evidence: the oracle burns
    fuel once, records the error, and stops instead of timing out on
    every remaining input tuple."""
    spinning = """
    proc main(public l: uint, secret h: int): int {
        var i: int = 0;
        while (i < 10) { i = i * 1; }
        return l;
    }
    """
    verdict = _oracle(spinning, slack=1, fuel=500).run()
    assert verdict.errors == 1
    assert verdict.traces == 0


def test_limit_truncates_deterministically():
    a = _oracle(LEAKY, slack=4, limit=5).run()
    b = _oracle(LEAKY, slack=4, limit=5).run()
    assert a.traces == b.traces == 5
    assert a.to_dict() == b.to_dict()


def test_observer_slack_reads_either_convention():
    assert observer_slack(ConcreteThresholdObserver(threshold=123)) == 123
    assert observer_slack(PolynomialDegreeObserver(epsilon=7)) == 7
    assert observer_slack(object()) == 1
