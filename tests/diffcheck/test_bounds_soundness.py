"""Bounds-soundness over the Table-1 suite, via the differential lens.

The harness fuzzes tiny generated programs; this satellite turns the
same question on the real benchmarks: for every concrete input the
empirical tests enumerate, the interpreter's exact cost must lie inside
the [lo, hi] of *every* feasible leaf whose trail covers the trace —
the per-trail analogue of the whole-program bound-soundness property
test, and exactly the invariant the driver's narrowness verdicts stand
on.  Infeasible leaves must cover nothing at all.
"""

import pytest

from repro.absint.transfer import len_var
from repro.benchsuite import ALL_BENCHMARKS
from repro.bytecode import compile_program, verify_module
from repro.core.witness import run_all
from repro.interp import Interpreter
from repro.ir import lift_module
from repro.lang import frontend

pytestmark = pytest.mark.diffcheck

# Same split as the integration suite: modPow2_unsafe takes ~a minute.
FAST = [b for b in ALL_BENCHMARKS if b.name not in ("modPow2_unsafe",)]

_VERDICTS = {}


def verdict_of(bench):
    if bench.name not in _VERDICTS:
        _VERDICTS[bench.name] = bench.run()
    return _VERDICTS[bench.name]


def _symbol_env(cfg, trace):
    env = {}
    for param in cfg.params:
        value = trace.input(param.name)
        if param.declared.is_array:
            env[len_var(param.name)] = len(value)
        else:
            env[param.name] = value
    return env


@pytest.mark.parametrize("bench", FAST, ids=lambda b: b.name)
def test_leaf_bounds_contain_concrete_costs(bench):
    verdict = verdict_of(bench)
    module = compile_program(frontend(bench.source))
    verify_module(module)
    cfgs = lift_module(module)
    cfg = cfgs[bench.proc]
    traces = run_all(Interpreter(cfgs), cfg, overrides=bench.witness_space, limit=256)
    assert traces, "no concrete traces for %s" % bench.name

    leaves = verdict.tree.leaves()
    for trace in traces:
        env = _symbol_env(cfg, trace)
        covering = [leaf for leaf in leaves if leaf.trail.accepts(trace.edges)]
        assert covering, "trace of %s escapes the partition" % bench.name
        for leaf in covering:
            result = leaf.bound
            if result is None or result.degraded:
                continue
            assert result.feasible, (
                "infeasible leaf of %s covers a concrete trace" % bench.name
            )
            if result.bound is None:
                continue
            lo, hi = result.bound.evaluate(env)
            assert lo <= trace.time, (
                "%s: cost %d under leaf lower bound %s" % (bench.name, trace.time, lo)
            )
            if hi is not None:
                assert trace.time <= hi, (
                    "%s: cost %d over leaf upper bound %s"
                    % (bench.name, trace.time, hi)
                )
