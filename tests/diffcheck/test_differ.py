"""The three-way differential check and its disagreement taxonomy.

The key acceptance test lives here: deliberately breaking the engine
(``break_engine="narrow"`` — an observer that calls every bound narrow,
i.e. an unsound CHECKSAFE) must surface as a fatal ``soundness_bug``.
A harness that cannot catch a sabotaged engine proves nothing.
"""

import pytest

from repro.diffcheck.differ import FATAL_KIND, DiffConfig, check_source

pytestmark = pytest.mark.diffcheck

SAFE = """
proc main(public l: uint, secret h: int): int {
    var acc: int = h + 1;
    return acc + l;
}
"""

LEAKY = """
proc main(public l: uint, secret h: int): int {
    var acc: int = 0;
    if (h > 0) {
        var i: int = 0;
        while (i < 30) { acc = acc + i; i = i + 1; }
    }
    return acc + l;
}
"""

DOMAINS = {"l": (0, 1, 2), "h": (-1, 0, 1, 2)}
CONFIG = DiffConfig(threshold=24)


def test_straightline_program_is_clean():
    report = check_source(SAFE, DOMAINS, CONFIG, name="safe")
    assert report.blazer_status == "safe"
    assert report.selfcomp_outcome == "verified"
    assert report.constant_time
    assert not report.oracle.leaky
    assert report.clean and not report.fatal


def test_leaky_program_agrees_without_soundness_bug():
    report = check_source(LEAKY, DOMAINS, CONFIG, name="leaky")
    assert report.oracle.leaky
    assert report.blazer_status != "safe"
    assert report.selfcomp_outcome != "verified"
    assert not report.constant_time
    assert not report.fatal


def test_broken_engine_is_caught_as_soundness_bug():
    config = DiffConfig(threshold=24, break_engine="narrow")
    report = check_source(LEAKY, DOMAINS, config, name="sabotaged")
    assert report.blazer_status == "safe"  # the sabotage "works"...
    assert report.fatal  # ...and the oracle refutes it
    kinds = {(d.kind, d.engine) for d in report.disagreements}
    assert (FATAL_KIND, "blazer") in kinds


def test_break_engine_leaves_safe_programs_alone():
    config = DiffConfig(threshold=24, break_engine="narrow")
    report = check_source(SAFE, DOMAINS, config, name="sabotaged-safe")
    assert not report.fatal  # unsoundness only shows on actual leaks


def test_precision_gaps_are_not_fatal():
    # Low threshold: the oracle calls the 2-instruction then/else skew of
    # a balanced branch a leak criterion miss only when slack <= gap; at
    # a huge threshold the leaky program is oracle-safe, and any engine
    # that fails to prove it lands in precision_gap, never soundness_bug.
    config = DiffConfig(threshold=10_000)
    report = check_source(LEAKY, DOMAINS, config, name="coarse")
    assert not report.oracle.leaky
    for d in report.disagreements:
        assert d.kind == "precision_gap"
        assert not d.fatal


def test_report_to_dict_round_trips_the_verdicts():
    report = check_source(LEAKY, DOMAINS, CONFIG, name="leaky")
    record = report.to_dict()
    assert record["name"] == "leaky"
    assert record["blazer"] == report.blazer_status
    assert record["oracle"]["leaky"] is True
    assert isinstance(record["disagreements"], list)
