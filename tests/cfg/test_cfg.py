"""CFG structure, dominance, loops, and CFG-automaton tests."""

from repro.cfg import (
    cfg_automaton,
    control_dependence,
    dominator_tree,
    edge_alphabet,
    innermost_loop,
    is_reducible,
    most_general_trail_regex,
    natural_loops,
    postdominator_tree,
)
from tests.helpers import COUNT_LOOP, compile_one

NESTED = """
proc nested(n: uint): int {
    var total: int = 0;
    for (var i: int = 0; i < n; i = i + 1) {
        for (var j: int = 0; j < n; j = j + 1) {
            total = total + 1;
        }
    }
    return total;
}
"""

DIAMOND = """
proc diamond(x: int): int {
    var r: int = 0;
    if (x > 0) { r = 1; } else { r = 2; }
    return r;
}
"""


class TestDominance:
    def test_entry_dominates_everything(self):
        cfg = compile_one(NESTED, "nested")
        dom = dominator_tree(cfg)
        for bid in cfg.reverse_postorder():
            assert dom.dominates(cfg.entry, bid)

    def test_diamond_join_not_dominated_by_arms(self):
        cfg = compile_one(DIAMOND, "diamond")
        dom = dominator_tree(cfg)
        branch = cfg.branch_blocks()[0]
        then_block, else_block = [t for _, t in [cfg.branch_edges(branch)[0], cfg.branch_edges(branch)[1]]]
        # The join (successor of both arms) is dominated by the branch,
        # not by either arm.
        (join,) = set(cfg.successors(then_block)) & set(cfg.successors(else_block))
        assert dom.dominates(branch, join)
        assert not dom.dominates(then_block, join)
        assert not dom.dominates(else_block, join)

    def test_postdominance_of_exit(self):
        cfg = compile_one(DIAMOND, "diamond")
        pdom = postdominator_tree(cfg)
        for bid in cfg.reverse_postorder():
            assert pdom.dominates(cfg.exit_id, bid)

    def test_control_dependence_of_diamond(self):
        cfg = compile_one(DIAMOND, "diamond")
        deps = control_dependence(cfg)
        branch = cfg.branch_blocks()[0]
        taken, not_taken = cfg.branch_edges(branch)
        assert branch in deps[taken[1]]
        assert branch in deps[not_taken[1]]

    def test_loop_body_control_dependent_on_header(self):
        cfg = compile_one(COUNT_LOOP, "count")
        deps = control_dependence(cfg)
        (loop,) = natural_loops(cfg)
        body_blocks = loop.body - {loop.header}
        for bid in body_blocks:
            assert loop.header in deps[bid]


class TestLoops:
    def test_single_loop_detected(self):
        cfg = compile_one(COUNT_LOOP, "count")
        loops = natural_loops(cfg)
        assert len(loops) == 1
        assert loops[0].back_edges

    def test_nested_loops_and_depths(self):
        cfg = compile_one(NESTED, "nested")
        loops = natural_loops(cfg)
        assert len(loops) == 2
        outer = next(l for l in loops if l.parent is None)
        inner = next(l for l in loops if l.parent is not None)
        assert inner.parent is outer
        assert inner.body < outer.body
        assert inner.depth == 1 and outer.depth == 0

    def test_innermost_loop_query(self):
        cfg = compile_one(NESTED, "nested")
        loops = natural_loops(cfg)
        inner = next(l for l in loops if l.parent is not None)
        assert innermost_loop(loops, inner.header) is inner

    def test_exit_edges_leave_the_body(self):
        cfg = compile_one(COUNT_LOOP, "count")
        (loop,) = natural_loops(cfg)
        for src, dst in loop.exit_edges(cfg):
            assert src in loop.body and dst not in loop.body

    def test_compiled_cfgs_are_reducible(self):
        for source, name in ((NESTED, "nested"), (DIAMOND, "diamond")):
            assert is_reducible(compile_one(source, name))

    def test_loop_free_program(self):
        cfg = compile_one(DIAMOND, "diamond")
        assert natural_loops(cfg) == []


class TestCfgAutomaton:
    def test_alphabet_is_edge_set(self):
        cfg = compile_one(DIAMOND, "diamond")
        assert edge_alphabet(cfg) == frozenset(cfg.edges())

    def test_automaton_accepts_straight_path(self):
        cfg = compile_one("proc f() { }", "f")
        automaton = cfg_automaton(cfg)
        word = tuple()
        # entry -> exit directly
        path = [(cfg.entry, cfg.exit_id)]
        assert automaton.accepts(tuple(path))

    def test_automaton_rejects_non_paths(self):
        cfg = compile_one(DIAMOND, "diamond")
        automaton = cfg_automaton(cfg)
        edges = cfg.edges()
        # A word starting with a non-entry edge is rejected.
        non_entry = [e for e in edges if e[0] != cfg.entry][0]
        assert not automaton.accepts((non_entry,))

    def test_most_general_trail_nonempty(self):
        cfg = compile_one(COUNT_LOOP, "count")
        regex = most_general_trail_regex(cfg)
        assert not regex.is_empty_language()
        # The regex must mention a back edge (the loop star).
        assert "*" in str(regex)
