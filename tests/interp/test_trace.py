"""Trace object unit tests."""

import pytest

from repro.interp.trace import Trace
from repro.lang import ast


def make_trace(low=1, high=2, time=10, result=0):
    return Trace.make(
        proc="p",
        inputs={"l": low, "h": high},
        levels={"l": ast.SecLevel.PUBLIC, "h": ast.SecLevel.SECRET},
        edges=((0, 1), (1, 2)),
        time=time,
        result=result,
    )


class TestTrace:
    def test_projections(self):
        trace = make_trace()
        assert dict(trace.low_inputs) == {"l": 1}
        assert dict(trace.high_inputs) == {"h": 2}
        assert trace.input("l") == 1
        with pytest.raises(KeyError):
            trace.input("nope")

    def test_low_equivalence(self):
        assert make_trace(low=1, high=2).low_equivalent(make_trace(low=1, high=9))
        assert not make_trace(low=1).low_equivalent(make_trace(low=3))

    def test_mutable_inputs_frozen(self):
        trace = Trace.make(
            proc="p",
            inputs={"a": [1, 2, 3]},
            levels={"a": ast.SecLevel.PUBLIC},
            edges=(),
            time=1,
            result=[4, 5],
        )
        assert trace.input("a") == (1, 2, 3)
        assert trace.result == (4, 5)
        hash(trace)  # fully hashable

    def test_equality(self):
        assert make_trace() == make_trace()
        assert make_trace(time=11) != make_trace(time=10)

    def test_str(self):
        text = str(make_trace())
        assert "time=10" in text and "low=" in text
