"""Concrete interpreter unit tests."""

import pytest

from repro.interp import ExternRegistry, Interpreter
from repro.util.errors import FuelExhausted, InterpError
from tests.helpers import compile_to_cfgs, interpreter_for


class TestArithmetic:
    def setup_method(self):
        self.interp = interpreter_for(
            """
            proc arith(a: int, b: int): int { return a / b + a % b; }
            proc neg(a: int): int { return -a; }
            proc logic(a: bool, b: bool): bool { return a && !b; }
            """
        )

    def test_java_division_truncates_toward_zero(self):
        assert self.interp.run("arith", [7, 2]).result == 3 + 1
        assert self.interp.run("arith", [-7, 2]).result == -3 + -1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpError):
            self.interp.run("arith", [1, 0])

    def test_negation(self):
        assert self.interp.run("neg", [5]).result == -5

    def test_short_circuit_logic(self):
        assert self.interp.run("logic", [1, 0]).result == 1
        assert self.interp.run("logic", [1, 1]).result == 0


class TestArrays:
    def setup_method(self):
        self.interp = interpreter_for(
            """
            proc get(a: byte[], i: int): int { return a[i]; }
            proc set(a: int[], i: int, v: int): int { a[i] = v; return a[i]; }
            proc make(n: int): int { var a: int[] = new int[n]; return len(a); }
            proc nullcheck(a: byte[]): bool { return a == null; }
            proc strlen(): int { return len("hello"); }
            """
        )

    def test_load_store(self):
        assert self.interp.run("get", [[10, 20, 30], 1]).result == 20
        assert self.interp.run("set", [[0, 0], 1, 42]).result == 42

    def test_out_of_bounds(self):
        with pytest.raises(InterpError):
            self.interp.run("get", [[1], 5])
        with pytest.raises(InterpError):
            self.interp.run("get", [[1], -1])

    def test_byte_wrapping(self):
        assert self.interp.run("get", [[300], 0]).result == 300 % 256

    def test_new_array(self):
        assert self.interp.run("make", [7]).result == 7
        with pytest.raises(InterpError):
            self.interp.run("make", [-1])

    def test_null_handling(self):
        assert self.interp.run("nullcheck", [None]).result == 1
        assert self.interp.run("nullcheck", [[1]]).result == 0
        with pytest.raises(InterpError):
            self.interp.run("get", [None, 0])

    def test_string_literal(self):
        assert self.interp.run("strlen", []).result == 5


class TestCallsAndCosts:
    def test_defined_call_by_reference(self):
        interp = interpreter_for(
            """
            proc fill(a: int[], v: int) { a[0] = v; }
            proc f(): int {
                var a: int[] = new int[1];
                fill(a, 9);
                return a[0];
            }
            """
        )
        assert interp.run("f", []).result == 9

    def test_nested_call_cost_counted(self):
        source = """
        proc inner(n: int): int {
            var i: int = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        proc outer(n: int): int { return inner(n); }
        """
        interp = interpreter_for(source)
        t_small = interp.time_of("outer", [1])
        t_large = interp.time_of("outer", [10])
        assert t_large > t_small

    def test_extern_cost_charged(self):
        interp = interpreter_for(
            'extern md5(p: byte[]): byte[];\n'
            "proc f(p: byte[]): int { var h: byte[] = md5(p); return len(h); }"
        )
        trace = interp.run("f", [[1, 2]])
        assert trace.result == 16  # md5 model returns a 16-byte digest
        assert trace.time > 500  # the call's model cost is included

    def test_missing_extern_model(self):
        interp = Interpreter(
            compile_to_cfgs("extern mystery(): int;\nproc f(): int { return mystery(); }"),
            externs=ExternRegistry(),
        )
        with pytest.raises(InterpError):
            interp.run("f", [])


class TestTracesAndFuel:
    def test_fuel_exhaustion(self):
        interp = Interpreter(
            compile_to_cfgs("proc spin() { while (true) { } }"), fuel=100
        )
        with pytest.raises(FuelExhausted):
            interp.run("spin", [])

    def test_deterministic_timing(self):
        interp = interpreter_for(
            "proc f(n: uint): int { var i: int = 0; while (i < n) { i = i + 1; } return i; }"
        )
        assert interp.time_of("f", [5]) == interp.time_of("f", [5])

    def test_trace_records_edges_of_cfg(self):
        from repro.cfg import cfg_automaton

        cfgs = compile_to_cfgs(
            "proc f(n: int): int { var i: int = 0; while (i < n) { i = i + 1; } return i; }"
        )
        interp = Interpreter(cfgs)
        automaton = cfg_automaton(cfgs["f"])
        for n in (0, 1, 4):
            trace = interp.run("f", [n])
            assert automaton.accepts(trace.edges)

    def test_low_high_projections(self):
        interp = interpreter_for(
            "proc f(secret h: int, public l: int): int { return h + l; }"
        )
        trace = interp.run("f", {"h": 1, "l": 2})
        assert dict(trace.low_inputs) == {"l": 2}
        assert dict(trace.high_inputs) == {"h": 1}

    def test_low_equivalence(self):
        interp = interpreter_for(
            "proc f(secret h: int, public l: int): int { return h + l; }"
        )
        a = interp.run("f", {"h": 1, "l": 2})
        b = interp.run("f", {"h": 9, "l": 2})
        c = interp.run("f", {"h": 1, "l": 3})
        assert a.low_equivalent(b)
        assert not a.low_equivalent(c)

    def test_uint_rejects_negative(self):
        interp = interpreter_for("proc f(n: uint): int { return n; }")
        with pytest.raises(InterpError):
            interp.run("f", [-1])

    def test_missing_argument_named(self):
        interp = interpreter_for("proc f(a: int, b: int): int { return a + b; }")
        with pytest.raises(InterpError):
            interp.run("f", {"a": 1})
