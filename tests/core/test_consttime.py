"""Constant-time checker tests: the TCF vs constant-time separation."""

from repro.benchsuite import SUITE
from repro.core import Blazer
from repro.core.consttime import verify_constant_time


class TestConstantTime:
    def test_no_secret_branch_is_constant_time(self):
        blazer = Blazer.from_source(
            """
            proc f(secret h: int, public l: uint): int {
                var i: int = 0;
                while (i < l) { i = i + 1; }
                return i + h;
            }
            """
        )
        verdict = verify_constant_time(blazer, "f")
        assert verdict.constant_time

    def test_secret_branch_breaks_constant_time(self):
        blazer = Blazer.from_source(
            "proc f(secret h: int): int { if (h > 0) { return 1; } return 2; }"
        )
        verdict = verify_constant_time(blazer, "f")
        assert not verdict.constant_time
        assert verdict.offending_branches

    def test_unreachable_secret_branch_ignored(self):
        """The loopAndBranch pattern: the secret-dependent code is dead."""
        blazer = Blazer.from_source(
            """
            proc f(secret h: int, public l: uint): int {
                var i: int = 0;
                if (l < 0) {
                    if (h > 0) { i = 99; }
                }
                return i;
            }
            """
        )
        verdict = verify_constant_time(blazer, "f")
        assert verdict.constant_time

    def test_tcf_strictly_weaker_than_constant_time(self):
        """The paper's separation: modPow1_safe is timing-channel free
        (Table 1) yet NOT constant-time (it branches on exponent bits)."""
        bench = SUITE.get("modPow1_safe")
        blazer = bench.analyzer()
        assert blazer.analyze(bench.proc).status == "safe"  # TCF holds
        ct = verify_constant_time(blazer, bench.proc)
        assert not ct.constant_time  # but constant-time fails

    def test_render(self):
        blazer = Blazer.from_source(
            "proc f(secret h: int): int { if (h > 0) { return 1; } return 2; }"
        )
        text = verify_constant_time(blazer, "f").render()
        assert "NOT constant-time" in text
