"""JSON report tests."""

import json

from repro.core import analyze_source, suite_report, verdict_to_dict, verdict_to_json

SAFE = """
proc f(secret h: int, public l: uint): int {
    var i: int = 0;
    while (i < l) { i = i + 1; }
    return i;
}
"""

LEAKY = """
proc g(secret h: int, public l: uint): int {
    var i: int = 0;
    if (h > 0) { while (i < l) { i = i + 1; } }
    return i;
}
"""


class TestVerdictDict:
    def test_safe_schema(self):
        verdict = analyze_source(SAFE, "f")
        data = verdict_to_dict(verdict)
        assert data["status"] == "safe"
        assert data["proc"] == "f"
        assert data["attack"] is None
        assert data["partition"]["status"] in ("safe", "wide")
        assert data["partition"]["bound"]["feasible"]
        assert isinstance(data["partition"]["bound"]["upper"], list)

    def test_attack_schema(self):
        verdict = analyze_source(LEAKY, "g")
        data = verdict_to_dict(verdict)
        assert data["status"] == "attack"
        assert data["attack"]["trail_a"]["bound"]["feasible"]
        assert "trail_b" in data["attack"]
        children = data["partition"]["children"]
        assert children and all(c["split_kind"] == "sec" for c in children)

    def test_json_roundtrips(self):
        verdict = analyze_source(LEAKY, "g")
        parsed = json.loads(verdict_to_json(verdict))
        assert parsed["status"] == "attack"

    def test_suite_report_aggregates(self):
        verdicts = [analyze_source(SAFE, "f"), analyze_source(LEAKY, "g")]
        report = suite_report(verdicts)
        assert report["total"] == 2
        assert report["safe"] == 1
        assert report["attack"] == 1
        assert report["seconds"] > 0


class TestCliJson:
    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.rp"
        path.write_text(SAFE)
        assert main(["analyze", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "safe"
