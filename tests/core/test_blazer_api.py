"""Driver API behaviors: multi-procedure programs, determinism, reuse."""

from repro.core import Blazer

TWO_PROCS = """
proc helper(n: uint): int {
    var i: int = 0;
    while (i < n) { i = i + 1; }
    return i;
}
proc outer(secret h: int, public l: uint): int {
    return helper(l);
}
proc leaky(secret h: int, public l: uint): int {
    if (h > 0) { return helper(l); }
    return 0;
}
"""


class TestBlazerAPI:
    def setup_method(self):
        self.blazer = Blazer.from_source(TWO_PROCS)

    def test_analyze_multiple_procs_one_pipeline(self):
        safe = self.blazer.analyze("outer")
        attack = self.blazer.analyze("leaky")
        assert safe.status == "safe"
        assert attack.status == "attack"

    def test_interprocedural_bound_used(self):
        verdict = self.blazer.analyze("outer")
        bound = verdict.tree.root.bound.bound
        assert bound.upper is not None  # helper's bound was instantiated
        assert "l" in bound.symbols()

    def test_verdicts_deterministic(self):
        a = self.blazer.analyze("leaky")
        b = self.blazer.analyze("leaky")
        assert a.status == b.status
        assert len(a.tree.leaves()) == len(b.tree.leaves())
        assert str(a.tree.root.bound) == str(b.tree.root.bound)

    def test_taint_cached_per_proc(self):
        t1 = self.blazer.taint("outer")
        t2 = self.blazer.taint("outer")
        assert t1 is t2
