"""Channel capacity on the Table-1 benchmarks (extension coverage).

Every 1-bit-style unsafe micro benchmark should be provable at q=2 —
the secret chooses between two time bands — while the safe ones are
capacity 1 by definition.
"""

import pytest

from repro.benchsuite import SUITE
from repro.core.capacity import verify_channel_capacity

ONE_BIT_LEAKS = ["sanity_unsafe", "straightline_unsafe", "unixlogin_unsafe"]
SAFE_MICRO = ["sanity_safe", "array_safe", "nosecret_safe"]


@pytest.mark.parametrize("name", SAFE_MICRO)
def test_safe_benchmarks_have_capacity_1(name):
    bench = SUITE.get(name)
    blazer = bench.analyzer()
    verdict = verify_channel_capacity(blazer, bench.proc, 1)
    assert verdict.verified, verdict.render()


@pytest.mark.parametrize("name", ONE_BIT_LEAKS)
def test_one_bit_leaks_have_capacity_2(name):
    bench = SUITE.get(name)
    blazer = bench.analyzer()
    assert not verify_channel_capacity(blazer, bench.proc, 1).verified
    verdict = verify_channel_capacity(blazer, bench.proc, 2)
    assert verdict.verified, verdict.render()
