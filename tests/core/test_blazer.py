"""Driver tests on the paper's running examples (Sections 1-2, 7)."""

import pytest

from repro.core import Blazer, BlazerConfig, analyze_source
from repro.core.witness import find_witness

EXAMPLE_1 = """
proc foo(secret high: int, public low: uint) {
    var i: int = 0;
    if (high == 0) {
        i = 0;
        while (i < low) { i = i + 1; }
    } else {
        i = low;
        while (i > 0) { i = i - 1; }
    }
}
"""

EXAMPLE_2 = """
proc bar(secret high: int, public low: int) {
    var i: int = 0;
    if (low > 0) {
        i = 0;
        while (i < low) { i = i + 1; }
        while (i > 0) { i = i - 1; }
    } else {
        if (high == 0) { i = 5; } else { i = 0; i = i + 1; }
    }
}
"""

# Section 7's type-system-imprecise-but-safe examples.
EX7_1 = """
proc ex1(secret h: int, public x: int) {
    var never: bool = false;
    if (never) {
        var t: int = h;
        while (t < x) { t = t + 1; }
    }
}
"""

EX7_2 = """
proc ex2(secret h: int, public x: int): int {
    var ticks: int = 0;
    if (h > x) { ticks = ticks + 1; }
    else { ticks = ticks + 1; ticks = ticks + 1; }
    if (h <= x) { ticks = ticks + 1; }
    else { ticks = ticks + 1; ticks = ticks + 1; }
    return ticks;
}
"""

LEAKY = """
proc leak(secret high: int, public low: uint): int {
    var i: int = 0;
    if (high > 0) {
        while (i < low) { i = i + 1; }
    }
    return i;
}
"""


class TestPaperExamples:
    def test_example_1_safe_with_single_component(self):
        verdict = analyze_source(EXAMPLE_1, "foo")
        assert verdict.status == "safe"
        # "In Example 1, we only needed one partition component."
        assert len(verdict.tree.leaves()) == 1

    def test_example_2_safe_after_low_split(self):
        verdict = analyze_source(EXAMPLE_2, "bar")
        assert verdict.status == "safe"
        assert len(verdict.tree.leaves()) == 2
        kinds = {leaf.split_kind for leaf in verdict.tree.leaves()}
        assert kinds == {"taint"}

    def test_example_2_partition_covers(self):
        verdict = analyze_source(EXAMPLE_2, "bar")
        assert verdict.tree.covers_root()

    def test_section7_examples_safe(self):
        """The related-work examples that type systems reject but the
        decomposition proves (dead code / compensating branches)."""
        assert analyze_source(EX7_1, "ex1").status == "safe"
        assert analyze_source(EX7_2, "ex2").status == "safe"


class TestAttackSynthesis:
    def test_leak_produces_attack_spec(self):
        verdict = analyze_source(LEAKY, "leak")
        assert verdict.status == "attack"
        assert verdict.attack is not None
        assert verdict.attack.is_pair
        # The split that exposed the attack is a sec split.
        attack_nodes = [
            n for n in verdict.tree.all_nodes() if n.status == "attack"
        ]
        assert all(n.split_kind == "sec" for n in attack_nodes)

    def test_attack_spec_validated_by_witness(self):
        blazer = Blazer.from_source(LEAKY)
        verdict = blazer.analyze("leak")
        from repro.interp import Interpreter

        interp = Interpreter(blazer.cfgs)
        witness = find_witness(
            interp,
            blazer.cfgs["leak"],
            gap=10,
            spec=verdict.attack,
            overrides={"high": [0, 1], "low": [10]},
        )
        assert witness is not None
        assert witness.trace_a.low_equivalent(witness.trace_b)
        assert witness.gap >= 10

    def test_attack_timing_reported(self):
        verdict = analyze_source(LEAKY, "leak")
        assert verdict.attack_seconds > 0
        assert verdict.total_seconds >= verdict.safety_seconds

    def test_render_contains_verdict(self):
        verdict = analyze_source(LEAKY, "leak")
        text = verdict.render()
        assert "ATTACK" in text
        assert "attack specification" in text


class TestDriverMechanics:
    def test_size_column_is_block_count(self):
        blazer = Blazer.from_source(EXAMPLE_2)
        verdict = blazer.analyze("bar")
        assert verdict.size == blazer.cfgs["bar"].size

    def test_domain_configurable(self):
        for domain in ("zone", "octagon"):
            verdict = analyze_source(
                EXAMPLE_2, "bar", BlazerConfig(domain=domain)
            )
            assert verdict.status == "safe", domain

    def test_unknown_when_no_splits_help(self):
        # Branch on high*low product: not narrow, and the only branch is
        # already high so no taint refinement exists; bounds of the two
        # sec components are symbolically identical -> unknown.
        source = """
        proc odd(secret h: int, public l: int): int {
            var x: int = h * l;
            if (x > 0) { return 1; } else { return 2; }
        }
        """
        verdict = analyze_source(source, "odd")
        assert verdict.status in ("safe", "unknown")

    def test_infeasible_vulnerable_trail_pruned(self):
        source = """
        proc f(secret h: int, public l: uint) {
            var i: int = 0;
            if (l < 0) {
                while (i < h) { i = i + 1; }
            } else {
                while (i < l) { i = i + 1; }
            }
        }
        """
        verdict = analyze_source(source, "f")
        assert verdict.status == "safe"
        statuses = {n.status for n in verdict.tree.all_nodes()}
        # The secret-bounded loop's trail must have been found infeasible
        # (or never split on, because the branch never fires).
        assert "attack" not in statuses
