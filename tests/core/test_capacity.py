"""Channel-capacity verification tests (the §3.4 k>2 extension)."""

import pytest

from repro.core import Blazer
from repro.core.capacity import verify_channel_capacity
from repro.core.ksafety import ccf
from repro.interp import Interpreter

LEAK = """
proc leak(secret h: int, public l: uint): int {
    var i: int = 0;
    if (h > 0) {
        while (i < l) { i = i + 1; }
    }
    return i;
}
"""

SAFE = """
proc fine(secret h: int, public l: uint): int {
    var i: int = 0;
    while (i < l) { i = i + 1; }
    return i;
}
"""


class TestCapacity:
    def test_safe_program_has_capacity_1(self):
        blazer = Blazer.from_source(SAFE)
        verdict = verify_channel_capacity(blazer, "fine", 1)
        assert verdict.verified
        assert verdict.bands == 1

    def test_leak_not_provable_at_q1(self):
        blazer = Blazer.from_source(LEAK)
        verdict = verify_channel_capacity(blazer, "leak", 1)
        assert not verdict.verified

    def test_leak_provable_at_q2(self):
        blazer = Blazer.from_source(LEAK)
        verdict = verify_channel_capacity(blazer, "leak", 2)
        assert verdict.verified
        assert verdict.bands == 2
        assert "sec-sum" in verdict.render()

    def test_monotone_in_q(self):
        blazer = Blazer.from_source(LEAK)
        assert verify_channel_capacity(blazer, "leak", 3).verified

    def test_invalid_q(self):
        blazer = Blazer.from_source(LEAK)
        with pytest.raises(ValueError):
            verify_channel_capacity(blazer, "leak", 0)

    def test_static_capacity_matches_empirical_ccf(self):
        """Soundness: ccf(q) proved statically must hold on enumerated
        traces (with the observer's epsilon slack)."""
        blazer = Blazer.from_source(LEAK)
        verdict = verify_channel_capacity(blazer, "leak", 2)
        assert verdict.verified
        interp = Interpreter(blazer.cfgs)
        traces = [
            interp.run("leak", {"h": h, "l": l})
            for l in (0, 2, 5)
            for h in (-1, 0, 1, 9)
        ]
        assert ccf(q=2, epsilon=32).holds(traces)

    def test_render_structure(self):
        blazer = Blazer.from_source(LEAK)
        verdict = verify_channel_capacity(blazer, "leak", 2)
        text = verdict.render()
        assert "ccf(q=2) HOLDS" in text
        assert "bands=1 (narrow)" in text
