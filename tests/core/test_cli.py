"""CLI tests: the ``python -m repro`` entry points."""

import json

import pytest

from repro.cli import main

SAFE_SRC = """
proc check(secret pin: int, public attempts: uint): int {
    var i: int = 0;
    while (i < attempts) { i = i + 1; }
    return i;
}
"""

LEAKY_SRC = """
proc check(secret pin: int, public attempts: uint): bool {
    if (pin == 1234) {
        var i: int = 0;
        while (i < attempts) { i = i + 1; }
        return true;
    }
    return false;
}
"""

TWO_PROCS = SAFE_SRC + "\nproc other(x: int): int { return x; }\n"


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.rp"
    path.write_text(SAFE_SRC)
    return str(path)


@pytest.fixture
def leaky_file(tmp_path):
    path = tmp_path / "leaky.rp"
    path.write_text(LEAKY_SRC)
    return str(path)


class TestAnalyze:
    def test_safe_exit_zero(self, safe_file, capsys):
        assert main(["analyze", safe_file]) == 0
        out = capsys.readouterr().out
        assert "SAFE" in out

    def test_attack_exit_two(self, leaky_file, capsys):
        assert main(["analyze", leaky_file]) == 2
        out = capsys.readouterr().out
        assert "ATTACK" in out
        assert "attack specification" in out

    def test_observer_flag(self, safe_file):
        assert main(["analyze", safe_file, "--observer", "threshold"]) == 0

    def test_domain_flag(self, safe_file):
        assert main(["analyze", safe_file, "--domain", "octagon"]) == 0

    def test_multiple_procs_need_flag(self, tmp_path):
        path = tmp_path / "two.rp"
        path.write_text(TWO_PROCS)
        with pytest.raises(SystemExit):
            main(["analyze", str(path)])
        assert main(["analyze", str(path), "--proc", "other"]) == 0

    def test_unknown_proc_rejected(self, safe_file):
        with pytest.raises(SystemExit):
            main(["analyze", safe_file, "--proc", "nope"])


class TestOtherCommands:
    def test_bounds(self, safe_file, capsys):
        assert main(["bounds", safe_file]) == 0
        out = capsys.readouterr().out
        assert "attempts" in out
        assert "iterations" in out

    def test_taint(self, leaky_file, capsys):
        assert main(["taint", leaky_file]) == 0
        assert "|h" in capsys.readouterr().out

    def test_disasm(self, safe_file, capsys):
        assert main(["disasm", safe_file]) == 0
        out = capsys.readouterr().out
        assert "cmplt" in out or "load" in out

    def test_run_with_named_args(self, safe_file, capsys):
        code = main(["run", safe_file, "--args", json.dumps({"pin": 1, "attempts": 3})])
        assert code == 0
        out = capsys.readouterr().out
        assert "result: 3" in out
        assert "instructions" in out

    def test_run_with_positional_args(self, safe_file, capsys):
        assert main(["run", safe_file, "--args", "[1, 4]"]) == 0
        assert "result: 4" in capsys.readouterr().out

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.rp"
        path.write_text("proc broken( {")
        assert main(["analyze", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file_reported(self, capsys):
        assert main(["analyze", "/nonexistent/nope.rp"]) == 1
        assert "error" in capsys.readouterr().err

class TestPdsc:
    def test_safe_exit_zero(self, safe_file, capsys):
        assert main(["pdsc", safe_file]) == 0
        out = capsys.readouterr().out
        assert "pdsc: VERIFIED" in out
        assert "lockstep" in out

    def test_leaky_exit_unknown(self, leaky_file, capsys):
        # The low-loop-under-secret-guard program: a real channel, so
        # the lockstep CEGAR loop must end unverified (exit 3), never 0.
        code = main(["pdsc", leaky_file, "--epsilon", "8"])
        assert code == 3
        assert "UNVERIFIED" in capsys.readouterr().out

    def test_json_output_is_digest_stable(self, safe_file, capsys):
        assert main(["pdsc", safe_file, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["pdsc", safe_file, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["outcome"] == "verified"
        assert first["digest"]

    def test_exhaustion_exit_degraded(self, safe_file, capsys):
        code = main(
            ["pdsc", safe_file, "--max-pairs", "2", "--max-refinements", "0"]
        )
        assert code == 4
        assert "EXHAUSTED" in capsys.readouterr().out


class TestDiffcheckSubjects:
    def test_subject_subset_runs_clean(self, capsys):
        code = main(
            ["diffcheck", "--seed", "3", "--count", "2", "--jobs", "1",
             "--no-shrink", "--subjects", "blazer,pdsc"]
        )
        assert code in (0, 4)
        assert "programs=2" in capsys.readouterr().out

    def test_unknown_subject_rejected(self, capsys):
        assert (
            main(["diffcheck", "--count", "1", "--subjects", "blazer,typo"]) == 1
        )
        assert "unknown subject" in capsys.readouterr().err
