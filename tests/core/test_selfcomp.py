"""Self-composition baseline tests (the ablation comparator)."""

from repro.core.selfcomp import SelfComposition
from repro.domains import DOMAINS
from tests.helpers import compile_one

ZONE = DOMAINS["zone"]


class TestSelfComposition:
    def test_verifies_trivially_constant_program(self):
        cfg = compile_one(
            "proc f(secret h: int, public l: int): int { return l + 1; }", "f"
        )
        result = SelfComposition(cfg, ZONE).verify()
        assert result.verified

    def test_verifies_balanced_branch(self):
        cfg = compile_one(
            """
            proc f(secret h: int, public l: int): int {
                var x: int = 0;
                if (l > 0) { x = 1; } else { x = 2; }
                return x;
            }
            """,
            "f",
        )
        result = SelfComposition(cfg, ZONE, epsilon=4).verify()
        assert result.verified

    def test_does_not_verify_secret_branch_with_cost_gap(self):
        cfg = compile_one(
            """
            proc f(secret h: int): int {
                var x: int = 0;
                if (h > 0) {
                    x = 1; x = 2; x = 3; x = 4; x = 5;
                    x = 1; x = 2; x = 3; x = 4; x = 5;
                }
                return x;
            }
            """,
            "f",
        )
        result = SelfComposition(cfg, ZONE, epsilon=2).verify()
        assert not result.verified

    def test_loses_loop_correlation_where_decomposition_wins(self):
        """The headline ablation: the decomposition proves this safe (see
        test_blazer), but the naive product analysis cannot keep the two
        copies' counters correlated through the loop."""
        source = """
        proc f(secret h: int, public l: uint): int {
            var i: int = 0;
            while (i < l) { i = i + 1; }
            return i;
        }
        """
        cfg = compile_one(source, "f")
        from repro.core import analyze_source

        assert analyze_source(source, "f").status == "safe"
        result = SelfComposition(cfg, ZONE, epsilon=4).verify()
        assert not result.verified  # the baseline gives up / loses precision

    def test_pair_state_space_is_quadratic(self):
        cfg = compile_one(
            """
            proc f(secret h: int, public l: int): int {
                var x: int = 0;
                if (l > 0) { x = 1; } else { x = 2; }
                if (l > 1) { x = 3; } else { x = 4; }
                return x;
            }
            """,
            "f",
        )
        result = SelfComposition(cfg, ZONE, epsilon=4).verify()
        # Pair exploration visits ~|blocks|^2 nodes vs |blocks| for the
        # decomposition's per-copy analysis.
        assert result.explored_pairs > cfg.size

    def test_budget_exhaustion_reported(self):
        cfg = compile_one(
            """
            proc f(secret h: int, public l: uint): int {
                var i: int = 0;
                while (i < l) { i = i + 1; }
                return i;
            }
            """,
            "f",
        )
        result = SelfComposition(cfg, ZONE, max_pairs=3).verify()
        assert not result.verified
        assert "exceeded" in result.note
        assert result.outcome == "exhausted"
        assert result.exhausted

    def test_real_answers_carry_explicit_outcomes(self):
        safe = compile_one(
            "proc f(secret h: int, public l: int): int { return l + 1; }", "f"
        )
        assert SelfComposition(safe, ZONE).verify().outcome == "verified"
        leaky = compile_one(
            """
            proc f(secret h: int): int {
                var x: int = 0;
                if (h > 0) {
                    x = 1; x = 2; x = 3; x = 4; x = 5;
                    x = 1; x = 2; x = 3; x = 4; x = 5;
                }
                return x;
            }
            """,
            "f",
        )
        result = SelfComposition(leaky, ZONE, epsilon=2).verify()
        assert result.outcome == "unverified"
        assert not result.exhausted
