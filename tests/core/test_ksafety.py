"""Section 3 formalization tests: quotient partitions on real traces."""

import pytest

from repro.core.ksafety import (
    ccf,
    det,
    is_quotient_partition,
    is_quotient_partitionable,
    per_low_time_function,
    psi_ccf,
    psi_det,
    psi_tcf,
    psi_true,
    rbps_holds,
    tcf,
    theorem_3_1_conclusion,
    time_band_property,
)
from tests.helpers import interpreter_for

SAFE_SRC = """
proc f(secret h: int, public l: uint): int {
    var i: int = 0;
    while (i < l) { i = i + 1; }
    if (h > 0) { i = i + 1; } else { i = i + 1; }
    return i;
}
"""

LEAKY_SRC = """
proc g(secret h: int, public l: uint): int {
    var i: int = 0;
    if (h > 0) {
        while (i < l) { i = i + 1; }
    }
    return i;
}
"""


def traces_of(source, proc, lows, highs):
    interp = interpreter_for(source)
    return [
        interp.run(proc, {"h": h, "l": l}) for l in lows for h in highs
    ]


@pytest.fixture
def safe_traces():
    return traces_of(SAFE_SRC, "f", [0, 1, 3], [-1, 0, 2])


@pytest.fixture
def leaky_traces():
    return traces_of(LEAKY_SRC, "g", [0, 2, 5], [-1, 0, 2])


class TestProperties:
    def test_tcf_holds_on_safe(self, safe_traces):
        # The then/else arms differ by one goto instruction; epsilon=1 is
        # the paper's attacker-unobservable constant c.
        assert tcf(epsilon=1).holds(safe_traces)

    def test_tcf_fails_on_leaky(self, leaky_traces):
        prop = tcf(epsilon=0)
        assert not prop.holds(leaky_traces)
        assert prop.violations(leaky_traces)

    def test_epsilon_slack(self, leaky_traces):
        # With a huge observation slack everything is "safe".
        assert tcf(epsilon=10_000).holds(leaky_traces)

    def test_det_holds_for_deterministic_program(self, safe_traces):
        assert det().holds(safe_traces)

    def test_ccf_relaxation(self, leaky_traces):
        # The leak has exactly 2 distinct times per low input, so channel
        # capacity q=2 holds even though tcf (q=1) fails.
        assert not tcf(0).holds(leaky_traces)
        assert ccf(q=2, epsilon=0).holds(leaky_traces)

    def test_ccf_is_k3(self):
        assert ccf(q=2).k == 3


class TestQuotientPartitions:
    def test_low_partition_is_psi_tcf_quotient(self, safe_traces):
        by_low = {}
        for trace in safe_traces:
            by_low.setdefault(trace.low_inputs, []).append(trace)
        partition = list(by_low.values())
        assert is_quotient_partition(safe_traces, partition, psi_tcf, 2)

    def test_arbitrary_split_not_quotient(self, safe_traces):
        # Splitting low-equivalent traces across components violates ψ.
        half = len(safe_traces) // 2
        partition = [safe_traces[:half], safe_traces[half:]]
        same_low_crossing = any(
            a.low_equivalent(b)
            for a in safe_traces[:half]
            for b in safe_traces[half:]
        )
        if same_low_crossing:
            assert not is_quotient_partition(safe_traces, partition, psi_tcf, 2)

    def test_trivial_partition_always_quotient(self, safe_traces):
        assert is_quotient_partition(safe_traces, [safe_traces], psi_true, 2)

    def test_partition_must_cover(self, safe_traces):
        assert not is_quotient_partition(
            safe_traces, [safe_traces[:1]], psi_tcf, 2
        )

    def test_tcf_is_psi_tcf_partitionable(self, safe_traces, leaky_traces):
        # ψ ∨ Φ holds for every pair — by construction of tcf.
        assert is_quotient_partitionable(tcf(0), psi_tcf, safe_traces)
        assert is_quotient_partitionable(tcf(0), psi_tcf, leaky_traces)

    def test_det_is_psi_det_partitionable(self, safe_traces):
        assert is_quotient_partitionable(det(), psi_det, safe_traces)

    def test_ccf_is_psi_ccf_partitionable(self, leaky_traces):
        assert is_quotient_partitionable(ccf(2, 0), psi_ccf, leaky_traces)


class TestRBPSAndTheorem:
    def test_time_band_rbps_for_tcf(self, safe_traces):
        prop = time_band_property(0, 10_000)
        # A band as wide as epsilon=10000 makes P_f rbps for tcf(10000).
        assert rbps_holds(prop, tcf(10_000), safe_traces)

    def test_per_low_function_rbps(self, safe_traces):
        prop = per_low_time_function(safe_traces)
        assert rbps_holds(prop, tcf(0), safe_traces)
        # The safe program has two times per low input (the one-goto
        # asymmetry), so P_f does not hold on all traces with epsilon=0;
        # the theorem check below therefore exercises the vacuous case.
        assert rbps_holds(prop, tcf(1), safe_traces)

    def test_theorem_3_1_on_safe_program(self, safe_traces):
        by_low = {}
        for trace in safe_traces:
            by_low.setdefault(trace.low_inputs, []).append(trace)
        partition = list(by_low.values())

        def band_property(component):
            times = [t.time for t in component]
            return time_band_property(min(times), max(times))

        properties = [band_property(comp) for comp in partition]
        # Bands of width <=1 per low input are RBPS for tcf(1).
        assert theorem_3_1_conclusion(
            tcf(1), psi_tcf, safe_traces, partition, properties
        )

    def test_theorem_3_1_premise_failure_is_vacuous(self, leaky_traces):
        # With a property that does NOT hold on a component, the theorem
        # promises nothing (returns True vacuously).
        partition = [leaky_traces]
        never = [lambda t: False]
        assert theorem_3_1_conclusion(
            tcf(0), psi_tcf, leaky_traces, partition, never
        )

    def test_theorem_3_1_never_contradicted_on_leaky(self, leaky_traces):
        """Whatever partition/properties we try on the leaky program,
        the premises must fail (otherwise Thm 3.1 would be wrong)."""
        by_low = {}
        for trace in leaky_traces:
            by_low.setdefault(trace.low_inputs, []).append(trace)
        partition = list(by_low.values())
        properties = [per_low_time_function(comp) for comp in partition]
        assert theorem_3_1_conclusion(
            tcf(0), psi_tcf, leaky_traces, partition, properties
        )
        # Indeed: for the leaky program the per-low "function" is not a
        # function (two times per low input), so premise (ii) fails.
        assert not all(
            prop(t) for comp, prop in zip(partition, properties) for t in comp
        )


class TestRelationalRBPS:
    """§3.3's closing generalization: m-ary relational Θ properties."""

    def _partition(self, traces):
        by_low = {}
        for trace in traces:
            by_low.setdefault(trace.low_inputs, []).append(trace)
        return list(by_low.values())

    def test_pairwise_band_theta(self, safe_traces):
        from repro.core.ksafety import rbps_relational_holds, theorem_3_1_relational

        def theta(pair):
            return abs(pair[0].time - pair[1].time) <= 1

        # Θ is 2-ary and RBPS for tcf(1): any pair both within-band
        # implies their times differ by at most 1.
        assert rbps_relational_holds(theta, 2, tcf(1), safe_traces)
        partition = self._partition(safe_traces)
        thetas = [theta] * len(partition)
        assert theorem_3_1_relational(
            tcf(1), psi_tcf, safe_traces, partition, thetas, m=2
        )

    def test_m1_degenerates_to_plain_rbps(self, safe_traces):
        from repro.core.ksafety import rbps_relational_holds

        prop = time_band_property(0, 10_000)

        def theta(singleton):
            return prop(singleton[0])

        assert rbps_relational_holds(theta, 1, tcf(10_000), safe_traces) == rbps_holds(
            prop, tcf(10_000), safe_traces
        )

    def test_vacuous_when_theta_fails_on_component(self, leaky_traces):
        from repro.core.ksafety import theorem_3_1_relational

        def theta(pair):
            return abs(pair[0].time - pair[1].time) <= 1

        partition = self._partition(leaky_traces)
        thetas = [theta] * len(partition)
        # Θ fails inside the leaky components, so the theorem is vacuous
        # (and must not be contradicted).
        assert theorem_3_1_relational(
            tcf(1), psi_tcf, leaky_traces, partition, thetas, m=2
        )
