"""Witness-search module tests."""

import pytest

from repro.core.witness import (
    Witness,
    default_value_space,
    enumerate_inputs,
    find_witness,
    max_gap_per_low,
    run_all,
)
from repro.interp import Interpreter
from repro.lang import ast
from tests.helpers import compile_to_cfgs

LEAK = """
proc leak(secret h: int, public l: uint): int {
    var i: int = 0;
    if (h > 0) {
        while (i < l) { i = i + 1; }
    }
    return i;
}
"""

SAFE = """
proc fine(secret h: int, public l: uint): int {
    var i: int = 0;
    while (i < l) { i = i + 1; }
    return i;
}
"""


def setup_pair(source, proc):
    cfgs = compile_to_cfgs(source)
    return Interpreter(cfgs), cfgs[proc]


class TestValueSpaces:
    def test_default_spaces_by_type(self):
        assert 0 in default_value_space(ast.UINT)
        assert all(v >= 0 for v in default_value_space(ast.UINT))
        assert set(default_value_space(ast.BOOL)) == {0, 1}
        arrays = default_value_space(ast.BYTE_ARRAY)
        assert [] in arrays and [0, 1] in arrays

    def test_enumeration_respects_overrides_and_limit(self):
        _, cfg = setup_pair(LEAK, "leak")
        combos = list(enumerate_inputs(cfg, {"h": [0, 1], "l": [5]}))
        assert combos == [{"h": 0, "l": 5}, {"h": 1, "l": 5}]
        limited = list(enumerate_inputs(cfg, None, limit=3))
        assert len(limited) == 3


class TestSearch:
    def test_finds_witness_on_leak(self):
        interp, cfg = setup_pair(LEAK, "leak")
        witness = find_witness(interp, cfg, gap=5, overrides={"h": [0, 1], "l": [5]})
        assert witness is not None
        assert witness.gap >= 5
        assert witness.trace_a.low_equivalent(witness.trace_b)
        assert witness.trace_a.high_inputs != witness.trace_b.high_inputs

    def test_no_witness_on_safe(self):
        interp, cfg = setup_pair(SAFE, "fine")
        assert find_witness(interp, cfg, gap=2) is None

    def test_returns_maximal_gap(self):
        interp, cfg = setup_pair(LEAK, "leak")
        witness = find_witness(
            interp, cfg, gap=1, overrides={"h": [0, 1], "l": [1, 5]}
        )
        # The best witness uses l=5 (largest loop), not l=1.
        assert witness.trace_a.input("l") == 5

    def test_gap_threshold_filters(self):
        interp, cfg = setup_pair(LEAK, "leak")
        assert (
            find_witness(interp, cfg, gap=10_000, overrides={"h": [0, 1], "l": [3]})
            is None
        )

    def test_crashing_inputs_skipped(self):
        source = """
        proc f(secret h: int, public a: byte[]): int {
            return a[3];
        }
        """
        interp, cfg = setup_pair(source, "f")
        # Arrays shorter than 4 trap; run_all must survive.
        traces = run_all(interp, cfg, {"h": [0], "a": [[1], [1, 2, 3, 4]]})
        assert len(traces) == 1

    def test_max_gap_per_low(self):
        interp, cfg = setup_pair(LEAK, "leak")
        traces = run_all(interp, cfg, {"h": [0, 1], "l": [4]})
        gap = max_gap_per_low(traces)
        assert gap > 0
        assert max_gap_per_low([]) == 0

    def test_witness_str(self):
        interp, cfg = setup_pair(LEAK, "leak")
        witness = find_witness(interp, cfg, gap=1, overrides={"h": [0, 1], "l": [3]})
        text = str(witness)
        assert "gap=" in text and "low=" in text
