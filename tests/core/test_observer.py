"""Observer model tests."""

from repro.bounds.cost import CostBound, Poly
from repro.core.observer import (
    ConcreteThresholdObserver,
    PolynomialDegreeObserver,
    default_observer_for,
)

N = frozenset({"n"})


def bound(lo, hi, nonneg=N):
    return CostBound.range(lo, hi, nonneg)


def const(v):
    return Poly.constant(v)


def lin(coeff, c=0, sym="n"):
    return coeff * Poly.symbol(sym) + Poly.constant(c)


class TestDegreeObserver:
    def setup_method(self):
        self.obs = PolynomialDegreeObserver(epsilon=32)

    def test_constant_band_narrow(self):
        assert self.obs.is_narrow(bound(const(8), const(10)))

    def test_constant_band_beyond_epsilon_wide(self):
        assert not self.obs.is_narrow(bound(const(0), const(100)))

    def test_same_degree_narrow(self):
        assert self.obs.is_narrow(bound(lin(19, 10), lin(23, 10)))

    def test_degree_mismatch_wide(self):
        assert not self.obs.is_narrow(bound(const(6), lin(20, 8)))

    def test_unbounded_wide(self):
        assert not self.obs.is_narrow(CostBound.unbounded(const(0)))

    def test_different_symbols_wide(self):
        nn = frozenset({"a", "b"})
        wide = CostBound.range(lin(5, 0, "a"), lin(5, 0, "b"), nn)
        assert not self.obs.is_narrow(wide)

    def test_identical_bounds_indistinguishable(self):
        a = bound(lin(9, 8), lin(9, 8))
        assert not self.obs.distinguishable(a, a)

    def test_degree_gap_distinguishable(self):
        assert self.obs.distinguishable(bound(const(9), const(9)), bound(lin(9, 12), lin(9, 12)))

    def test_constant_gap_beyond_epsilon_distinguishable(self):
        assert self.obs.distinguishable(
            bound(const(0), const(0)), bound(const(100), const(100))
        )

    def test_small_constant_gap_not_distinguishable(self):
        assert not self.obs.distinguishable(
            bound(lin(21, 32), lin(21, 32)), bound(lin(21, 33), lin(22, 33))
        )

    def test_unbounded_always_distinguishable(self):
        assert self.obs.distinguishable(
            CostBound.unbounded(const(0)), bound(const(1), const(1))
        )


class TestThresholdObserver:
    def setup_method(self):
        self.obs = ConcreteThresholdObserver(threshold=25_000, default_max=4096)

    def test_narrow_when_width_below_threshold(self):
        assert self.obs.is_narrow(bound(lin(19, 10), lin(23, 10)))  # 4*4096 < 25k

    def test_wide_when_width_exceeds_threshold(self):
        assert not self.obs.is_narrow(bound(lin(10, 0), lin(20, 0)))  # 10*4096

    def test_max_values_override(self):
        tight = ConcreteThresholdObserver(
            threshold=25_000, default_max=4096, max_values={"n": 64}
        )
        assert tight.is_narrow(bound(lin(10, 0), lin(20, 0)))  # 10*64 < 25k

    def test_distinguishable_by_concrete_gap(self):
        a = bound(lin(19, 0), lin(23, 0))
        b = bound(const(8), const(8))
        assert self.obs.distinguishable(a, b)  # lo gap 19*4096 >= 25k

    def test_not_distinguishable_when_close(self):
        a = bound(lin(19, 0), lin(23, 0))
        b = bound(lin(19, 5), lin(23, 5))
        assert not self.obs.distinguishable(a, b)

    def test_unbounded_wide_and_distinguishable(self):
        inf = CostBound.unbounded(const(0))
        assert not self.obs.is_narrow(inf)
        assert self.obs.distinguishable(inf, inf)


class TestFactory:
    def test_default_observers(self):
        assert default_observer_for("micro").name == "degree"
        assert default_observer_for("real").name == "threshold"
