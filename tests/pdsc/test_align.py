"""Alignment policies: scheduling decisions and refinement proposals."""

from repro.pdsc.align import (
    BOTH,
    LEFT,
    RIGHT,
    AbstractCex,
    AlignmentPolicy,
    block_ranks,
    refine_policy,
)
from tests.helpers import COUNT_LOOP, compile_one

CFG = compile_one(COUNT_LOOP, "count")
RANKS = block_ranks(CFG)
EXIT = CFG.exit_id


def some_node():
    """A desynchronized non-exit pair node of the loop CFG."""
    blocks = [b for b in CFG.block_ids() if b != EXIT]
    return (blocks[0], blocks[1])


def test_lockstep_always_advances_both_copies():
    policy = AlignmentPolicy.lockstep()
    for b1 in CFG.block_ids():
        for b2 in CFG.block_ids():
            if b1 == EXIT or b2 == EXIT:
                continue
            assert policy.decide((b1, b2), RANKS, EXIT) == BOTH


def test_exit_overrides_guarantee_progress_for_any_policy():
    # The progress half of the any-policy-is-sound argument: a finished
    # copy always yields, whatever the mode or exceptions say.
    node = some_node()
    policies = [
        AlignmentPolicy.lockstep(),
        AlignmentPolicy.catchup(),
        AlignmentPolicy.catchup(exceptions=(((EXIT, node[1]), LEFT),)),
    ]
    for policy in policies:
        assert policy.decide((EXIT, node[1]), RANKS, EXIT) == RIGHT
        assert policy.decide((node[0], EXIT), RANKS, EXIT) == LEFT


def test_catchup_advances_the_smaller_rank():
    policy = AlignmentPolicy.catchup()
    b1, b2 = some_node()
    expected = LEFT if RANKS[b1] < RANKS[b2] else RIGHT
    assert policy.decide((b1, b2), RANKS, EXIT) == expected
    # Symmetric node flips the direction.
    assert policy.decide((b2, b1), RANKS, EXIT) != expected
    # Synchronized pairs go together even in catchup mode.
    assert policy.decide((b1, b1), RANKS, EXIT) == BOTH


def test_refinement_sequence_lockstep_catchup_flips_then_spent():
    node = some_node()
    cex = AbstractCex(reason="wide-gap", desync=((node, LEFT),))
    first = refine_policy(AlignmentPolicy.lockstep(), cex)
    assert first is not None and first.mode == "catchup" and not first.exceptions

    second = refine_policy(first, cex)
    assert second is not None
    assert dict(second.exceptions)[node] == RIGHT
    assert second.decide(node, RANKS, EXIT) == RIGHT

    # The same counterexample again: the only desync node is already
    # flipped, so the proposal sequence is spent.
    assert refine_policy(second, cex) is None


def test_no_counterexample_means_no_proposal():
    assert refine_policy(AlignmentPolicy.lockstep(), None) is None


def test_policies_are_deterministic_values():
    a = AlignmentPolicy.catchup(exceptions=((some_node(), LEFT),))
    b = AlignmentPolicy.catchup(exceptions=((some_node(), LEFT),))
    assert a == b
    assert a.describe() == b.describe() == "catchup+1 flip(s)"
