"""PDSC verdicts replayed against the concrete timing oracle.

The soundness contract, checked end to end: whenever PDSC says
"verified" at slack epsilon, every pair of low-equivalent concrete
executions the interpreter can produce differs in cost by at most
epsilon.  The converse direction is deliberately not asserted —
"unverified" with a small empirical gap is the precision story, not a
bug — except that an *empirically wide* channel must never verify.
"""

import pytest

from repro.bytecode import compile_program, verify_module
from repro.core.witness import max_gap_per_low, run_all
from repro.interp import Interpreter
from repro.ir import lift_module
from repro.lang import frontend
from tests.pdsc.bench_common import FAST, pdsc_result

pytestmark = pytest.mark.diffcheck

EPSILON = 32  # matches bench_common's PDSC runs


def observed_gap(bench):
    module = compile_program(frontend(bench.source))
    verify_module(module)
    cfgs = lift_module(module)
    cfg = cfgs[bench.proc]
    traces = run_all(
        Interpreter(cfgs), cfg, overrides=bench.witness_space, limit=256
    )
    assert traces, "no concrete traces for %s" % bench.name
    return max_gap_per_low(traces)


@pytest.mark.parametrize("bench", FAST, ids=lambda b: b.name)
def test_verified_means_no_oracle_gap_beyond_epsilon(bench):
    result = pdsc_result(bench)
    if not result.verified:
        pytest.skip("nothing claimed for %s" % bench.name)
    gap = observed_gap(bench)
    assert gap <= EPSILON, (
        "SOUNDNESS BUG: PDSC verified %s at epsilon=%d but the oracle "
        "exhibits a low-equivalent gap of %d" % (bench.name, EPSILON, gap)
    )


@pytest.mark.parametrize("bench", FAST, ids=lambda b: b.name)
def test_wide_empirical_channels_never_verify(bench):
    if bench.is_safe:
        pytest.skip("safe row")
    if observed_gap(bench) <= EPSILON:
        pytest.skip("channel below slack in the enumerated space")
    assert not pdsc_result(bench).verified
