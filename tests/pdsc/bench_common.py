"""Shared PDSC runs over the Table-1 suite, memoized across test files."""

from repro.benchsuite import ALL_BENCHMARKS
from repro.core.pdsc import verify_source

# The modPow2 pair spends ~15 s each in the pair fixpoint; the rest of
# the suite finishes in a couple of seconds total.  Same pragmatic split
# as tests/diffcheck/test_bounds_soundness.py.
SLOW = ("modPow2_safe", "modPow2_unsafe")
FAST = [b for b in ALL_BENCHMARKS if b.name not in SLOW]

# The half of Table 1 the lockstep product proves outright at the
# micro-observer slack (epsilon=32, zone).  The harder safe rows need
# the path-sensitive decomposition (trail partitioning) that PDSC
# deliberately does without — see docs/PDSC.md.
EASY_SAFE = frozenset(
    {
        "loopBranch_safe",
        "nosecret_safe",
        "sanity_safe",
        "straightline_safe",
        "unixlogin_safe",
    }
)

_RESULTS = {}


def pdsc_result(bench):
    if bench.name not in _RESULTS:
        _, result = verify_source(
            bench.source,
            proc=bench.proc,
            epsilon=32,
            max_pairs=4000,
            max_refinements=3,
            deadline=30.0,
        )
        _RESULTS[bench.name] = result
    return _RESULTS[bench.name]
