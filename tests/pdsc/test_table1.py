"""PDSC over Table 1: proves the easy safe half, never blesses an attack.

The registry's ``expect`` field is the paper's ground truth.  PDSC is a
whole-program prover, so on attack rows the only acceptable outcomes
are "unverified" and "exhausted"; on safe rows it proves exactly the
rows whose timing is alignable without trail decomposition (EASY_SAFE).
The harder safe rows staying unproven is the precision gap that
motivates the paper's decomposition — recorded here so a regression in
either direction (a lost proof or a too-strong one) fails loudly.
"""

import pytest

from tests.pdsc.bench_common import EASY_SAFE, FAST, pdsc_result

pytestmark = pytest.mark.diffcheck


@pytest.mark.parametrize("bench", FAST, ids=lambda b: b.name)
def test_attack_rows_are_never_verified(bench):
    if bench.is_safe:
        pytest.skip("safe row")
    result = pdsc_result(bench)
    assert not result.verified, "%s is a real channel" % bench.name
    assert result.outcome in ("unverified", "exhausted")


@pytest.mark.parametrize("bench", FAST, ids=lambda b: b.name)
def test_safe_rows_split_on_alignability(bench):
    if not bench.is_safe:
        pytest.skip("attack row")
    result = pdsc_result(bench)
    if bench.name in EASY_SAFE:
        assert result.verified, "lost the lockstep proof of %s" % bench.name
        assert result.refinements == 0
    else:
        assert not result.verified, (
            "%s should need trail decomposition; a PDSC proof means the "
            "pair semantics got stronger — update EASY_SAFE deliberately"
            % bench.name
        )


def test_every_run_terminated_within_budget():
    for bench in FAST:
        result = pdsc_result(bench)
        assert result.outcome in ("verified", "unverified", "exhausted")
        assert result.rounds, "%s recorded no rounds" % bench.name
