"""The PDSC CEGAR loop on hand-written programs.

The claims of docs/PDSC.md, each pinned by a program:

* lockstep round 0 proves the low-guarded loop the eager baseline loses
  to widening — the headline qualitative win;
* a phase-desynchronizing secret branch needs (and gets) a refinement
  round: lockstep fails, the catch-up realignment verifies;
* a genuinely leaky program is never verified, whatever the budgets;
* budget exhaustion degrades to ``outcome="exhausted"`` — a
  three-valued "gave up", never a wrong verdict;
* a secret-guarded extern call is charged its summary cost, so the
  unixlogin-shaped channel cannot be "verified" away.
"""

import pytest

from repro.core.selfcomp import SelfComposition
from repro.domains import DOMAINS
from repro.pdsc import PDSC
from tests.helpers import compile_one

ZONE = DOMAINS["zone"]

TRIVIAL = """
proc f(secret h: int, public l: int): int {
    var x: int = l + 1;
    return x;
}
"""

# The paper's decisive example shape: running time depends only on the
# public bound, but the eager baseline widens copy 1's loop before
# copy 2 ever moves and loses the counters' correlation.
LOW_LOOP = """
proc f(secret h: int, public l: uint): int {
    var i: int = 0;
    while (i < l) { i = i + 1; }
    return i;
}
"""

# Secret branch with nested structure in one arm: the copies leave the
# branch after different block counts, so lockstep desynchronizes and
# fails, while the catch-up policy re-aligns at the join and proves the
# (cost-balanced) program.  Needs >= 1 refinement round by design.
PHASED = """
proc f(secret h: int, public l: uint): int {
    var x: int = 0;
    if (h > 0) {
        if (l > 0) { x = x + 1; } else { x = x + 1; }
    } else {
        x = x + 2;
    }
    var i: int = 0;
    while (i < l) { i = i + 1; }
    return x;
}
"""

LEAKY = """
proc f(secret h: int, public l: int): int {
    var x: int = 0;
    if (h > 0) {
        var i: int = 0;
        while (i < 20) { x = x + i; i = i + 1; }
    }
    return x + l;
}
"""

# A secret-guarded extern call: the md5 summary cost (500) must land in
# the gap bound, or the absent hash in the else-arm "verifies" exactly
# the username-existence channel the unixlogin benchmark models.
SECRET_CALL = """
extern md5(p: byte[]): byte[];

proc f(secret h: bool, public pass: byte[]): bool {
    var outcome: bool = false;
    if (h) {
        var d: byte[] = md5(pass);
        outcome = true;
    } else {
        outcome = false;
    }
    return outcome;
}
"""


def pdsc(source, **kwargs):
    cfg = compile_one(source, "f")
    defaults = dict(epsilon=16, max_pairs=4000, max_refinements=4)
    defaults.update(kwargs)
    return PDSC(cfg, ZONE, **defaults).verify()


def test_trivial_program_verifies_in_one_lockstep_round():
    result = pdsc(TRIVIAL)
    assert result.outcome == "verified"
    assert result.refinements == 0
    assert result.rounds[0].alignment == "lockstep"


def test_lockstep_proves_the_loop_the_eager_baseline_loses():
    cfg = compile_one(LOW_LOOP, "f")
    eager = SelfComposition(cfg, ZONE, epsilon=16, max_pairs=4000).verify()
    directed = PDSC(cfg, ZONE, epsilon=16, max_pairs=4000).verify()
    assert eager.outcome == "unverified"  # the ablation this PR is about
    assert directed.outcome == "verified"
    assert directed.refinements == 0  # trivial alignment already suffices


def test_phase_shifted_branch_needs_a_refinement_round():
    result = pdsc(PHASED)
    assert result.outcome == "verified"
    assert result.refinements >= 1, "lockstep alone must not suffice here"
    assert not result.rounds[0].verified
    assert result.rounds[0].alignment == "lockstep"
    assert result.rounds[-1].verified
    assert result.rounds[-1].alignment.startswith("catchup")


def test_leaky_program_is_never_verified():
    for budget in (0, 1, 4):
        result = pdsc(LEAKY, max_refinements=budget)
        assert result.outcome in ("unverified", "exhausted")
        assert not result.verified


def test_budget_exhaustion_degrades_to_exhausted_not_a_verdict():
    result = pdsc(LOW_LOOP, max_pairs=3, max_refinements=1)
    assert result.outcome == "exhausted"
    assert not result.verified
    assert result.exhausted
    # Every round records what it spent.
    assert all(r.explored_pairs <= 4 for r in result.rounds)


def test_wall_deadline_degrades_to_exhausted():
    result = pdsc(LOW_LOOP, deadline=0.0)
    assert result.outcome in ("exhausted", "verified")
    # A zero deadline can only verify if round 0 finishes before the
    # first amortized clock check; either way it must never error.
    if result.outcome == "exhausted":
        assert not result.verified


def test_secret_guarded_extern_call_cost_is_charged():
    result = pdsc(SECRET_CALL, epsilon=16)
    assert not result.verified, "md5's cost difference is the channel"
    # With a slack beyond the summary cost the program really is safe.
    wide = pdsc(SECRET_CALL, epsilon=1000)
    assert wide.outcome == "verified"


def test_result_dict_is_json_shaped_and_timing_free():
    result = pdsc(PHASED)
    record = result.to_dict()
    assert record["outcome"] == "verified"
    assert record["refinements"] == result.refinements
    assert "seconds" not in record
    assert all("seconds" not in r for r in record["rounds"])
    assert result.render()  # human rendering never crashes


@pytest.mark.parametrize("source", [TRIVIAL, LOW_LOOP, PHASED, LEAKY])
def test_outcomes_are_deterministic(source):
    first = pdsc(source)
    second = pdsc(source)
    assert first.to_dict() == second.to_dict()
