"""Pretty-printer unit tests (the full round-trip lives in properties/)."""

from repro.lang import ast, format_expr, format_program, frontend
from repro.lang.parser import parse_expr, parse_program


def roundtrip(source: str) -> None:
    prog = parse_program(source)
    text = format_program(prog)
    again = format_program(parse_program(text))
    assert text == again


class TestExprFormatting:
    def test_precedence_parens_only_when_needed(self):
        assert format_expr(parse_expr("1 + 2 * 3")) == "1 + 2 * 3"
        assert format_expr(parse_expr("(1 + 2) * 3")) == "(1 + 2) * 3"

    def test_left_assoc_subtraction(self):
        assert format_expr(parse_expr("1 - (2 - 3)")) == "1 - (2 - 3)"
        assert format_expr(parse_expr("(1 - 2) - 3")) == "1 - 2 - 3"

    def test_unary_and_index(self):
        assert format_expr(parse_expr("-a[1]")) == "-a[1]"
        assert format_expr(parse_expr("!(a < b)")) == "!(a < b)"

    def test_string_escapes(self):
        expr = ast.StrLit('a"b\n')
        assert format_expr(expr) == '"a\\"b\\n"'

    def test_call_and_new(self):
        assert format_expr(parse_expr("f(a, len(b))")) == "f(a, len(b))"
        assert format_expr(parse_expr("new int[n + 1]")) == "new int[n + 1]"


class TestProgramFormatting:
    def test_stable_fixpoint_simple(self):
        roundtrip(
            """
            proc f(secret h: int, public l: uint): int {
                var a: int = 0;
                for (var i: int = 0; i < l; i = i + 1) {
                    if (a > h) { a = a - 1; } else { a = a + 1; }
                }
                while (a > 0) { a = a - 1; }
                return a;
            }
            """
        )

    def test_stable_fixpoint_externs_and_arrays(self):
        roundtrip(
            """
            extern md5(p: byte[]): byte[];
            proc g(x: byte[]): bool {
                var h: byte[] = md5(x);
                if (h == null) { return false; }
                h[0] = 1;
                return len(h) > 0;
            }
            """
        )

    def test_formatted_output_typechecks(self):
        source = """
        proc f(public a: byte[]): int {
            var s: int = 0;
            for (var i: int = 0; i < len(a); i = i + 1) { s = s + a[i]; }
            return s;
        }
        """
        text = format_program(frontend(source))
        frontend(text)  # must not raise

    def test_break_continue_rendered(self):
        text = format_program(
            parse_program(
                "proc f(x: int) { while (x > 0) { break; continue; } }"
            )
        )
        assert "break;" in text and "continue;" in text
