"""Lexer unit tests."""

import pytest

from repro.lang.lexer import TokKind, tokenize
from repro.util.errors import LexError


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokKind.EOF

    def test_identifier(self):
        (tok, _) = tokenize("foo_bar1")
        assert tok.kind is TokKind.IDENT
        assert tok.text == "foo_bar1"

    def test_keywords_are_not_identifiers(self):
        for kw in ("proc", "while", "if", "return", "uint", "secret"):
            (tok, _) = tokenize(kw)
            assert tok.kind is TokKind.KEYWORD, kw

    def test_integer_literal(self):
        (tok, _) = tokenize("12345")
        assert tok.kind is TokKind.INT
        assert tok.text == "12345"

    def test_identifier_cannot_start_with_digit(self):
        with pytest.raises(LexError):
            tokenize("1abc")

    def test_two_char_punct_wins_over_prefix(self):
        assert texts("== = <= < != !") == ["==", "=", "<=", "<", "!=", "!"]

    def test_logical_operators(self):
        assert texts("&& ||") == ["&&", "||"]

    def test_unknown_character_rejected(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_comment_at_eof(self):
        assert texts("a //") == ["a"]


class TestStringLiterals:
    def test_simple_string(self):
        (tok, _) = tokenize('"hello"')
        assert tok.kind is TokKind.STRING
        assert tok.text == "hello"

    def test_escapes(self):
        (tok, _) = tokenize(r'"a\nb\tc\\d\"e\0f"')
        assert tok.text == 'a\nb\tc\\d"e\0f'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string_rejected(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')

    def test_unknown_escape_rejected(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert toks[0].pos.line == 1 and toks[0].pos.column == 1
        assert toks[1].pos.line == 2 and toks[1].pos.column == 3

    def test_position_after_comment(self):
        toks = tokenize("// c\nxy")
        assert toks[0].pos.line == 2
