"""Parser unit tests."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse_expr, parse_program
from repro.util.errors import ParseError


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op is ast.BinOp.ADD
        assert isinstance(expr.right, ast.Binary) and expr.right.op is ast.BinOp.MUL

    def test_left_associativity(self):
        expr = parse_expr("1 - 2 - 3")
        assert expr.op is ast.BinOp.SUB
        assert isinstance(expr.left, ast.Binary)
        assert isinstance(expr.right, ast.IntLit) and expr.right.value == 3

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op is ast.BinOp.MUL
        assert isinstance(expr.left, ast.Binary) and expr.left.op is ast.BinOp.ADD

    def test_comparison_and_logic_layers(self):
        expr = parse_expr("a < b && c == d || e > f")
        assert expr.op is ast.BinOp.OR
        assert expr.left.op is ast.BinOp.AND

    def test_unary_operators(self):
        expr = parse_expr("-x + !y")
        assert isinstance(expr.left, ast.Unary) and expr.left.op is ast.UnOp.NEG
        assert isinstance(expr.right, ast.Unary) and expr.right.op is ast.UnOp.NOT

    def test_indexing_chains(self):
        expr = parse_expr("a[1][2]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.array, ast.Index)

    def test_call_with_arguments(self):
        expr = parse_expr("f(1, x, g())")
        assert isinstance(expr, ast.Call)
        assert expr.callee == "f"
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], ast.Call)

    def test_len_and_new(self):
        expr = parse_expr("len(new byte[5])")
        assert isinstance(expr, ast.Len)
        assert isinstance(expr.array, ast.NewArray)
        assert expr.array.elem.base is ast.BaseType.BYTE

    def test_literals(self):
        assert isinstance(parse_expr("true"), ast.BoolLit)
        assert isinstance(parse_expr("null"), ast.NullLit)
        assert parse_expr('"ab"').value == "ab"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("1 + 2 )")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("(1 + 2")


class TestDeclarations:
    def test_extern_declaration(self):
        prog = parse_program("extern md5(p: byte[]): byte[];")
        (decl,) = prog.procs
        assert decl.is_extern
        assert decl.ret == ast.BYTE_ARRAY

    def test_proc_with_qualifiers(self):
        prog = parse_program(
            "proc f(secret h: int, public l: uint, x: bool) { return; }"
        )
        params = prog.proc("f").params
        assert params[0].level is ast.SecLevel.SECRET
        assert params[1].level is ast.SecLevel.PUBLIC
        assert params[2].level is ast.SecLevel.PUBLIC  # default
        assert params[1].declared.base is ast.BaseType.UINT

    def test_void_return_type_default(self):
        prog = parse_program("proc f() { }")
        assert prog.proc("f").ret == ast.VOID

    def test_void_array_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc f(x: void[]) { }")

    def test_toplevel_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_program("var x: int = 1;")


class TestStatements:
    def _body(self, stmts):
        prog = parse_program("proc f(x: int) { %s }" % stmts)
        return prog.proc("f").body.stmts

    def test_var_decl_with_and_without_init(self):
        decl, decl2 = self._body("var a: int = 1; var b: byte[];")
        assert decl.init is not None
        assert decl2.init is None and decl2.declared == ast.BYTE_ARRAY

    def test_if_else_chain(self):
        (stmt,) = self._body("if (x > 0) { } else if (x < 0) { } else { }")
        assert isinstance(stmt, ast.If)
        nested = stmt.orelse.stmts[0]
        assert isinstance(nested, ast.If)
        assert nested.orelse is not None

    def test_while_loop(self):
        (stmt,) = self._body("while (x > 0) { x = x - 1; }")
        assert isinstance(stmt, ast.While)
        assert isinstance(stmt.body.stmts[0], ast.Assign)

    def test_for_loop_full(self):
        (stmt,) = self._body("for (var i: int = 0; i < x; i = i + 1) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert stmt.cond is not None
        assert isinstance(stmt.update, ast.Assign)

    def test_for_loop_empty_slots(self):
        (stmt,) = self._body("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.update is None

    def test_break_continue_return(self):
        stmts = self._body("while (x > 0) { break; continue; } return x;")
        loop = stmts[0]
        assert isinstance(loop.body.stmts[0], ast.Break)
        assert isinstance(loop.body.stmts[1], ast.Continue)
        assert isinstance(stmts[1], ast.Return)

    def test_array_assignment_target(self):
        (stmt,) = self._body("a[0] = 1;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Index)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            self._body("1 = 2;")

    def test_call_statement(self):
        (stmt,) = self._body("f(x);")
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Call)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            self._body("x = 1")

    def test_if_requires_braces(self):
        with pytest.raises(ParseError):
            self._body("if (x > 0) x = 1;")
