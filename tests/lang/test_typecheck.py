"""Type checker unit tests."""

import pytest

from repro.lang import ast, frontend
from repro.util.errors import TypeError_


def check(source):
    return frontend(source)


def check_body(body, params="x: int"):
    return frontend("proc f(%s) { %s }" % (params, body))


class TestAccepted:
    def test_arithmetic_and_comparison(self):
        check_body("var a: int = x * 2 + 1; var b: bool = a < x;")

    def test_byte_int_interoperate(self):
        check_body("var b: byte = 3; var s: int = b + x; b = s;", "x: int")

    def test_uint_is_numeric(self):
        check_body("var y: int = x + 1;", "x: uint")

    def test_array_operations(self):
        check_body(
            "var a: byte[] = new byte[4]; a[0] = 1; var n: int = len(a) + a[0];"
        )

    def test_null_flows_into_arrays(self):
        check_body("var a: int[] = null; if (a == null) { a = new int[1]; }")

    def test_string_literal_is_byte_array(self):
        check_body('var s: byte[] = "hi"; var n: int = len(s);')

    def test_call_types(self):
        check(
            """
            proc g(a: int, b: byte[]): bool { return a > len(b); }
            proc f() { var r: bool = g(1, new byte[2]); }
            """
        )

    def test_void_call_as_statement(self):
        check(
            """
            proc g() { }
            proc f() { g(); }
            """
        )

    def test_all_paths_return(self):
        check("proc f(x: int): int { if (x > 0) { return 1; } else { return 2; } }")
        # must-return through a trailing return
        check("proc f(x: int): int { if (x > 0) { return 1; } return 2; }")

    def test_annotates_types_in_place(self):
        prog = check_body("var a: int = x + 1;")
        decl = prog.proc("f").body.stmts[0]
        assert decl.init.ty == ast.INT


class TestRejected:
    def _fails(self, body, params="x: int"):
        with pytest.raises(TypeError_):
            check_body(body, params)

    def test_undeclared_variable(self):
        self._fails("y = 1;")

    def test_redeclaration_shadowing(self):
        self._fails("var a: int = 1; { var a: int = 2; }")

    def test_bool_arith(self):
        self._fails("var a: int = true + 1;")

    def test_non_bool_condition(self):
        self._fails("if (x) { }")

    def test_array_index_on_scalar(self):
        self._fails("var a: int = x[0];")

    def test_len_of_scalar(self):
        self._fails("var a: int = len(x);")

    def test_assign_type_mismatch(self):
        self._fails("var a: bool = true; a = 1;")

    def test_array_base_mismatch(self):
        self._fails("var a: int[] = new byte[2];")

    def test_compare_bool_with_int(self):
        self._fails("var a: bool = true == 1;")

    def test_null_compared_with_scalar(self):
        self._fails("var a: bool = x == null;")

    def test_missing_return(self):
        with pytest.raises(TypeError_):
            check("proc f(x: int): int { if (x > 0) { return 1; } }")

    def test_return_value_from_void(self):
        with pytest.raises(TypeError_):
            check("proc f() { return 1; }")

    def test_return_type_mismatch(self):
        with pytest.raises(TypeError_):
            check("proc f(): bool { return new int[1]; }")

    def test_break_outside_loop(self):
        self._fails("break;")

    def test_call_arity(self):
        with pytest.raises(TypeError_):
            check("proc g(a: int) { } proc f() { g(); }")

    def test_call_arg_type(self):
        with pytest.raises(TypeError_):
            check("proc g(a: int) { } proc f() { g(true); }")

    def test_unknown_callee(self):
        with pytest.raises(TypeError_):
            check("proc f() { g(); }")

    def test_duplicate_proc(self):
        with pytest.raises(TypeError_):
            check("proc f() { } proc f() { }")

    def test_duplicate_param(self):
        with pytest.raises(TypeError_):
            check("proc f(a: int, a: int) { }")

    def test_void_variable(self):
        self._fails("var v: void;")

    def test_void_value_in_expression(self):
        with pytest.raises(TypeError_):
            check("proc g() { } proc f() { var a: int = g(); }")

    def test_nonvoid_call_usable_as_statement(self):
        # Calls whose result is discarded are allowed as statements.
        check("proc g(): int { return 1; } proc f() { g(); }")
