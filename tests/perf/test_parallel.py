"""Worker-pool helpers: backend equivalence and ordering guarantees."""

import pytest

from repro.perf.parallel import parallel_map, resolve_jobs, thread_map


def _square(x):
    return x * x


class TestResolveJobs:
    def test_defaults_to_machine(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_explicit(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-2) == 1


class TestParallelMap:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process", "auto"])
    def test_backends_agree_in_order(self, backend):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=3, backend=backend) == [
            x * x for x in items
        ]

    def test_jobs_one_is_serial(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1, backend="process") == [1, 4, 9]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], jobs=2, backend="bogus")

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("x=%d" % x)

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2], jobs=2, backend="thread")

    def test_thread_map_order(self):
        assert thread_map(_square, range(10), jobs=4) == [x * x for x in range(10)]
