"""Worker-pool helpers: backend equivalence and ordering guarantees."""

import pytest

from repro.perf.parallel import parallel_map, resolve_jobs, thread_map, try_map
from repro.util.errors import ResourceExhausted


def _square(x):
    return x * x


def _square_or_boom(x):
    if x == 3:
        raise RuntimeError("x=%d" % x)
    return x * x


def _sleep_forever(x):
    # Long enough to trip a 50ms timeout, short enough that the
    # abandoned worker threads don't stall interpreter shutdown.
    import time

    time.sleep(2)
    return x


class TestResolveJobs:
    def test_defaults_to_machine(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            resolve_jobs(-2)
        with pytest.raises(ValueError, match="got -1"):
            resolve_jobs(-1)


class TestTryMap:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process", "auto"])
    def test_isolates_failures_in_order(self, backend):
        out = try_map(_square_or_boom, list(range(6)), jobs=3, backend=backend)
        assert [x for x in out if not isinstance(x, Exception)] == [0, 1, 4, 16, 25]
        assert isinstance(out[3], RuntimeError)

    def test_all_succeed_matches_parallel_map(self):
        items = list(range(8))
        assert try_map(_square, items, jobs=3, backend="thread") == [
            x * x for x in items
        ]

    def test_on_result_sees_every_slot(self):
        seen = []
        try_map(
            _square_or_boom,
            [1, 3, 5],
            jobs=1,
            backend="serial",
            on_result=lambda i, outcome: seen.append((i, outcome)),
        )
        assert [i for i, _ in seen] == [0, 1, 2]
        assert isinstance(seen[1][1], RuntimeError)

    def test_task_timeout_maps_to_resource_exhausted(self):
        out = try_map(
            _sleep_forever,
            [1, 2],
            jobs=2,
            backend="thread",
            task_timeout=0.05,
        )
        assert all(isinstance(x, ResourceExhausted) for x in out)
        assert all(x.kind == "task_timeout" for x in out)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            try_map(_square, [1], jobs=2, backend="bogus")


class TestParallelMap:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process", "auto"])
    def test_backends_agree_in_order(self, backend):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=3, backend=backend) == [
            x * x for x in items
        ]

    def test_jobs_one_is_serial(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1, backend="process") == [1, 4, 9]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], jobs=2, backend="bogus")

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("x=%d" % x)

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2], jobs=2, backend="thread")

    def test_thread_map_order(self):
        assert thread_map(_square, range(10), jobs=4) == [x * x for x in range(10)]
