"""The persistent disk tier: durability, integrity, quarantine."""

import json
import threading

from repro.perf import runtime
from repro.perf.disktier import QUARANTINE_EVENT, DiskTier, payload_digest


def _tier(tmp_path, stats=None):
    return DiskTier(
        str(tmp_path / "tier.jsonl"), stats=stats or runtime.PerfStats()
    )


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        tier = _tier(tmp_path)
        tier.put("k", {"status": "safe"})
        assert tier.get("k") == {"status": "safe"}
        assert "k" in tier and len(tier) == 1

    def test_absent_key_is_none(self, tmp_path):
        assert _tier(tmp_path).get("nope") is None

    def test_survives_reopen(self, tmp_path):
        _tier(tmp_path).put("k", [1, 2, 3])
        reopened = _tier(tmp_path)
        assert reopened.get("k") == [1, 2, 3]

    def test_last_writer_wins(self, tmp_path):
        tier = _tier(tmp_path)
        tier.put("k", "old")
        tier.put("k", "new")
        assert tier.get("k") == "new"
        assert _tier(tmp_path).get("k") == "new"

    def test_refresh_sees_other_writers(self, tmp_path):
        reader = _tier(tmp_path)
        writer = _tier(tmp_path)
        writer.put("k", "v")
        assert reader.get("k") is None
        reader.refresh()
        assert reader.get("k") == "v"

    def test_clear(self, tmp_path):
        tier = _tier(tmp_path)
        tier.put("k", "v")
        tier.clear()
        assert tier.get("k") is None
        assert _tier(tmp_path).get("k") is None


class TestIntegrity:
    def _corrupt(self, tmp_path, mutate):
        path = tmp_path / "tier.jsonl"
        records = [json.loads(line) for line in path.read_text().splitlines()]
        mutate(records)
        path.write_text("".join(json.dumps(r) + "\n" for r in records))

    def test_tampered_payload_is_quarantined(self, tmp_path):
        stats = runtime.PerfStats()
        _tier(tmp_path).put("k", {"status": "safe"})

        def flip(records):
            records[-1]["result"]["payload"]["status"] = "attack"

        self._corrupt(tmp_path, flip)
        tier = _tier(tmp_path, stats=stats)
        assert tier.get("k") is None  # never the tampered value
        assert tier.quarantined == 1
        assert stats.events_snapshot().get(QUARANTINE_EVENT) == 1

    def test_malformed_record_is_quarantined(self, tmp_path):
        _tier(tmp_path).put("k", "v")

        def strip(records):
            records[-1]["result"] = {"digest": "x"}  # no payload at all

        self._corrupt(tmp_path, strip)
        tier = _tier(tmp_path)
        assert tier.get("k") is None
        assert tier.quarantined == 1

    def test_quarantined_key_can_be_rewritten(self, tmp_path):
        _tier(tmp_path).put("k", "v")
        self._corrupt(
            tmp_path, lambda rs: rs[-1]["result"].__setitem__("digest", "bogus")
        )
        tier = _tier(tmp_path)
        assert tier.get("k") is None
        tier.put("k", "healed")
        assert tier.get("k") == "healed"

    def test_digest_is_canonical(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


class TestPickledPayloads:
    def test_round_trip(self, tmp_path):
        tier = _tier(tmp_path)
        value = {"bound": (1, 2), "exact": True}
        assert tier.put_pickled("k", value)
        assert tier.get_pickled("k") == value
        assert _tier(tmp_path).get_pickled("k") == value

    def test_unpicklable_is_skipped_silently(self, tmp_path):
        tier = _tier(tmp_path)
        assert tier.put_pickled("k", threading.Lock()) is False
        assert tier.get_pickled("k") is None
        assert tier.quarantined == 0  # a skip, not a corruption

    def test_plain_entry_is_not_unpickled(self, tmp_path):
        tier = _tier(tmp_path)
        tier.put("k", {"status": "safe"})
        assert tier.get_pickled("k") is None
