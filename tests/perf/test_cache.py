"""AnalysisCache and the runtime switchboard."""

from repro.perf import runtime
from repro.perf.cache import AnalysisCache
from repro.trails import Trail
from tests.helpers import COUNT_LOOP, compile_one


class TestRuntime:
    def test_override_restores(self):
        before = runtime.enabled()
        with runtime.override(not before):
            assert runtime.enabled() is not before
        assert runtime.enabled() is before

    def test_stats_delta(self):
        stats = runtime.PerfStats()
        stats.hit("x")
        before = stats.snapshot()
        stats.hit("x")
        stats.miss("y")
        assert stats.delta(before) == {"x": (1, 0), "y": (0, 1)}

    def test_memo_table_is_shared_and_clearable(self):
        table = runtime.memo_table("test.shared")
        table["k"] = 1
        assert runtime.memo_table("test.shared")["k"] == 1
        runtime.clear_caches()
        assert "k" not in runtime.memo_table("test.shared")


class TestAnalysisCache:
    def test_bound_result_hits_on_equal_language(self):
        cfg = compile_one(COUNT_LOOP, "count")
        trail_a = Trail.most_general(cfg)
        trail_b = Trail(cfg=cfg, dfa=trail_a.dfa, description="relabeled")
        stats = runtime.PerfStats()
        cache = AnalysisCache(stats=stats)
        calls = []
        with runtime.override(True):
            first = cache.bound_result(trail_a, lambda: calls.append(1) or "result")
            second = cache.bound_result(trail_b, lambda: calls.append(2) or "other")
        assert first == "result"
        assert second == "result"  # same language -> cached value
        assert calls == [1]
        assert stats.snapshot()["bound"] == (1, 1)

    def test_disabled_falls_through(self):
        cfg = compile_one(COUNT_LOOP, "count")
        trail = Trail.most_general(cfg)
        cache = AnalysisCache(stats=runtime.PerfStats())
        calls = []
        with runtime.override(False):
            cache.bound_result(trail, lambda: calls.append(1))
            cache.bound_result(trail, lambda: calls.append(2))
        assert calls == [1, 2]
        assert len(cache) == 0

    def test_derived_category_keys(self):
        cache = AnalysisCache(stats=runtime.PerfStats())
        with runtime.override(True):
            a = cache.derived("cat", ("k",), lambda: [1])
            b = cache.derived("cat", ("k",), lambda: [2])
            c = cache.derived("other", ("k",), lambda: [3])
        assert a is b
        assert c == [3]
