"""The incremental re-analysis plane: lineage keys, gating, reuse tiers.

The load-bearing regression here is the stale-cache-key one
(docs/PERFORMANCE.md): the parent-artifact index is keyed by
*delta-lineage* fingerprints, not content fingerprints, because two
trails can denote the same language via structurally different split
routes — and a fixpoint published under one route must never be served
to a child of the other without full content revalidation.
"""

import pytest

from repro.core.blazer import Blazer, BlazerConfig
from repro.core.observer import DomainThresholdObserver
from repro.core.report import verdict_digest
from repro.domains import DOMAINS
from repro.perf import incremental, runtime
from repro.perf.fingerprint import (
    dfa_structure_key,
    lineage_fingerprint,
)
from repro.trails import OccurrenceSplit, Trail
from tests.helpers import compile_one

pytestmark = pytest.mark.incremental

ZONE = DOMAINS["zone"]

# Two independent branches: with∩with intersections commute, so the
# same component is reachable via two different split routes.
TWO_BRANCHES = """
proc main(secret h: int, public l: int): int {
    var acc: int = 0;
    if (l > 0) { acc = acc + 1; }
    if (l > 2) { acc = acc + 2; }
    return acc + h - h;
}
"""

# A secret-guarded loop (drives refinement) plus a structurally
# disjoint public loop (the reusable artifact).
GUARDED_PLUS_DISJOINT = """
proc main(secret h: int, public l: uint): int {
    var acc: int = 0;
    if (h > 0) {
        while (acc < l) { acc = acc + 1; }
    }
    var j: int = 0;
    while (j < l) { j = j + 1; }
    return acc + j;
}
"""


@pytest.fixture(autouse=True)
def _cold_tables():
    runtime.clear_caches()
    yield
    runtime.clear_caches()


def _routes(cfg):
    """The same component via both split orders: (b1 then b2, b2 then b1)."""
    trail = Trail.most_general(cfg)
    b1, b2 = cfg.branch_blocks()[:2]
    e1, e2 = cfg.branch_edges(b1)[0], cfg.branch_edges(b2)[0]
    split = OccurrenceSplit().split_on_edge

    def with_child(parts):
        return next(c for c in parts if c.splits[-1].polarity)

    via_a = with_child(split(with_child(split(trail, b1, e1, "t")), b2, e2, "t"))
    via_b = with_child(split(with_child(split(trail, b2, e2, "t")), b1, e1, "t"))
    return via_a, via_b


class TestLineageFingerprint:
    def test_routes_share_content_but_not_lineage(self):
        cfg = compile_one(TWO_BRANCHES, "main")
        via_a, via_b = _routes(cfg)
        # Same language, same content fingerprint — the premise of the
        # stale-key risk...
        assert via_a.fingerprint() == via_b.fingerprint()
        # ...but distinct delta-lineage fingerprints, so the
        # parent-artifact index can never alias the two split routes.
        assert via_a.lineage_fingerprint() != via_b.lineage_fingerprint()

    def test_lineage_is_deterministic(self):
        cfg = compile_one(TWO_BRANCHES, "main")
        via_a, _ = _routes(cfg)
        via_a2, _ = _routes(cfg)
        assert via_a.lineage_fingerprint() == via_a2.lineage_fingerprint()
        assert lineage_fingerprint(via_a) == via_a.lineage_fingerprint()

    def test_root_lineage_differs_from_children(self):
        cfg = compile_one(TWO_BRANCHES, "main")
        trail = Trail.most_general(cfg)
        child = OccurrenceSplit().split(trail, cfg.branch_blocks()[0], "t")[0]
        assert trail.lineage_fingerprint() != child.lineage_fingerprint()
        assert child.delta.parent_lineage == trail.lineage_fingerprint()

    def test_artifacts_not_served_across_routes(self):
        # The regression proper: publish a fixpoint under route A's
        # trail, and assert route B's children cannot find it — their
        # parents' lineages differ even though the trail contents agree.
        cfg = compile_one(TWO_BRANCHES, "main")
        via_a, via_b = _routes(cfg)
        with runtime.override_incremental(True):
            incremental.publish_loop_artifacts(via_a, {("k",): "artifact"})
            assert incremental.lineage_artifacts(
                via_a.lineage_fingerprint()
            ) == {("k",): "artifact"}
            assert (
                incremental.lineage_artifacts(via_b.lineage_fingerprint())
                is None
            )


class TestDeltaTouches:
    def test_touches_block_and_edge_endpoints(self):
        cfg = compile_one(TWO_BRANCHES, "main")
        trail = Trail.most_general(cfg)
        b1 = cfg.branch_blocks()[0]
        child = OccurrenceSplit().split(trail, b1, "t")[0]
        delta = child.delta
        assert incremental.delta_touches(delta, {delta.block})
        assert incremental.delta_touches(delta, {delta.edge[1]})
        assert not incremental.delta_touches(delta, {-1})


class TestGating:
    def test_off_path_populates_no_incremental_tables(self):
        with runtime.override_incremental(False):
            blazer = Blazer.from_source(GUARDED_PLUS_DISJOINT, BlazerConfig())
            blazer.analyze("main")
            for table in (
                incremental.LINEAGE_TABLE,
                incremental.ITERBOUND_TABLE,
                incremental.SHARED_BOUND_TABLE,
                incremental.UNRESTRICTED_TABLE,
                incremental.PROC_BOUNDS_TABLE,
            ):
                assert runtime.memo_table(table) == {}, table

    def test_config_knob_equals_process_flag(self):
        on = Blazer.from_source(
            GUARDED_PLUS_DISJOINT, BlazerConfig(incremental=True)
        ).analyze("main")
        runtime.clear_caches()
        off = Blazer.from_source(
            GUARDED_PLUS_DISJOINT, BlazerConfig(incremental=False)
        ).analyze("main")
        assert on.status == off.status
        assert verdict_digest(on) == verdict_digest(off)

    def test_degraded_results_never_shared(self):
        class Degraded:
            degraded = True

        class Healthy:
            degraded = False

        incremental.store_shared_bound(("k",), Degraded())
        assert incremental.lookup_shared_bound(("k",)) is None
        healthy = Healthy()
        incremental.store_shared_bound(("k",), healthy)
        assert incremental.lookup_shared_bound(("k",)) is healthy


class TestReuseTiers:
    def _refining_config(self, incremental=True):
        # Small domains + tight threshold make the guarded-loop gap
        # wide, so the driver refines and the children probe their
        # parent's artifacts.
        return BlazerConfig(
            incremental=incremental,
            observer=DomainThresholdObserver(
                threshold=8, domains={"h": (0, 1), "l": (0, 1, 2, 3, 4)}
            ),
        )

    def test_driver_reuses_disjoint_loop_artifacts(self):
        blazer = Blazer.from_source(
            GUARDED_PLUS_DISJOINT, self._refining_config()
        )
        verdict = blazer.analyze("main")
        hits, _ = verdict.cache_stats.get("refine.reuse", (0, 0))
        assert hits > 0, verdict.cache_stats
        # The guarded loop itself is dirty (its header is the split
        # constructor), so the plane must have skipped it explicitly.
        assert verdict.cache_events.get("refine.dirty", 0) > 0
        # And the reuse changed nothing: same digest as the off path.
        runtime.clear_caches()
        scratch = Blazer.from_source(
            GUARDED_PLUS_DISJOINT, self._refining_config(incremental=False)
        ).analyze("main")
        assert verdict_digest(verdict) == verdict_digest(scratch)

    def test_shared_tier_across_driver_instances(self):
        config = BlazerConfig(incremental=True)
        first = Blazer.from_source(GUARDED_PLUS_DISJOINT, config).analyze("main")
        second_driver = Blazer.from_source(GUARDED_PLUS_DISJOINT, config)
        second = second_driver.analyze("main")
        assert verdict_digest(first) == verdict_digest(second)
        hits, _ = second.cache_stats.get(incremental.SHARED_BOUND_TABLE, (0, 0))
        assert hits > 0, second.cache_stats

    def test_scope_isolation_between_programs(self):
        # Same shape, different constant: scope keys differ, so the
        # shared tier must answer from scratch (no cross-program hits)
        # and still produce the off-path digest.
        other = GUARDED_PLUS_DISJOINT.replace("acc + 1", "acc + 3")
        Blazer.from_source(GUARDED_PLUS_DISJOINT, BlazerConfig(incremental=True)).analyze("main")
        verdict = Blazer.from_source(other, BlazerConfig(incremental=True)).analyze("main")
        runtime.clear_caches()
        scratch = Blazer.from_source(other, BlazerConfig(incremental=False)).analyze("main")
        assert verdict_digest(verdict) == verdict_digest(scratch)

    def test_structure_key_distinguishes_renumbered_dfas(self):
        cfg = compile_one(TWO_BRANCHES, "main")
        trail = Trail.most_general(cfg)
        key = dfa_structure_key(trail.dfa)
        assert key == dfa_structure_key(trail.dfa)
        child = OccurrenceSplit().split(trail, cfg.branch_blocks()[0], "t")[0]
        assert key != dfa_structure_key(child.dfa)
