"""Warm-worker pool: chunked dispatch, fault isolation, clamping.

These tests exercise :mod:`repro.perf.pool` directly and through
:class:`~repro.benchsuite.runner.ParallelSuiteRunner`'s warm path.
Worker functions live at module level so they pickle across the process
boundary under any start method.
"""

import os

import pytest

from repro.perf import pool as pool_mod
from repro.perf.parallel import default_jobs, thread_map_chunked
from repro.perf.pool import (
    WarmPool,
    chunk_size_for,
    effective_workers,
    shared_pool,
    shutdown_shared,
)
from repro.util.errors import WorkerCrashed


def _square(x):
    return x * x


def _square_or_boom(x):
    if x == 3:
        raise ValueError("boom on 3")
    return x * x


def _crash_on_five(x):
    if x == 5:
        os._exit(70)
    return x


def _worker_pid(_x):
    return os.getpid()


@pytest.fixture(autouse=True)
def _clean_shared():
    yield
    shutdown_shared()


class TestEffectiveWorkers:
    def test_clamped_to_machine(self):
        assert effective_workers(4) == min(4, default_jobs())
        assert effective_workers(10**6) == default_jobs()

    def test_at_least_one(self):
        assert effective_workers(0) == 1
        assert effective_workers(-3) == 1

    def test_chunk_size_targets_four_chunks_per_worker(self):
        assert chunk_size_for(24, 1) == 6
        assert chunk_size_for(24, 2) == 3
        assert chunk_size_for(1, 8) == 1
        assert chunk_size_for(0, 4) >= 1


class TestMapChunked:
    def test_results_in_input_order(self):
        with WarmPool(4) as pool:
            assert pool.map_chunked(_square, list(range(17))) == [
                x * x for x in range(17)
            ]

    def test_empty_items(self):
        with WarmPool(2) as pool:
            assert pool.map_chunked(_square, []) == []

    def test_exception_isolated_to_one_slot(self):
        with WarmPool(2) as pool:
            out = pool.map_chunked(_square_or_boom, list(range(6)), chunk_size=2)
        assert out[:3] == [0, 1, 4]
        assert isinstance(out[3], ValueError)
        assert out[4:] == [16, 25]

    def test_on_result_settles_in_input_order(self):
        settled = []
        with WarmPool(2) as pool:
            pool.map_chunked(
                _square,
                list(range(9)),
                chunk_size=2,
                on_result=lambda i, outcome: settled.append(i),
            )
        assert settled == list(range(9))

    def test_pool_reused_across_calls(self):
        with WarmPool(1) as pool:
            first = pool.map_chunked(_worker_pid, [0])
            second = pool.map_chunked(_worker_pid, [0])
        assert first == second  # same warm worker process, no respawn

    def test_worker_crash_maps_to_worker_crashed(self):
        with WarmPool(1) as pool:
            out = pool.map_chunked(_crash_on_five, list(range(8)), chunk_size=2)
            # The crashed chunk and everything after it report the crash.
            assert all(isinstance(o, WorkerCrashed) for o in out[4:])
            assert out[:4] == [0, 1, 2, 3]
            # The pool transparently rebuilds for the next call.
            assert pool.map_chunked(_square, [2, 3]) == [4, 9]


class TestSharedPool:
    def test_same_config_same_pool(self):
        assert shared_pool(4) is shared_pool(4)

    def test_clamp_collapses_configs(self):
        # On an N-core box, any jobs >= N lands on the same clamped pool.
        assert shared_pool(default_jobs()) is shared_pool(default_jobs() + 7)

    def test_shutdown_shared_clears_registry(self):
        first = shared_pool(2)
        shutdown_shared()
        assert shared_pool(2) is not first

    def test_prewarm_round_trip(self):
        pool = shared_pool(2)
        pool.prewarm()  # must not raise, must leave the pool usable
        assert pool.map_chunked(_square, [5]) == [25]


class TestThreadMapChunked:
    def test_matches_serial(self):
        assert thread_map_chunked(_square, range(23), jobs=4) == [
            x * x for x in range(23)
        ]

    def test_serial_path_for_one_job(self):
        assert thread_map_chunked(_square, range(5), jobs=1) == [
            x * x for x in range(5)
        ]

    def test_fail_fast(self):
        with pytest.raises(ValueError, match="boom"):
            thread_map_chunked(_square_or_boom, range(6), jobs=3, chunk_size=1)


class TestRunnerWarmPath:
    def _runner(self, **kw):
        from repro.benchsuite import ALL_BENCHMARKS, MICRO
        from repro.benchsuite.runner import ParallelSuiteRunner

        small = [b for b in ALL_BENCHMARKS if b.group == MICRO][:4]
        return ParallelSuiteRunner(small, **kw)

    def test_selection_rules(self):
        pending = ["a", "b", "c"]
        assert self._runner(jobs=4, backend="auto")._use_warm_pool(pending)
        assert not self._runner(jobs=1, backend="auto")._use_warm_pool(pending)
        assert not self._runner(jobs=4, backend="thread")._use_warm_pool(pending)
        assert not self._runner(jobs=4, backend="serial")._use_warm_pool(pending)
        assert not self._runner(
            jobs=4, backend="auto", task_timeout=5.0
        )._use_warm_pool(pending)
        assert not self._runner(
            jobs=4, backend="auto", warm=False
        )._use_warm_pool(pending)
        assert not self._runner(jobs=4, backend="auto")._use_warm_pool(["a"])

    def test_warm_run_matches_serial_digests(self):
        serial = self._runner(jobs=1, backend="serial").run()
        warm = self._runner(jobs=4, backend="auto").run()
        assert [r.digest for r in warm] == [r.digest for r in serial]
        assert [r.name for r in warm] == [r.name for r in serial]
