"""Content fingerprints: canonicity, isomorphism-invariance, stability."""

from repro.automata.dfa import DFA
from repro.perf.fingerprint import (
    cfg_fingerprint,
    dfa_canonical,
    dfa_fingerprint,
    trail_fingerprint,
)
from repro.trails import Trail
from tests.helpers import BRANCHY, COUNT_LOOP, compile_one


def _chain_dfa(order):
    """An a-b chain DFA whose three states are numbered per ``order``."""
    s0, s1, s2 = order
    return DFA(
        num_states=3,
        initial=s0,
        accepting={s2},
        transitions={(s0, "a"): s1, (s1, "b"): s2},
        alphabet=frozenset({"a", "b"}),
    )


class TestDfaFingerprint:
    def test_isomorphic_renumberings_agree(self):
        base = dfa_fingerprint(_chain_dfa((0, 1, 2)))
        assert dfa_fingerprint(_chain_dfa((2, 0, 1))) == base
        assert dfa_fingerprint(_chain_dfa((1, 2, 0))) == base

    def test_different_language_differs(self):
        chain = _chain_dfa((0, 1, 2))
        other = DFA(
            num_states=3,
            initial=0,
            accepting={2},
            transitions={(0, "b"): 1, (1, "a"): 2},
            alphabet=frozenset({"a", "b"}),
        )
        assert dfa_fingerprint(chain) != dfa_fingerprint(other)

    def test_accepting_set_matters(self):
        accepting_mid = DFA(
            num_states=3,
            initial=0,
            accepting={1},
            transitions={(0, "a"): 1, (1, "b"): 2},
            alphabet=frozenset({"a", "b"}),
        )
        assert dfa_fingerprint(accepting_mid) != dfa_fingerprint(_chain_dfa((0, 1, 2)))

    def test_canonical_ignores_unreachable_states(self):
        reachable = _chain_dfa((0, 1, 2))
        padded = DFA(
            num_states=5,
            initial=0,
            accepting={2},
            transitions={(0, "a"): 1, (1, "b"): 2, (3, "a"): 4},
            alphabet=frozenset({"a", "b"}),
        )
        assert dfa_canonical(padded) == dfa_canonical(reachable)


class TestCfgFingerprint:
    def test_deterministic_across_compilations(self):
        a = compile_one(COUNT_LOOP, "count")
        b = compile_one(COUNT_LOOP, "count")
        assert a is not b
        assert cfg_fingerprint(a) == cfg_fingerprint(b)

    def test_different_programs_differ(self):
        a = compile_one(COUNT_LOOP, "count")
        b = compile_one(BRANCHY, "branchy")
        assert cfg_fingerprint(a) != cfg_fingerprint(b)

    def test_memoized_on_cfg(self):
        cfg = compile_one(COUNT_LOOP, "count")
        assert cfg_fingerprint(cfg) is cfg_fingerprint(cfg)


class TestTrailFingerprint:
    def test_language_keyed_not_description_keyed(self):
        cfg = compile_one(COUNT_LOOP, "count")
        a = Trail.most_general(cfg)
        b = Trail(cfg=cfg, dfa=a.dfa, description="same language, other label")
        assert trail_fingerprint(a) == trail_fingerprint(b)

    def test_trail_method_matches_free_function(self):
        cfg = compile_one(COUNT_LOOP, "count")
        trail = Trail.most_general(cfg)
        assert trail.fingerprint() == trail_fingerprint(trail)

    def test_hashable_and_consistent_with_eq(self):
        cfg = compile_one(COUNT_LOOP, "count")
        a = Trail.most_general(cfg)
        b = Trail.most_general(cfg)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
