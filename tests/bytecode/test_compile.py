"""Compiler unit tests: AST to stack bytecode."""

import pytest

from repro.bytecode import Opcode, compile_program, disassemble, verify_module
from repro.lang import frontend
from tests.helpers import compile_to_module


def ops(source, proc):
    module = compile_to_module(source)
    return [i.op for i in module.code(proc).instrs]


class TestStraightLine:
    def test_constant_and_store(self):
        sequence = ops("proc f() { var a: int = 7; }", "f")
        assert sequence[:2] == [Opcode.PUSH, Opcode.STORE]

    def test_default_initialization(self):
        module = compile_to_module("proc f() { var a: int; var b: byte[]; }")
        instrs = module.code("f").instrs
        assert instrs[0].op is Opcode.PUSH and instrs[0].arg == 0
        assert instrs[2].op is Opcode.PUSH_NULL

    def test_arith_postfix_order(self):
        sequence = ops("proc f(x: int) { var a: int = x * 2 + 1; }", "f")
        assert sequence[:5] == [
            Opcode.LOAD,
            Opcode.PUSH,
            Opcode.MUL,
            Opcode.PUSH,
            Opcode.ADD,
        ]

    def test_string_literal_constant(self):
        module = compile_to_module('proc f() { var s: byte[] = "ab"; }')
        push = module.code("f").instrs[0]
        assert push.op is Opcode.PUSH and push.arg == (97, 98)

    def test_discarded_call_result_popped(self):
        sequence = ops(
            "proc g(): int { return 1; } proc f() { g(); }", "f"
        )
        assert sequence == [Opcode.INVOKE, Opcode.POP, Opcode.RET]


class TestControlFlow:
    def test_every_compiled_module_verifies(self):
        module = compile_to_module(
            """
            proc f(secret h: int, public l: uint): int {
                var acc: int = 0;
                for (var i: int = 0; i < l; i = i + 1) {
                    if (h > 0 && i < 10) { acc = acc + 1; }
                    else { acc = acc + 2; }
                    if (acc > 100) { break; }
                    if (acc == 50) { continue; }
                    acc = acc + i;
                }
                while (acc > 0 || h < 0) { acc = acc - 1; }
                return acc;
            }
            """
        )
        verify_module(module)  # should not raise

    def test_branch_targets_resolved(self):
        module = compile_to_module("proc f(x: int) { if (x > 0) { x = 1; } }")
        code = module.code("f")
        for pc, target in code.jump_targets():
            assert 0 <= target < len(code.instrs)

    def test_while_backedge(self):
        module = compile_to_module("proc f(x: int) { while (x > 0) { x = x - 1; } }")
        code = module.code("f")
        backward = [(pc, t) for pc, t in code.jump_targets() if t <= pc]
        assert backward, "a while loop must produce a backward jump"

    def test_continue_jumps_to_update(self):
        source = """
        proc f(n: int) {
            var s: int = 0;
            for (var i: int = 0; i < n; i = i + 1) {
                if (i == 2) { continue; }
                s = s + 1;
            }
        }
        """
        module = compile_to_module(source)
        verify_module(module)

    def test_short_circuit_and_emits_branches(self):
        sequence = ops("proc f(a: bool, b: bool): bool { return a && b; }", "f")
        assert Opcode.IFZ in sequence
        assert sequence.count(Opcode.RETVAL) == 1

    def test_short_circuit_or_emits_branches(self):
        sequence = ops("proc f(a: bool, b: bool): bool { return a || b; }", "f")
        assert Opcode.IFNZ in sequence


class TestCallsAndReturns:
    def test_void_proc_gets_implicit_ret(self):
        sequence = ops("proc f() { }", "f")
        assert sequence == [Opcode.RET]

    def test_invoke_metadata(self):
        module = compile_to_module(
            "extern md5(p: byte[]): byte[];\n"
            'proc f() { var h: byte[] = md5("x"); }'
        )
        invoke = next(
            i for i in module.code("f").instrs if i.op is Opcode.INVOKE
        )
        assert invoke.callee == "md5"
        assert invoke.argc == 1
        assert invoke.has_result

    def test_slot_names_preserved(self):
        module = compile_to_module("proc f(alpha: int) { var beta: int = alpha; }")
        code = module.code("f")
        assert code.slot_name(0) == "alpha"
        assert code.slot_name(1) == "beta"

    def test_disassembly_mentions_names(self):
        module = compile_to_module("proc f(alpha: int) { var beta: int = alpha; }")
        text = disassemble(module.code("f"))
        assert "alpha" in text and "beta" in text


class TestScoping:
    def test_sibling_scopes_can_reuse_names(self):
        module = compile_to_module(
            """
            proc f(c: bool) {
                if (c) { var t: int = 1; } else { var t: int = 2; }
            }
            """
        )
        verify_module(module)
        # Two distinct slots named t (no reuse).
        slots = [v.name for v in module.code("f").locals]
        assert slots.count("t") == 2
