"""Disassembler output tests."""

from repro.bytecode import disassemble
from tests.helpers import compile_to_module


def test_listing_structure():
    module = compile_to_module(
        "proc f(secret h: int, public l: uint): int {"
        " var i: int = 0; while (i < l) { i = i + 1; } return i; }"
    )
    text = disassemble(module.code("f"))
    lines = text.splitlines()
    assert lines[0].startswith("code f(")
    assert "secret h: int" in lines[0]
    # Jump targets are labeled and referenced symmetrically.
    labels = {l.split(":")[0].strip() for l in lines[1:] if ":" in l.split()[0]}
    refs = {tok for l in lines for tok in l.split() if tok.startswith("L") and tok[1:].isdigit()}
    for ref in refs:
        assert ref + ":" in text or ref in labels

def test_slot_comments():
    module = compile_to_module("proc f(alpha: int): int { return alpha; }")
    assert "; alpha" in disassemble(module.code("f"))
