"""Verifier unit tests: hand-corrupted code objects must be rejected."""

import pytest

from repro.bytecode import CodeObject, Instr, LocalVar, Opcode, verify_code
from repro.lang import ast
from repro.util.errors import VerifyError
from tests.helpers import compile_to_module


def make_code(instrs, params=(), ret=ast.VOID, locals_=()):
    return CodeObject(
        name="t",
        params=list(params),
        ret=ret,
        instrs=list(instrs),
        locals=list(locals_),
    )


INT_PARAM = LocalVar(0, "x", ast.INT, is_param=True, level=ast.SecLevel.PUBLIC)
ARR_PARAM = LocalVar(0, "a", ast.INT_ARRAY, is_param=True, level=ast.SecLevel.PUBLIC)


class TestAccepts:
    def test_minimal_void_return(self):
        verify_code(make_code([Instr(Opcode.RET)]))

    def test_push_pop_balance(self):
        verify_code(
            make_code([Instr(Opcode.PUSH, 1), Instr(Opcode.POP), Instr(Opcode.RET)])
        )

    def test_value_return(self):
        verify_code(
            make_code([Instr(Opcode.PUSH, 1), Instr(Opcode.RETVAL)], ret=ast.INT)
        )

    def test_branch_merge_consistent(self):
        # if (x) push 1 else push 2; pop; ret — stack heights agree.
        code = make_code(
            [
                Instr(Opcode.LOAD, 0),
                Instr(Opcode.IFZ, 4),
                Instr(Opcode.PUSH, 1),
                Instr(Opcode.GOTO, 5),
                Instr(Opcode.PUSH, 2),
                Instr(Opcode.POP),
                Instr(Opcode.RET),
            ],
            params=[INT_PARAM],
        )
        verify_code(code)

    def test_compiled_suite_verifies(self):
        compile_to_module(
            """
            proc f(a: byte[], n: int): int {
                var s: int = 0;
                for (var i: int = 0; i < n && i < len(a); i = i + 1) {
                    s = s + a[i];
                }
                return s;
            }
            """
        )


class TestRejects:
    def _reject(self, code):
        with pytest.raises(VerifyError):
            verify_code(code)

    def test_empty_stream(self):
        self._reject(make_code([]))

    def test_falls_off_end(self):
        self._reject(make_code([Instr(Opcode.PUSH, 1)]))

    def test_bad_jump_target(self):
        self._reject(make_code([Instr(Opcode.GOTO, 99), Instr(Opcode.RET)]))

    def test_stack_underflow(self):
        self._reject(make_code([Instr(Opcode.POP), Instr(Opcode.RET)]))

    def test_inconsistent_merge_heights(self):
        # One path pushes a value, the other does not.
        code = make_code(
            [
                Instr(Opcode.LOAD, 0),
                Instr(Opcode.IFZ, 3),
                Instr(Opcode.PUSH, 1),
                Instr(Opcode.RET),
            ],
            params=[INT_PARAM],
        )
        self._reject(code)

    def test_bad_slot_index(self):
        self._reject(make_code([Instr(Opcode.LOAD, 3), Instr(Opcode.RET)]))

    def test_value_left_on_stack_at_ret(self):
        self._reject(make_code([Instr(Opcode.PUSH, 1), Instr(Opcode.RET)]))

    def test_retval_from_void(self):
        self._reject(make_code([Instr(Opcode.PUSH, 1), Instr(Opcode.RETVAL)]))

    def test_ret_from_nonvoid(self):
        self._reject(make_code([Instr(Opcode.RET)], ret=ast.INT))

    def test_aload_on_int(self):
        code = make_code(
            [
                Instr(Opcode.LOAD, 0),
                Instr(Opcode.PUSH, 0),
                Instr(Opcode.ALOAD),
                Instr(Opcode.POP),
                Instr(Opcode.RET),
            ],
            params=[INT_PARAM],
        )
        self._reject(code)

    def test_arith_on_ref(self):
        code = make_code(
            [
                Instr(Opcode.LOAD, 0),
                Instr(Opcode.PUSH, 1),
                Instr(Opcode.ADD),
                Instr(Opcode.POP),
                Instr(Opcode.RET),
            ],
            params=[ARR_PARAM],
        )
        self._reject(code)

    def test_ordered_compare_on_refs(self):
        code = make_code(
            [
                Instr(Opcode.LOAD, 0),
                Instr(Opcode.LOAD, 0),
                Instr(Opcode.CMPLT),
                Instr(Opcode.POP),
                Instr(Opcode.RET),
            ],
            params=[ARR_PARAM],
        )
        self._reject(code)

    def test_equality_int_vs_ref(self):
        code = make_code(
            [
                Instr(Opcode.LOAD, 0),
                Instr(Opcode.PUSH, 1),
                Instr(Opcode.CMPEQ),
                Instr(Opcode.POP),
                Instr(Opcode.RET),
            ],
            params=[ARR_PARAM],
        )
        self._reject(code)

    def test_ref_null_equality_allowed(self):
        code = make_code(
            [
                Instr(Opcode.LOAD, 0),
                Instr(Opcode.PUSH_NULL),
                Instr(Opcode.CMPEQ),
                Instr(Opcode.POP),
                Instr(Opcode.RET),
            ],
            params=[ARR_PARAM],
        )
        verify_code(code)  # should pass
