"""Lifter unit tests: bytecode to register IR."""

import pytest

from repro.bytecode import Opcode, compile_program, verify_module
from repro.ir import instr as ir
from repro.ir import lift_code
from repro.lang import frontend
from tests.helpers import compile_one, compile_to_cfgs, compile_to_module


class TestWeights:
    def test_weights_sum_to_bytecode_length(self):
        """Every bytecode instruction's unit cost lands in exactly one IR
        instruction, so the block-cost sum equals the bytecode length."""
        source = """
        proc f(secret h: int, public l: uint): int {
            var acc: int = 0;
            for (var i: int = 0; i < l; i = i + 1) {
                if (h > 0 && i < 10) { acc = acc + 1; } else { acc = acc - 1; }
            }
            return acc;
        }
        """
        module = compile_to_module(source)
        cfg = lift_code(module.code("f"), module)
        total = sum(block.cost for block in cfg.blocks.values())
        assert total == len(module.code("f").instrs)

    def test_exit_block_costs_nothing(self):
        cfg = compile_one("proc f() { }", "f")
        assert cfg.blocks[cfg.exit_id].cost == 0


class TestStructure:
    def test_branch_blocks_have_two_successors(self):
        cfg = compile_one(
            "proc f(x: int): int { if (x > 0) { return 1; } return 2; }", "f"
        )
        for bid in cfg.branch_blocks():
            assert len(cfg.successors(bid)) == 2

    def test_returns_edge_to_exit(self):
        cfg = compile_one(
            "proc f(x: int): int { if (x > 0) { return 1; } return 2; }", "f"
        )
        reachable = set(cfg.reverse_postorder())
        preds = [p for p in cfg.predecessors(cfg.exit_id) if p in reachable]
        assert len(preds) == 2

    def test_local_names_survive(self):
        cfg = compile_one("proc f(alpha: int) { var beta: int = alpha + 1; }", "f")
        names = {
            instr.dst.name
            for _, instr in cfg.iter_instrs()
            if instr.defs()
        }
        assert "beta" in names

    def test_reg_kinds_classify_arrays(self):
        cfg = compile_one("proc f(a: byte[], n: int) { var b: byte[] = a; }", "f")
        assert cfg.reg_kinds["a"] == "arr"
        assert cfg.reg_kinds["b"] == "arr"
        assert cfg.reg_kinds["n"] == "int"

    def test_short_circuit_produces_stack_registers(self):
        cfg = compile_one(
            "proc f(a: bool, b: bool): bool { return a && b; }", "f"
        )
        regs = set()
        for _, instr in cfg.iter_instrs():
            regs.update(r.name for r in instr.defs())
        assert any(r.startswith("s") for r in regs), regs


class TestSemanticssPreserved:
    def test_stale_stack_value_not_clobbered_by_store(self):
        """A LOAD x pushed on the stack must keep its value across a
        subsequent STORE x (the lifter materializes a temp)."""
        from repro.bytecode import CodeObject, Instr, LocalVar
        from repro.interp import Interpreter
        from repro.lang import ast

        code = CodeObject(
            name="t",
            params=[LocalVar(0, "x", ast.INT, True, ast.SecLevel.PUBLIC)],
            ret=ast.INT,
            instrs=[
                Instr(Opcode.LOAD, 0),  # push old x
                Instr(Opcode.PUSH, 99),
                Instr(Opcode.STORE, 0),  # x = 99
                Instr(Opcode.RETVAL),  # must return the OLD x
            ],
        )
        cfg = lift_code(code)
        result = Interpreter({"t": cfg}).run("t", [7])
        assert result.result == 7

    def test_dup_semantics(self):
        from repro.bytecode import CodeObject, Instr, LocalVar
        from repro.interp import Interpreter
        from repro.lang import ast

        code = CodeObject(
            name="t",
            params=[LocalVar(0, "x", ast.INT, True, ast.SecLevel.PUBLIC)],
            ret=ast.INT,
            instrs=[
                Instr(Opcode.LOAD, 0),
                Instr(Opcode.DUP),
                Instr(Opcode.ADD),  # x + x
                Instr(Opcode.RETVAL),
            ],
        )
        cfg = lift_code(code)
        assert Interpreter({"t": cfg}).run("t", [21]).result == 42

    def test_unreachable_code_tolerated(self):
        # The compiler appends a dead RET after fully-returning bodies.
        cfg = compile_one(
            "proc f(x: int): int { if (x > 0) { return 1; } else { return 2; } }",
            "f",
        )
        assert cfg.exit_id in cfg.blocks


class TestCrossBlockStack:
    def test_and_or_chain_evaluates_correctly(self):
        from repro.interp import Interpreter

        cfgs = compile_to_cfgs(
            """
            proc f(a: int, b: int, c: int): bool {
                return a > 0 && (b > 0 || c > 0);
            }
            """
        )
        interp = Interpreter(cfgs)
        cases = [
            ((1, 1, 0), 1),
            ((1, 0, 1), 1),
            ((1, 0, 0), 0),
            ((0, 1, 1), 0),
        ]
        for args, expected in cases:
            assert interp.run("f", list(args)).result == expected, args
