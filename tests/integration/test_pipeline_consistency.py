"""Cross-cutting consistency checks over the whole benchmark suite.

These tie the layers together: for every benchmark program, the
concrete traces must live inside the most general trail, the partition
each verdict produces must cover them, and the cost model must be
consistent between the interpreter and the static bounds.
"""

import pytest

from repro.benchsuite import ALL_BENCHMARKS
from repro.bounds import compute_bound, compute_proc_bounds, default_summaries
from repro.bytecode import compile_program, verify_module
from repro.domains import DOMAINS
from repro.interp import Interpreter
from repro.ir import lift_module
from repro.lang import frontend
from repro.trails import Trail

ZONE = DOMAINS["zone"]

WITH_SPACE = [b for b in ALL_BENCHMARKS if b.witness_space is not None]


def _pipeline(bench):
    module = compile_program(frontend(bench.source))
    verify_module(module)
    cfgs = lift_module(module)
    return cfgs, Interpreter(cfgs, fuel=10_000_000)


@pytest.mark.parametrize("bench", WITH_SPACE, ids=lambda b: b.name)
def test_traces_within_most_general_trail(bench):
    from repro.core.witness import enumerate_inputs

    cfgs, interp = _pipeline(bench)
    trail = Trail.most_general(cfgs[bench.proc])
    for args in enumerate_inputs(cfgs[bench.proc], bench.witness_space, limit=6):
        trace = interp.run(bench.proc, args)
        assert trail.accepts(trace.edges), args


@pytest.mark.parametrize("bench", WITH_SPACE, ids=lambda b: b.name)
def test_static_bounds_contain_benchmark_times(bench):
    """The whole-program bound must contain every concrete run of the
    registered input space — the interpreter and the bound analysis
    share one cost model to the instruction."""
    from repro.absint.transfer import len_var
    from repro.core.witness import enumerate_inputs

    cfgs, interp = _pipeline(bench)
    cfg = cfgs[bench.proc]
    proc_bounds = compute_proc_bounds(cfgs, ZONE, default_summaries())
    result = compute_bound(cfg, ZONE, default_summaries(), proc_bounds=proc_bounds)
    assert result.feasible
    for args in enumerate_inputs(cfg, bench.witness_space, limit=6):
        trace = interp.run(bench.proc, args)
        env = {}
        for param in cfg.params:
            value = args[param.name]
            if param.declared.is_array:
                env[len_var(param.name)] = len(value)
            else:
                env[param.name] = int(value)
        lo, hi = result.bound.evaluate(env)
        assert lo <= trace.time, (bench.name, args, trace.time, lo)
        if hi is not None:
            assert trace.time <= hi, (bench.name, args, trace.time, hi)
