"""Integration: every Table-1 benchmark must reproduce its verdict.

Safe benchmarks must verify SAFE; unsafe ones must yield an attack
specification.  Verdicts are computed once per module (the full suite
takes about a minute, dominated by modPow2_unsafe — the same outlier as
in the paper).
"""

import pytest

from repro.benchsuite import ALL_BENCHMARKS, EXTRA_BENCHMARKS, SUITE

_VERDICTS = {}


def verdict_of(bench):
    if bench.name not in _VERDICTS:
        _VERDICTS[bench.name] = bench.run()
    return _VERDICTS[bench.name]


FAST = [b for b in ALL_BENCHMARKS if b.name not in ("modPow2_unsafe",)]
SLOW = [b for b in ALL_BENCHMARKS if b.name in ("modPow2_unsafe",)]


@pytest.mark.parametrize("bench", FAST, ids=lambda b: b.name)
def test_verdict_matches_table1(bench):
    verdict = verdict_of(bench)
    assert verdict.status == bench.expect, verdict.render()


@pytest.mark.slow
@pytest.mark.parametrize("bench", SLOW, ids=lambda b: b.name)
def test_verdict_matches_table1_slow(bench):
    verdict = verdict_of(bench)
    assert verdict.status == bench.expect, verdict.render()


@pytest.mark.parametrize(
    "bench", [b for b in FAST if b.expect == "attack"], ids=lambda b: b.name
)
def test_attack_benchmarks_produce_specifications(bench):
    verdict = verdict_of(bench)
    assert verdict.attack is not None
    text = verdict.attack.render()
    assert "attack specification" in text


@pytest.mark.parametrize(
    "bench", [b for b in FAST if b.expect == "safe"], ids=lambda b: b.name
)
def test_safe_benchmarks_partition_covers(bench):
    verdict = verdict_of(bench)
    assert verdict.tree.covers_root()
    # Every leaf is accounted for: safe or infeasible.
    assert all(
        leaf.status in ("safe", "infeasible") for leaf in verdict.tree.leaves()
    ), verdict.render()


def test_attack_search_costs_more_than_safety():
    """Table 1's shape: the w/Attack column strictly exceeds the Safety
    column (it includes it), summed over the unsafe benchmarks."""
    unsafe = [b for b in FAST if b.expect == "attack"]
    safety = sum(verdict_of(b).safety_seconds for b in unsafe)
    total = sum(verdict_of(b).total_seconds for b in unsafe)
    assert total > safety


@pytest.mark.parametrize("bench", EXTRA_BENCHMARKS, ids=lambda b: b.name)
def test_extra_unpaired_benchmark(bench):
    """The paper's 25th program ("except for User", §6.1) — unsafe with
    no safe twin."""
    verdict = verdict_of(bench)
    assert verdict.status == "attack"
    assert verdict.attack is not None


def test_suite_registry_shape():
    assert len(SUITE) == 24
    assert len(SUITE.by_group("MicroBench")) == 12
    assert len(SUITE.by_group("STAC")) == 6
    assert len(SUITE.by_group("Literature")) == 6
    names = SUITE.names()
    assert len(set(names)) == 24
    # Benchmarks come in safe/unsafe pairs (except nosecret/notaint which
    # pair with each other conceptually).
    safe = {n for n in names if n.endswith("_safe")}
    unsafe = {n for n in names if n.endswith("_unsafe")}
    assert len(safe) == 12 and len(unsafe) == 12
