"""Figure 1 reproduction: the loginSafe / loginBad trail trees.

Checks the *structure* the paper's figure shows: the safe version splits
once on taint into an early-exit component and a must-loop component
whose bounds are both narrow and of the form a·g.len + c; the bad
version needs the attack phase, producing sec-split trails whose bounds
differ observably (the early-exit trail vs the full-loop trail).
"""

import pytest

from repro.benchsuite import SUITE


@pytest.fixture(scope="module")
def login_safe_verdict():
    return SUITE.get("login_safe").run()


@pytest.fixture(scope="module")
def login_unsafe_verdict():
    return SUITE.get("login_unsafe").run()


class TestLoginSafe:
    def test_verdict(self, login_safe_verdict):
        assert login_safe_verdict.status == "safe"

    def test_one_taint_split(self, login_safe_verdict):
        leaves = login_safe_verdict.tree.leaves()
        assert len(leaves) == 2
        assert {l.split_kind for l in leaves} == {"taint"}

    def test_early_exit_component_is_constant(self, login_safe_verdict):
        leaves = login_safe_verdict.tree.leaves()
        constant = [l for l in leaves if l.bound.bound.degree() == 0]
        assert len(constant) == 1  # tr1: "may exit on line 5" — [8, 8]-like

    def test_loop_component_linear_in_guess_len(self, login_safe_verdict):
        leaves = login_safe_verdict.tree.leaves()
        linear = [l for l in leaves if l.bound.bound.degree() == 1]
        assert len(linear) == 1  # tr2: must enter the for loop
        bound = linear[0].bound.bound
        assert "guess#len" in bound.symbols()
        # Crucially, the bound must NOT depend on the secret password.
        assert "user_pw#len" not in bound.symbols()

    def test_loop_component_has_exact_linear_lower_bound(self, login_safe_verdict):
        """Fig. 1's tr2: [19·g.len + 10, 23·g.len + 10] — the lower bound
        is linear too (the loop runs exactly g.len times)."""
        leaves = login_safe_verdict.tree.leaves()
        linear = [l for l in leaves if l.bound.bound.degree() == 1][0]
        assert linear.bound.bound.lower_degree() == 1


class TestLoginBad:
    def test_verdict(self, login_unsafe_verdict):
        assert login_unsafe_verdict.status == "attack"

    def test_attack_trails_split_on_sec(self, login_unsafe_verdict):
        attack = login_unsafe_verdict.attack
        assert attack is not None and attack.is_pair
        assert attack.trail_a.splits[-1].kind == "sec"
        assert attack.trail_b.splits[-1].kind == "sec"

    def test_attack_bounds_differ_in_shape(self, login_unsafe_verdict):
        """One trail can run the full loop (linear upper bound), its
        sibling exits early (constant bound) — the observable difference
        of Fig. 1's tr3 vs tr4.  (Our driver may find the distinguishing
        sec split one level earlier than the figure's exact pair; the
        shape criterion is the same.)"""
        attack = login_unsafe_verdict.attack
        a, b = attack.bound_a.bound, attack.bound_b.bound
        differs = (
            a.degree() != b.degree()
            or a.lower_degree() != b.lower_degree()
        )
        assert differs, (str(a), str(b))

    def test_tree_contains_taint_then_sec_levels(self, login_unsafe_verdict):
        kinds_by_depth = {}
        for node in login_unsafe_verdict.tree.all_nodes():
            depth = len(node.trail.splits)
            if node.split_kind:
                kinds_by_depth.setdefault(depth, set()).add(node.split_kind)
        assert kinds_by_depth.get(1) == {"taint"}
        assert "sec" in kinds_by_depth.get(2, set()) | kinds_by_depth.get(3, set())

    def test_render_matches_figure_vocabulary(self, login_unsafe_verdict):
        text = login_unsafe_verdict.render()
        assert "(taint)" in text
        assert "(sec)" in text
        assert "attack specification" in text
