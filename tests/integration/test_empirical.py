"""Empirical validation of the static verdicts with the interpreter.

For safe benchmarks: over the registered input space, low-equivalent
traces must have indistinguishable running times (no witness exists).
For unsafe benchmarks: a concrete witness pair with the registered gap
must exist — validating the attack specification as §2.3 prescribes.
"""

import pytest

from repro.benchsuite import ALL_BENCHMARKS, EXTRA_BENCHMARKS
from repro.core.witness import find_witness, max_gap_per_low, run_all
from repro.interp import Interpreter
from repro.lang import frontend
from repro.bytecode import compile_program, verify_module
from repro.ir import lift_module

# Benchmarks with huge enumerated spaces or no finite witness space are
# covered by targeted tests below instead.
WITH_SPACE = [
    b for b in ALL_BENCHMARKS + EXTRA_BENCHMARKS if b.witness_space is not None
]
SAFE_WITH_SPACE = [b for b in WITH_SPACE if b.expect == "safe"]
UNSAFE_WITH_SPACE = [b for b in WITH_SPACE if b.expect == "attack"]


def _interp_and_cfg(bench):
    module = compile_program(frontend(bench.source))
    verify_module(module)
    cfgs = lift_module(module)
    return Interpreter(cfgs), cfgs[bench.proc]


@pytest.mark.parametrize("bench", UNSAFE_WITH_SPACE, ids=lambda b: b.name)
def test_unsafe_has_concrete_witness(bench):
    interp, cfg = _interp_and_cfg(bench)
    witness = find_witness(
        interp, cfg, gap=bench.witness_gap, overrides=bench.witness_space
    )
    assert witness is not None, "no timing witness for %s" % bench.name
    assert witness.trace_a.low_equivalent(witness.trace_b)
    assert witness.gap >= bench.witness_gap


def _observer_slack(bench):
    """The attacker-observability limit for this benchmark's family:
    the concrete threshold (25k) for STAC/Literature, epsilon for the
    degree observer."""
    observer = bench.observer_factory()
    return getattr(observer, "threshold", None) or observer.epsilon


@pytest.mark.parametrize("bench", SAFE_WITH_SPACE, ids=lambda b: b.name)
def test_safe_has_no_large_gap(bench):
    interp, cfg = _interp_and_cfg(bench)
    traces = run_all(interp, cfg, overrides=bench.witness_space)
    assert traces, "input space produced no traces"
    gap = max_gap_per_low(traces)
    assert gap < _observer_slack(bench), (
        "safe benchmark %s shows an empirical gap of %d" % (bench.name, gap)
    )


@pytest.mark.parametrize(
    "bench",
    [b for b in ALL_BENCHMARKS if b.expect == "safe" and b.witness_space is None],
    ids=lambda b: b.name,
)
def test_safe_without_space_uses_default_enumeration(bench):
    interp, cfg = _interp_and_cfg(bench)
    traces = run_all(interp, cfg, limit=512)
    assert traces
    gap = max_gap_per_low(traces)
    assert gap <= 32  # the micro observer's epsilon


def test_witness_respects_attack_trails():
    """The witness finder can be restricted to the attack's two trails."""
    from repro.benchsuite import SUITE

    bench = SUITE.get("sanity_unsafe")
    verdict = bench.run()
    assert verdict.attack is not None and verdict.attack.is_pair
    interp, cfg = _interp_and_cfg(bench)
    witness = find_witness(
        interp,
        cfg,
        gap=bench.witness_gap,
        spec=verdict.attack,
        overrides=bench.witness_space,
    )
    assert witness is not None
    follows = (
        verdict.attack.trail_a.accepts(witness.trace_a.edges)
        and verdict.attack.trail_b.accepts(witness.trace_b.edges)
    ) or (
        verdict.attack.trail_a.accepts(witness.trace_b.edges)
        and verdict.attack.trail_b.accepts(witness.trace_a.edges)
    )
    assert follows
