"""Regression gate: the perf layer must never change an analysis.

Every registry benchmark is run twice — perf layer off (the seed
engine) and on (memoized + fast paths) — and the two verdicts must have
identical content digests: status, bounds, partition shape, and attack
specification all bit-stable.  This is the test that licenses every
cache in ``repro.perf``.
"""

import pytest

from repro.benchsuite import ALL_BENCHMARKS
from repro.core.report import verdict_digest
from repro.perf import runtime

FAST = [b for b in ALL_BENCHMARKS if b.name != "modPow2_unsafe"]
SLOW = [b for b in ALL_BENCHMARKS if b.name == "modPow2_unsafe"]


def _both_verdicts(bench):
    with runtime.override(False):
        plain = bench.run()
    with runtime.override(True):
        runtime.clear_caches()
        cached = bench.run()
    return plain, cached


def _check(bench):
    plain, cached = _both_verdicts(bench)
    assert cached.status == bench.expect
    assert verdict_digest(plain) == verdict_digest(cached)
    # The seed engine reports no cache traffic; the perf layer must
    # report its counters on the verdict.
    assert plain.cache_hits == 0 and plain.cache_misses == 0
    assert cached.cache_hits + cached.cache_misses > 0
    if len(cached.tree.leaves()) > 1:
        # Acceptance criterion: every benchmark that performs at least
        # one refinement split must observe cache hits.
        assert cached.cache_hits > 0


@pytest.mark.parametrize("bench", FAST, ids=lambda b: b.name)
def test_cache_equivalence(bench):
    _check(bench)


@pytest.mark.parametrize("bench", FAST, ids=lambda b: b.name)
def test_generous_budget_is_off_path(bench):
    """The resilience layer's off-path gate: a budget generous enough to
    never trip must leave the analysis byte-identical to the seed —
    checkpoints may only observe, never perturb."""
    from repro.resilience.budget import Budget

    with runtime.override(False):
        plain = bench.run()
        budgeted = bench.run(
            budget=Budget(
                wall_seconds=3600.0, max_refinements=10**9, max_steps=10**12
            )
        )
    assert not budgeted.degraded
    assert verdict_digest(plain) == verdict_digest(budgeted)


@pytest.mark.slow
@pytest.mark.parametrize("bench", SLOW, ids=lambda b: b.name)
def test_cache_equivalence_outlier(bench):
    _check(bench)
