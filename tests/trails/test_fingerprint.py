"""Trail identity under refinement: the cache-key guarantees.

The property the bound cache relies on: splitting one leaf of a
partition must not change the fingerprint of any *untouched sibling* —
their languages are unchanged, so their cached bounds stay valid.
"""

from repro.taint import analyze_taint
from repro.trails import PartitionTree, Trail, split_trail
from tests.helpers import compile_one

NESTED = """
proc nested(secret high: int, public low: int): int {
    var x: int = 0;
    if (low > 0) {
        if (high > 0) { x = 1; } else { x = 2; }
    } else {
        if (low > -10) { x = 3; } else { x = 4; }
    }
    return x;
}
"""


def _tree_with_first_split(cfg, kind="taint"):
    taint = analyze_taint(cfg)
    tree = PartitionTree(Trail.most_general(cfg))
    blocks = taint.low_branches() if kind == "taint" else taint.high_branches()
    block = sorted(blocks)[0]
    children = split_trail(tree.root.trail, block, kind)
    assert children, "expected the split to produce components"
    for child in children:
        tree.root.add_child(child)
    return tree, taint


class TestSplitInvariance:
    def test_untouched_sibling_keeps_fingerprint(self):
        cfg = compile_one(NESTED, "nested")
        tree, taint = _tree_with_first_split(cfg)
        leaves = tree.leaves()
        assert len(leaves) >= 2
        fingerprints = {id(l): l.fingerprint() for l in leaves}

        # Split the first leaf again on a different branch; its siblings
        # must keep their identity (and therefore their cached bounds).
        target = leaves[0]
        remaining = [
            b
            for b in taint.low_branches()
            if b not in target.trail.split_blocks()
        ]
        split_done = False
        for block in sorted(remaining):
            children = split_trail(target.trail, block, "taint")
            if children:
                for child in children:
                    target.add_child(child)
                split_done = True
                break
        assert split_done, "expected a second refinement to be possible"

        for sibling in leaves[1:]:
            assert sibling.fingerprint() == fingerprints[id(sibling)]
            assert sibling in tree.leaves()  # still an active component

    def test_split_children_differ_from_parent_and_each_other(self):
        cfg = compile_one(NESTED, "nested")
        tree, _ = _tree_with_first_split(cfg)
        root_fp = tree.root.fingerprint()
        child_fps = [c.fingerprint() for c in tree.root.children]
        assert len(set(child_fps)) == len(child_fps)
        assert all(fp != root_fp for fp in child_fps)

    def test_fingerprint_ignores_provenance_route(self):
        """Two components with equal languages share a fingerprint even
        when their provenance chains differ (description/splits are
        excluded by design)."""
        cfg = compile_one(NESTED, "nested")
        trail = Trail.most_general(cfg)
        relabeled = Trail(
            cfg=cfg, dfa=trail.dfa, description="another provenance route"
        )
        assert trail.fingerprint() == relabeled.fingerprint()
        assert hash(trail) == hash(relabeled)

    def test_fingerprint_stable_across_recompilation(self):
        a = Trail.most_general(compile_one(NESTED, "nested"))
        b = Trail.most_general(compile_one(NESTED, "nested"))
        assert a.fingerprint() == b.fingerprint()
