"""RegexNodeSplit strategy tests (§4.3's constructor-level splitting)."""

from repro.core import BlazerConfig, analyze_source
from repro.taint import analyze_taint
from repro.trails import OccurrenceSplit, RegexNodeSplit, Trail, verify_cover
from tests.helpers import compile_one

EX2 = """
proc bar(secret high: int, public low: int) {
    var i: int = 0;
    if (low > 0) {
        while (i < low) { i = i + 1; }
    } else {
        if (high == 0) { i = 5; } else { i = 7; }
    }
}
"""


class TestRegexNodeSplit:
    def setup_method(self):
        self.cfg = compile_one(EX2, "bar")
        self.taint = analyze_taint(self.cfg)
        self.trail = Trail.most_general(self.cfg)
        self.strategy = RegexNodeSplit()

    def test_union_split_covers(self):
        branch = self.taint.low_branches()[0]
        parts = self.strategy.split(self.trail, branch, "taint")
        assert len(parts) == 2
        assert verify_cover(self.trail, parts)

    def test_star_split_covers(self):
        loop_branch = self.taint.low_branches()[1]
        parts = self.strategy.split(self.trail, loop_branch, "taint")
        assert len(parts) == 2
        assert verify_cover(self.trail, parts)
        descriptions = {p.description for p in parts}
        assert any("skips the loop" in d for d in descriptions)
        assert any("iterates the loop" in d for d in descriptions)

    def test_components_within_parent(self):
        branch = self.taint.low_branches()[0]
        for part in self.strategy.split(self.trail, branch, "taint"):
            assert self.trail.includes(part)

    def test_star_split_semantics(self):
        """The 'skips' component excludes looping traces and vice versa."""
        from repro.interp import Interpreter
        from tests.helpers import compile_to_cfgs

        cfgs = compile_to_cfgs(EX2)
        interp = Interpreter(cfgs)
        loop_branch = self.taint.low_branches()[1]
        parts = self.strategy.split(self.trail, loop_branch, "taint")
        skip = next(p for p in parts if "skips" in p.description)
        iterate = next(p for p in parts if "iterates" in p.description)
        looping = interp.run("bar", {"high": 0, "low": 3})
        nonloop = interp.run("bar", {"high": 0, "low": -1})
        assert iterate.accepts(looping.edges)
        assert not skip.accepts(looping.edges)
        # The 'iterates' component keeps the else-branch context, so the
        # non-looping trace through the other alternative stays covered.
        assert skip.accepts(nonloop.edges)

    def test_unannotated_branch_returns_empty(self):
        # A branch block whose edges never surface as one constructor;
        # splitting on the high branch with kind "taint" still works by
        # annotation, so instead probe a non-existent association by
        # using a constant-branch program.
        cfg = compile_one(
            "proc f(secret h: int) { var c: int = 1; if (c > 0) { } }", "f"
        )
        trail = Trail.most_general(cfg)
        branch = cfg.branch_blocks()[0]
        assert RegexNodeSplit().split(trail, branch, "taint") == []


class TestDriverStrategyConfig:
    def test_regex_first_chain_still_verifies(self):
        config = BlazerConfig(strategies=(RegexNodeSplit(), OccurrenceSplit()))
        verdict = analyze_source(EX2, "bar", config)
        assert verdict.status == "safe"
        assert verdict.tree.covers_root()

    def test_default_chain_verifies(self):
        assert analyze_source(EX2, "bar").status == "safe"
