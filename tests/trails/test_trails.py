"""Trails: representation, annotation, refinement, partition trees."""

import pytest

from repro.taint import analyze_taint
from repro.trails import (
    OccurrenceSplit,
    PartitionTree,
    Trail,
    annotate_trail,
    split_trail,
    verify_cover,
)
from repro.util.errors import TrailError
from tests.helpers import BRANCHY, COUNT_LOOP, compile_one

EX2 = """
proc bar(secret high: int, public low: int) {
    var i: int = 0;
    if (low > 0) {
        while (i < low) { i = i + 1; }
    } else {
        if (high == 0) { i = 5; } else { i = 7; }
    }
}
"""


class TestTrail:
    def test_most_general_covers_concrete_traces(self):
        from repro.interp import Interpreter
        from tests.helpers import compile_to_cfgs

        cfgs = compile_to_cfgs(COUNT_LOOP)
        trail = Trail.most_general(cfgs["count"])
        interp = Interpreter(cfgs)
        for n in (0, 1, 5):
            trace = interp.run("count", [n])
            assert trail.accepts(trace.edges)

    def test_regex_rendering(self):
        cfg = compile_one(COUNT_LOOP, "count")
        text = str(Trail.most_general(cfg).regex())
        assert "*" in text  # the loop appears as a star

    def test_includes_reflexive(self):
        cfg = compile_one(COUNT_LOOP, "count")
        trail = Trail.most_general(cfg)
        assert trail.includes(trail)

    def test_split_blocks_provenance(self):
        cfg = compile_one(EX2, "bar")
        trail = Trail.most_general(cfg)
        branch = cfg.branch_blocks()[0]
        child = split_trail(trail, branch, "taint")[0]
        assert child.split_blocks() == frozenset({branch})
        assert child.splits[0].kind == "taint"


class TestSplitting:
    def test_occurrence_split_covers_parent(self):
        cfg = compile_one(EX2, "bar")
        trail = Trail.most_general(cfg)
        for branch in cfg.branch_blocks():
            parts = split_trail(trail, branch, "taint")
            if parts:
                assert verify_cover(trail, parts)

    def test_split_components_subsets_of_parent(self):
        cfg = compile_one(EX2, "bar")
        trail = Trail.most_general(cfg)
        branch = cfg.branch_blocks()[0]
        for child in split_trail(trail, branch, "taint"):
            assert trail.includes(child)

    def test_split_separates_concrete_traces(self):
        from repro.interp import Interpreter
        from tests.helpers import compile_to_cfgs

        cfgs = compile_to_cfgs(EX2)
        cfg = cfgs["bar"]
        trail = Trail.most_general(cfg)
        branch = cfg.branch_blocks()[0]  # the low > 0 branch
        part_a, part_b = split_trail(trail, branch, "taint")
        interp = Interpreter(cfgs)
        pos = interp.run("bar", {"high": 0, "low": 3})
        neg = interp.run("bar", {"high": 0, "low": -1})
        in_a = part_a.accepts(pos.edges)
        assert in_a != part_b.accepts(pos.edges) or True  # may overlap
        # Each trace must be covered by at least one component.
        assert part_a.accepts(pos.edges) or part_b.accepts(pos.edges)
        assert part_a.accepts(neg.edges) or part_b.accepts(neg.edges)
        # And the two traces fall into different components.
        assert part_a.accepts(pos.edges) != part_a.accepts(neg.edges)

    def test_unsplittable_returns_empty(self):
        # Splitting a loop-free diamond twice at the same block makes no
        # progress the second time (children already decide the edge).
        cfg = compile_one(EX2, "bar")
        trail = Trail.most_general(cfg)
        branch = cfg.branch_blocks()[0]
        child = split_trail(trail, branch, "taint")[0]
        assert split_trail(child, branch, "taint") == []

    def test_split_on_non_branch_raises(self):
        cfg = compile_one(EX2, "bar")
        trail = Trail.most_general(cfg)
        with pytest.raises(TrailError):
            split_trail(trail, cfg.exit_id, "taint")


class TestAnnotation:
    def test_example2_annotations(self):
        cfg = compile_one(EX2, "bar")
        taint = analyze_taint(cfg)
        annotated = annotate_trail(Trail.most_general(cfg).regex(), cfg, taint)
        rendered = annotated.render()
        assert "|_l" in rendered or "*_l" in rendered
        # The high if sits inside: some constructor carries an h.
        assert "_h" in rendered.replace("_l,h", "_#") or "_l,h" in rendered

    def test_annotated_nodes_listed(self):
        cfg = compile_one(EX2, "bar")
        taint = analyze_taint(cfg)
        annotated = annotate_trail(Trail.most_general(cfg).regex(), cfg, taint)
        nodes = annotated.annotated_nodes()
        assert nodes, "expected at least one annotated constructor"

    def test_no_taint_no_annotations(self):
        cfg = compile_one("proc f(x: int) { if (x > 0) { } }", "f")

        class FakeTaint:
            def taint_of_branch(self, b):
                return frozenset()

        # All branches untainted -> no annotations.
        from repro.taint.analysis import TaintResult

        taint = TaintResult(cfg=cfg, var_taint={}, branch_taint={})
        annotated = annotate_trail(Trail.most_general(cfg).regex(), cfg, taint)
        assert annotated.annotated_nodes() == []


class TestPartitionTree:
    def test_leaves_and_coverage(self):
        cfg = compile_one(EX2, "bar")
        tree = PartitionTree(Trail.most_general(cfg))
        assert len(tree.leaves()) == 1
        assert tree.covers_root()
        branch = cfg.branch_blocks()[0]
        node = tree.leaves()[0]
        for child in split_trail(node.trail, branch, "taint"):
            node.add_child(child)
        assert len(tree.leaves()) == 2
        assert tree.covers_root()

    def test_render_shows_structure(self):
        cfg = compile_one(EX2, "bar")
        tree = PartitionTree(Trail.most_general(cfg))
        branch = cfg.branch_blocks()[0]
        node = tree.leaves()[0]
        for child in split_trail(node.trail, branch, "taint"):
            node.add_child(child)
        text = tree.render()
        assert "most general trail" in text
        assert "|--" in text and "`--" in text

    def test_ancestors(self):
        cfg = compile_one(EX2, "bar")
        tree = PartitionTree(Trail.most_general(cfg))
        branch = cfg.branch_blocks()[0]
        node = tree.leaves()[0]
        children = [node.add_child(c) for c in split_trail(node.trail, branch, "taint")]
        assert list(children[0].ancestors()) == [tree.root]
