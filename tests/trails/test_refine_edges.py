"""Edge cases of occurrence refinement under the incremental plane.

Three split shapes that stress the delta-directed reuse machinery
(docs/PERFORMANCE.md), each checked incremental-vs-scratch:

* splits **on a loop header** — the perturbed constructor is the loop's
  own branch, so the loop is dirty (no artifact may be served) yet the
  recomputed bound must still equal the from-scratch one;
* splits that **empty a child to bottom** — two occurrence constraints
  on same-condition branches leave a structurally non-empty language no
  concrete path realizes, and both engines must agree on infeasibility;
* **back-to-back splits of the same constructor** — re-splitting a
  child on its already-decided edge must make no progress, and the
  interned split-derivation memo must not serve the parent's derivation
  for the structurally different child.
"""

import pytest

from repro.bounds import compute_bound
from repro.core.report import _bound_dict, verdict_digest
from repro.core.blazer import Blazer, BlazerConfig
from repro.domains import DOMAINS
from repro.perf import runtime
from repro.trails import OccurrenceSplit, Trail
from tests.helpers import compile_one

pytestmark = pytest.mark.incremental

ZONE = DOMAINS["zone"]

# A loop whose header is the only interesting branch, followed by a
# balanced secret branch (so the driver has something to refine).
LOOP_HEADER = """
proc main(secret h: int, public l: uint): int {
    var i: int = 0;
    while (i < l) { i = i + 1; }
    if (h > 0) { i = i + 2; } else { i = i + 2; }
    return i;
}
"""

# Two branches on the same condition: a trail that takes the first
# then-edge but avoids the second one denotes a non-empty edge language
# with no realizable path — the analysis must find it infeasible.
CONTRADICTION = """
proc main(secret h: int, public l: int): int {
    var acc: int = 0;
    if (l > 0) { acc = acc + 1; }
    if (l > 0) { acc = acc + 2; }
    return acc + h - h;
}
"""


@pytest.fixture(autouse=True)
def _cold_tables():
    runtime.clear_caches()
    yield
    runtime.clear_caches()


def _loop_header_block(cfg):
    """The branch block that is also a loop header (the while guard)."""
    for block in cfg.branch_blocks():
        taken, not_taken = cfg.branch_edges(block)
        for edge in (taken, not_taken):
            if edge[1] == block or _reaches_back(cfg, edge[1], block):
                return block
    raise AssertionError("no loop-header branch in CFG")


def _reaches_back(cfg, start, target):
    seen, stack = set(), [start]
    while stack:
        node = stack.pop()
        if node == target:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(dst for (src, dst) in cfg.edges() if src == node)
    return False


def _analyze(cfg, trail, incremental):
    with runtime.override_incremental(incremental):
        return compute_bound(cfg, ZONE, trail_dfa=trail.dfa, trail=trail)


def _assert_equivalent(cfg, children):
    """Each child bound incremental == scratch, on cold scratch tables."""
    incremental = [_analyze(cfg, child, True) for child in children]
    runtime.clear_caches()
    scratch = [_analyze(cfg, child, False) for child in children]
    for inc, scr in zip(incremental, scratch):
        assert inc.feasible == scr.feasible
        assert _bound_dict(inc) == _bound_dict(scr)


class TestLoopHeaderSplit:
    def test_split_on_loop_header_is_equivalent(self):
        cfg = compile_one(LOOP_HEADER, "main")
        trail = Trail.most_general(cfg)
        header = _loop_header_block(cfg)
        children = OccurrenceSplit().split(trail, header, "sec")
        assert children, "expected the loop header to split"
        # Warm the parent's artifacts, then analyze the children: the
        # loop is dirty (the split perturbed its own header), so the
        # plane must mark it instead of serving the parent's fixpoint.
        _analyze(cfg, trail, True)
        before = runtime.STATS.events_snapshot()
        _assert_equivalent(cfg, children)
        dirty = runtime.STATS.events_delta(before).get("refine.dirty", 0)
        assert dirty > 0

    def test_zero_iteration_child_bound(self):
        # The without-edge child never enters the loop: both engines
        # must agree it exists and has the tighter (loop-free) bound.
        cfg = compile_one(LOOP_HEADER, "main")
        trail = Trail.most_general(cfg)
        header = _loop_header_block(cfg)
        taken, not_taken = cfg.branch_edges(header)
        children = OccurrenceSplit().split_on_edge(trail, header, taken, "sec")
        without = next(c for c in children if not c.splits[-1].polarity)
        inc = _analyze(cfg, without, True)
        runtime.clear_caches()
        scr = _analyze(cfg, without, False)
        assert inc.feasible and scr.feasible
        assert _bound_dict(inc) == _bound_dict(scr)


class TestEmptiedChild:
    def test_contradictory_split_is_bottom_both_ways(self):
        cfg = compile_one(CONTRADICTION, "main")
        trail = Trail.most_general(cfg)
        first, second = cfg.branch_blocks()[:2]
        take_first = OccurrenceSplit().split_on_edge(
            trail, first, cfg.branch_edges(first)[0], "taint"
        )
        with_first = next(c for c in take_first if c.splits[-1].polarity)
        avoid_second = OccurrenceSplit().split_on_edge(
            with_first, second, cfg.branch_edges(second)[0], "taint"
        )
        assert avoid_second, "expected the second branch to split"
        bottom = next(c for c in avoid_second if not c.splits[-1].polarity)
        # Structurally non-empty language, semantically no path: bottom.
        assert not bottom.dfa.is_empty()
        inc = _analyze(cfg, bottom, True)
        runtime.clear_caches()
        scr = _analyze(cfg, bottom, False)
        assert inc.feasible is False
        assert scr.feasible is False
        assert _bound_dict(inc) == _bound_dict(scr)

    def test_bottom_child_carries_delta(self):
        cfg = compile_one(CONTRADICTION, "main")
        trail = Trail.most_general(cfg)
        first = cfg.branch_blocks()[0]
        child = OccurrenceSplit().split(trail, first, "taint")[0]
        assert child.delta is not None
        assert child.delta.parent_lineage == trail.lineage_fingerprint()
        assert child.delta.block == first


class TestBackToBackSplits:
    def test_resplitting_decided_edge_makes_no_progress(self):
        cfg = compile_one(LOOP_HEADER, "main")
        trail = Trail.most_general(cfg)
        header = _loop_header_block(cfg)
        taken, _ = cfg.branch_edges(header)
        children = OccurrenceSplit().split_on_edge(trail, header, taken, "sec")
        for child in children:
            again = OccurrenceSplit().split_on_edge(child, header, taken, "sec")
            assert again == []

    def test_no_progress_is_flag_independent(self):
        # The interned refine.split memo must not change refinement
        # decisions: the same no-progress answer with the plane on/off.
        cfg = compile_one(LOOP_HEADER, "main")
        trail = Trail.most_general(cfg)
        header = _loop_header_block(cfg)
        taken, _ = cfg.branch_edges(header)
        with runtime.override_incremental(True):
            child = OccurrenceSplit().split_on_edge(trail, header, taken, "sec")[0]
            assert OccurrenceSplit().split_on_edge(child, header, taken, "sec") == []
        runtime.clear_caches()
        with runtime.override_incremental(False):
            child_off = OccurrenceSplit().split_on_edge(trail, header, taken, "sec")[0]
            assert (
                OccurrenceSplit().split_on_edge(child_off, header, taken, "sec")
                == []
            )
            assert child_off.fingerprint() == child.fingerprint()

    def test_interned_derivation_keyed_by_child_structure(self):
        # Parent and child have different DFA structures, so the memo
        # must hold distinct derivations (no false sharing) — and a
        # repeated parent split must hit the interned entry.
        cfg = compile_one(CONTRADICTION, "main")
        trail = Trail.most_general(cfg)
        first, second = cfg.branch_blocks()[:2]
        edge1 = cfg.branch_edges(first)[0]
        edge2 = cfg.branch_edges(second)[0]
        with runtime.override_incremental(True):
            before = runtime.STATS.snapshot()
            child = OccurrenceSplit().split_on_edge(trail, first, edge1, "taint")[0]
            OccurrenceSplit().split_on_edge(child, second, edge2, "taint")
            delta = runtime.STATS.delta(before)
            hits, misses = delta.get("refine.split", (0, 0))
            assert misses == 2  # two distinct derivations computed
            # Replaying the parent's split is a pure intern hit.
            replay = OccurrenceSplit().split_on_edge(trail, first, edge1, "taint")
            delta = runtime.STATS.delta(before)
            assert delta.get("refine.split", (0, 0))[0] == hits + 1
            assert [t.fingerprint() for t in replay] == [
                t.fingerprint()
                for t in OccurrenceSplit().split_on_edge(trail, first, edge1, "taint")
            ]


class TestDriverEquivalenceOnEdgeCases:
    @pytest.mark.parametrize("source", [LOOP_HEADER, CONTRADICTION])
    def test_driver_digests_match(self, source):
        def run(incremental):
            blazer = Blazer.from_source(
                source, BlazerConfig(incremental=incremental)
            )
            return blazer.analyze("main")

        inc = run(True)
        runtime.clear_caches()
        scr = run(False)
        assert inc.status == scr.status
        assert verdict_digest(inc) == verdict_digest(scr)
