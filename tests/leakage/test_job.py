"""The leakage job body, its digest, the service plumbing, the CLI."""

import json

import pytest

from repro.cli import main
from repro.leakage import (
    LEAKAGE_JOB_FIELDS,
    leakage_job,
    leakage_source,
    result_digest,
)
from repro.service.jobs import KIND_FIELDS, fingerprint_job, intake_payload
from repro.util.errors import ReproError

pytestmark = pytest.mark.leakage

LEAKY_SRC = """
proc pad(secret k: uint, public n: uint): int {
    var i: int = 0;
    while (i < k) { i = i + 1; }
    return i;
}
"""

CT_SRC = """
proc sel(secret bit: int, public a: int, public b: int): int {
    var r: int = a * bit + b * (1 - bit);
    return r;
}
"""


def test_job_result_shape_and_digest_stability():
    payload = {
        "kind": "leakage",
        "source": CT_SRC,
        "slack": 8,
        "max_input": 16,
    }
    result = leakage_job(dict(payload))
    assert result["kind"] == "leakage"
    assert result["proc"] == "sel"
    assert result["status"] == "safe"
    assert result["constant_time"] is True
    assert result["cells"] == 1
    assert result["bits_capacity"] == 0.0
    assert result["leakage"]["status"] == "exact"
    assert result["consttime"]["constant_time"] is True
    # Same payload, fresh run: byte-identical digest.
    again = leakage_job(dict(payload))
    assert again["digest"] == result["digest"]


def test_digest_moves_with_the_knobs():
    proc, report, consttime = leakage_source(CT_SRC, slack=8, max_input=16)
    base = result_digest(proc, report, consttime)
    _, wider, consttime2 = leakage_source(CT_SRC, slack=64, max_input=16)
    assert result_digest(proc, wider, consttime2) != base or (
        wider.to_dict() == report.to_dict()
    )


def test_leaky_source_is_not_constant_time():
    proc, report, consttime = leakage_source(LEAKY_SRC, slack=1, max_input=8)
    assert proc == "pad"
    assert not consttime.constant_time
    assert report.cells is None or report.cells > 1


def test_job_rejects_bad_model_and_domain():
    with pytest.raises(Exception):
        leakage_source(CT_SRC, cost_model="tlb")
    with pytest.raises(Exception):
        leakage_source(CT_SRC, domain="nope")


def test_service_fingerprints_leakage_kind():
    assert KIND_FIELDS["leakage"] is LEAKAGE_JOB_FIELDS
    message = {
        "op": "submit",
        "kind": "leakage",
        "source": CT_SRC,
        "slack": 8,
        "cost_model": "cache",
        "priority": 3,  # not a job field: must not survive intake
    }
    payload = intake_payload(message)
    assert payload["kind"] == "leakage"
    assert payload["cost_model"] == "cache"
    assert "priority" not in payload
    key, proc = fingerprint_job(payload)
    assert proc == "sel"
    # The knobs are part of the fingerprint: a different cost model is
    # a different job, the same payload coalesces.
    other = dict(payload, cost_model="instr")
    assert fingerprint_job(other)[0] != key
    assert fingerprint_job(dict(payload))[0] == key
    # And a leakage job never coalesces with an analyze job.
    plain = {"source": CT_SRC}
    assert fingerprint_job(plain)[0] != key


def test_fingerprint_rejects_unknown_kind():
    with pytest.raises(ReproError):
        fingerprint_job({"source": CT_SRC, "kind": "tlb"})


@pytest.fixture
def ct_file(tmp_path):
    path = tmp_path / "sel.rp"
    path.write_text(CT_SRC)
    return str(path)


@pytest.fixture
def leaky_file(tmp_path):
    path = tmp_path / "pad.rp"
    path.write_text(LEAKY_SRC)
    return str(path)


class TestCli:
    def test_constant_time_exits_zero(self, ct_file, capsys):
        assert main(["leakage", ct_file, "--max-input", "16"]) == 0
        out = capsys.readouterr().out
        assert "CONSTANT-TIME" in out

    def test_variable_time_exits_two(self, leaky_file, capsys):
        code = main(["leakage", leaky_file, "--slack", "1", "--max-input", "8"])
        assert code == 2
        out = capsys.readouterr().out
        assert "NOT constant-time" in out
        assert "secret-dependent branches" in out

    def test_both_models_json(self, ct_file, capsys):
        assert main(["leakage", ct_file, "--model", "both", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert isinstance(records, list) and len(records) == 2
        models = {r["leakage"]["cost_model"] for r in records}
        assert models == {"instr", "cache"}
        for record in records:
            assert record["consttime"]["constant_time"] is True
            assert record["digest"]

    def test_unknown_on_exhausted_deadline(self, leaky_file):
        code = main(
            ["leakage", leaky_file, "--slack", "1", "--deadline", "0.000001"]
        )
        assert code == 3
