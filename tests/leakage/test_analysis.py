"""The leakage quantification itself: statuses, counting, degradation.

The report's three values carry different promises:

* ``exact`` — the class count *is* the distinguishable-observation
  count (modulo abstract feasibility, which only overcounts);
* ``upper-bound`` — some ε-component had to be subdivided by the
  pigeonhole term, the bits figure is a dominating bound;
* ``unknown`` — a degraded or unbounded leaf poisoned the count, no
  finite claim is made.

These tests pin each promise on hand-written programs where the truth
is computable by eye, and check that running the subsystem never
perturbs the decomposition it consumes (digest stability).
"""

import pytest

from repro.core.blazer import Blazer, BlazerConfig
from repro.core.observer import ConcreteThresholdObserver
from repro.core.report import verdict_digest
from repro.leakage import (
    EXACT,
    UNKNOWN,
    UPPER_BOUND,
    analyze_leakage,
    leakage_from_verdict,
)
from repro.resilience.budget import Budget

pytestmark = pytest.mark.leakage

BRANCHLESS = """
proc sel(secret bit: int, public a: int, public b: int): int {
    var r: int = a * bit + b * (1 - bit);
    return r;
}
"""

SECRET_LOOP = """
proc pad(secret k: uint, public n: uint): int {
    var i: int = 0;
    while (i < k) { i = i + 1; }
    return i;
}
"""

PUBLIC_LOOP = """
proc pad(public n: uint, secret k: int): int {
    var i: int = 0;
    while (i < n) { i = i + 1; }
    return i;
}
"""


def blazer_for(source, threshold=32, default_max=16):
    config = BlazerConfig(
        observer=ConcreteThresholdObserver(
            threshold=threshold, default_max=default_max
        )
    )
    return Blazer.from_source(source, config)


def test_branchless_is_exact_zero_bits():
    blazer = blazer_for(BRANCHLESS)
    report = analyze_leakage(blazer, "sel", slack=32, default_max=16)
    assert report.status == EXACT
    assert report.cells == 1
    assert report.bits_capacity == 0.0
    assert report.bits_min_entropy == 0.0
    assert report.constant_time_bits
    assert len(report.classes) == 1 and report.classes[0].cells == 1


def test_secret_loop_bounds_bits_by_spread():
    # Running time ranges over ~k instructions for k in [0, default_max]:
    # at slack 1 every iteration count is distinguishable, so the bound
    # must admit at least default_max cells -- but stay finite.
    blazer = blazer_for(SECRET_LOOP, threshold=1, default_max=8)
    report = analyze_leakage(blazer, "pad", slack=1, default_max=8)
    assert report.status == UPPER_BOUND
    assert report.cells is not None and report.cells >= 8
    assert report.bits_capacity is not None and report.bits_capacity > 0.0
    assert not report.constant_time_bits


def test_wider_slack_never_increases_cells():
    blazer = blazer_for(SECRET_LOOP, threshold=1, default_max=8)
    verdict = blazer.analyze("pad")
    cells = [
        leakage_from_verdict(verdict, slack, default_max=8).cells
        for slack in (1, 2, 4, 8, 128)
    ]
    assert all(c is not None for c in cells)
    assert cells == sorted(cells, reverse=True)
    # A slack beyond the whole spread sees a single observation.
    assert cells[-1] == 1


def test_bits_is_log2_of_cells():
    import math

    blazer = blazer_for(SECRET_LOOP, threshold=1, default_max=8)
    report = analyze_leakage(blazer, "pad", slack=1, default_max=8)
    assert report.bits_capacity == pytest.approx(math.log2(report.cells))
    assert report.bits_min_entropy == report.bits_capacity


def test_domains_restrict_the_interval_box():
    blazer = blazer_for(SECRET_LOOP, threshold=1, default_max=64)
    verdict = blazer.analyze("pad")
    wide = leakage_from_verdict(verdict, 1, default_max=64)
    narrow = leakage_from_verdict(
        verdict, 1, domains={"k": (0, 1, 2), "n": (0, 1)}, default_max=64
    )
    assert narrow.cells is not None and wide.cells is not None
    assert narrow.cells < wide.cells


def test_degraded_budget_propagates_to_unknown():
    # A step budget this small trips inside the first fixpoint run; the
    # driver degrades the leaf to top instead of crashing, and the
    # leakage report must refuse to state a finite bits figure.
    config = BlazerConfig(
        observer=ConcreteThresholdObserver(threshold=32, default_max=16),
        budget=Budget(max_steps=1),
    )
    blazer = Blazer.from_source(SECRET_LOOP, config)
    verdict = blazer.analyze("pad")
    assert verdict.degradation is not None
    report = leakage_from_verdict(verdict, 32, default_max=16)
    assert report.status == UNKNOWN
    assert report.cells is None
    assert report.bits_capacity is None
    assert report.degraded_leaves > 0
    # The unknown report still renders without claiming bits.
    text = report.render()
    assert "UNKNOWN" in text and "bits" not in text.split("\n")[0]


def test_leakage_never_perturbs_the_verdict_digest():
    # Digest stability: quantifying a decomposition is read-only.  The
    # verdict digest before and after must be identical, and equal to a
    # fresh analysis without the subsystem in the loop.
    blazer = blazer_for(SECRET_LOOP, threshold=1, default_max=8)
    verdict = blazer.analyze("pad")
    before = verdict_digest(verdict)
    leakage_from_verdict(verdict, 1, default_max=8)
    leakage_from_verdict(verdict, 64, default_max=8)
    assert verdict_digest(verdict) == before
    fresh = blazer_for(SECRET_LOOP, threshold=1, default_max=8).analyze("pad")
    assert verdict_digest(fresh) == before


def test_public_loop_with_dead_secret_is_exact():
    blazer = blazer_for(PUBLIC_LOOP, threshold=1, default_max=4)
    report = analyze_leakage(blazer, "pad", slack=1, default_max=4)
    # Cost varies with the *public* n only; the partition may still
    # split, but every class must collapse to single-observation cells
    # only if the analysis proves the per-leaf spread is zero.  Either
    # way the report states a finite bound.
    assert report.status in (EXACT, UPPER_BOUND)
    assert report.cells is not None


def test_report_to_dict_round_trips_the_counters():
    blazer = blazer_for(SECRET_LOOP, threshold=1, default_max=8)
    report = analyze_leakage(blazer, "pad", slack=1, default_max=8)
    record = report.to_dict()
    assert record["proc"] == "pad"
    assert record["status"] == report.status
    assert record["cells"] == report.cells
    assert record["leaves"]["feasible"] == report.feasible_leaves
    assert len(record["classes"]) == len(report.classes)
    for cls, entry in zip(report.classes, record["classes"]):
        assert entry["cells"] == cls.cells
