"""Cost models: the extern pricing interface and its generated form.

A cost model is (summaries, extern impls, cost-relevant argument
positions).  The two built-ins differ in exactly one summary —
``arrayRead`` is flat under ``instr`` and hit/miss-priced under
``cache`` — and :func:`extern_env` manufactures a model from the
self-describing ``cost_<lo>_<hi>`` extern names the generator emits,
so a bare source file is enough to replay any corpus entry.
"""

import pytest

from repro.leakage.model import (
    ARRAY_READ,
    CACHE_HIT_COST,
    CACHE_LINE,
    CACHE_MISS_COST,
    COST_MODELS,
    cache_model,
    extern_env,
    instr_model,
    resolve_model,
)
from repro.util.errors import AnalysisError, InterpError

pytestmark = pytest.mark.leakage


def test_builtin_models_price_array_read_differently():
    instr = instr_model().summaries.lookup(ARRAY_READ)
    cache = cache_model().summaries.lookup(ARRAY_READ)
    assert instr is not None and instr.lo == instr.hi
    assert cache is not None and cache.lo == CACHE_HIT_COST
    assert cache.hi == CACHE_MISS_COST
    assert cache.lo != cache.hi


def test_resolve_model_names_and_errors():
    assert resolve_model("instr").name == "instr"
    assert resolve_model("cache").name == "cache"
    assert set(COST_MODELS) == {"instr", "cache"}
    with pytest.raises(AnalysisError):
        resolve_model("tlb")


def test_cost_relevant_args_defaults_to_index_position():
    model = cache_model()
    # arrayRead's cost depends on the index (position 1), not the table.
    assert model.cost_relevant_args(ARRAY_READ, 2) == (1,)
    # Unlisted externs: every argument is conservatively cost-relevant.
    assert model.cost_relevant_args("bigMultiply", 2) == (0, 1)


def test_cache_impl_prices_hit_and_miss():
    impl = cache_model().externs.resolve(ARRAY_READ).impl
    table = [0] * 8
    # Index inside the first cache line: hit; beyond it: miss.
    _, hit = impl([table, 0])
    _, miss = impl([table, CACHE_LINE])
    assert hit == CACHE_HIT_COST
    assert miss == CACHE_MISS_COST
    # The modelled cost wraps with the table length like the access does.
    _, wrapped = impl([table, 8])
    assert wrapped == CACHE_HIT_COST


def test_instr_impl_is_flat():
    impl = instr_model().externs.resolve(ARRAY_READ).impl
    table = [0] * 8
    assert {impl([table, i])[1] for i in range(8)} == {CACHE_HIT_COST}


def test_array_read_rejects_degenerate_tables():
    impl = cache_model().externs.resolve(ARRAY_READ).impl
    with pytest.raises(InterpError):
        impl([[], 0])
    with pytest.raises(InterpError):
        impl([3, 0])


def test_extern_env_parses_ranged_cost_names():
    source = """
    extern cost_3_17(a: int): int;
    extern cost_5_5(a: int): int;
    extern arrayRead(t: int[], i: int): int;

    proc main(public l: int): int { return cost_3_17(l); }
    """
    model = extern_env(source)
    assert model.name == "generated"
    ranged = model.summaries.lookup("cost_3_17")
    assert (ranged.lo, ranged.hi) == (3, 17)
    flat = model.summaries.lookup("cost_5_5")
    assert (flat.lo, flat.hi) == (5, 5)
    assert model.summaries.lookup(ARRAY_READ) is not None
    # The impl's cost stays inside the declared summary range.
    impl = model.externs.resolve("cost_3_17").impl
    for v in range(-20, 21):
        value, cost = impl([v])
        assert value == v
        assert 3 <= cost <= 17
    assert model.cost_relevant_args("cost_3_17", 1) == (0,)


def test_extern_env_without_externs_matches_instr():
    model = extern_env("proc main(public l: int): int { return l; }")
    # No cost_* names: the environment degrades to the flat model plus
    # the default summaries, so extern-free sources are priced as before.
    assert model.summaries.lookup(ARRAY_READ).lo == CACHE_HIT_COST
