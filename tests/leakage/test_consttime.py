"""Constant-time checking: the crypto corpus and the slack endpoints.

Two families of regression:

* the 8-kernel corpus must reproduce its expected verdict under both
  cost models — the instruction-count model prices every ``arrayRead``
  the same (a table lookup is constant-time), the cache-aware model
  prices hit/miss differently (the same lookup becomes variable-time
  when the index is secret);
* the ε endpoint convention — ``effective_slack`` clamps ε=0 to ε=1 on
  every consumer (threshold observers, the exhaustive oracle, the
  leakage slack), so "any nonzero gap is visible" is one observer, not
  two, and a boundary gap of exactly ε is distinguishable on both the
  static and the concrete side.
"""

import pytest

from repro.core.blazer import Blazer, BlazerConfig
from repro.core.observer import (
    ConcreteThresholdObserver,
    DomainThresholdObserver,
    effective_slack,
)
from repro.diffcheck.oracle import TimingOracle, cluster_count, observer_slack
from repro.interp import Interpreter
from repro.leakage import CRYPTO_CORPUS, check_constant_time, resolve_model
from tests.helpers import compile_to_cfgs

pytestmark = pytest.mark.leakage

SECRET_LOOP = """
proc pad(secret k: uint, public n: uint): int {
    var i: int = 0;
    while (i < k) { i = i + 1; }
    return i;
}
"""


@pytest.mark.parametrize("kernel", CRYPTO_CORPUS, ids=lambda k: k.name)
@pytest.mark.parametrize("model_name", ["instr", "cache"])
def test_corpus_kernel_matches_expected_verdict(kernel, model_name):
    expected = kernel.ct_instr if model_name == "instr" else kernel.ct_cache
    model = resolve_model(model_name)
    blazer = Blazer.from_source(
        kernel.source(), BlazerConfig(summaries=model.summaries)
    )
    report = check_constant_time(blazer, kernel.proc, model)
    assert report.constant_time == expected, (
        "%s under the %s model: got constant_time=%s, expected %s"
        % (kernel.name, model_name, report.constant_time, expected)
    )


def test_variable_time_reports_name_the_culprit():
    kernel = next(k for k in CRYPTO_CORPUS if k.name == "sbox_lookup")
    model = resolve_model("cache")
    blazer = Blazer.from_source(
        kernel.source(), BlazerConfig(summaries=model.summaries)
    )
    report = check_constant_time(blazer, kernel.proc, model)
    assert not report.constant_time
    assert report.offending_calls, "cache violation must carry the call site"
    assert all(v.callee == "arrayRead" for v in report.offending_calls)
    record = report.to_dict()
    assert record["constant_time"] is False
    assert record["offending_calls"][0]["callee"] == "arrayRead"


def test_effective_slack_clamps_zero_to_one():
    assert effective_slack(0) == 1
    assert effective_slack(1) == 1
    assert effective_slack(7) == 7
    assert effective_slack(-3) == 1


def test_observers_agree_with_oracle_at_epsilon_zero():
    # ε=0 and ε=1 must be the *same* observer everywhere: same blazer
    # verdict, same oracle verdict, same cluster counts.
    domains = {"k": tuple(range(0, 4)), "n": (0, 1)}
    cfgs = compile_to_cfgs(SECRET_LOOP)
    verdicts = []
    for threshold in (0, 1):
        blazer = Blazer.from_source(
            SECRET_LOOP,
            BlazerConfig(
                observer=DomainThresholdObserver(
                    threshold=threshold, domains=domains
                )
            ),
        )
        verdicts.append(blazer.analyze("pad").status)
        oracle = TimingOracle(
            interpreter=Interpreter(cfgs),
            cfg=cfgs["pad"],
            domains=domains,
            slack=effective_slack(threshold),
        ).run()
        assert oracle.leaky  # the loop count is the secret
    assert verdicts[0] == verdicts[1]
    times = [0, 5, 11]
    assert cluster_count(times, 0) == cluster_count(times, 1) == 3


def test_boundary_gap_is_distinguishable_at_exact_slack():
    # The endpoint convention: a low-equivalent pair with gap exactly g
    # is leaky at slack g (gap >= slack) and safe at slack g+1.  The
    # static side must agree: at slack g the bound's spread >= g, so no
    # narrowness claim is sound and blazer must not answer "safe".
    domains = {"k": tuple(range(0, 4)), "n": (0, 1)}
    cfgs = compile_to_cfgs(SECRET_LOOP)
    interp = Interpreter(cfgs)
    base = TimingOracle(
        interpreter=interp, cfg=cfgs["pad"], domains=domains, slack=1
    ).run()
    gap = base.max_gap
    assert gap > 0
    at_gap = TimingOracle(
        interpreter=interp, cfg=cfgs["pad"], domains=domains, slack=gap
    ).run()
    past_gap = TimingOracle(
        interpreter=interp, cfg=cfgs["pad"], domains=domains, slack=gap + 1
    ).run()
    assert at_gap.leaky and not past_gap.leaky

    blazer = Blazer.from_source(
        SECRET_LOOP,
        BlazerConfig(
            observer=DomainThresholdObserver(threshold=gap, domains=domains)
        ),
    )
    assert blazer.analyze("pad").status != "safe"


def test_observer_slack_mirrors_effective_slack():
    assert observer_slack(ConcreteThresholdObserver(threshold=0)) == 1
    assert observer_slack(ConcreteThresholdObserver(threshold=24)) == 24
    assert observer_slack(DomainThresholdObserver(threshold=0)) == 1


def test_constant_time_claim_means_zero_oracle_gap():
    # check_constant_time is slack-free: a "constant-time" claim asserts
    # a gap of exactly zero, which the oracle can refute at slack 1.
    kernel = next(k for k in CRYPTO_CORPUS if k.name == "select_branchless")
    model = resolve_model("instr")
    source = kernel.source()
    blazer = Blazer.from_source(source, BlazerConfig(summaries=model.summaries))
    report = check_constant_time(blazer, kernel.proc, model)
    assert report.constant_time
    cfgs = compile_to_cfgs(source)
    oracle = TimingOracle(
        interpreter=Interpreter(cfgs, externs=model.externs),
        cfg=cfgs[kernel.proc],
        domains={"bit": (0, 1), "a": (0, 3), "b": (0, 3)},
        slack=1,
    ).run()
    assert oracle.max_gap == 0
