"""The headline soundness claim, checked at population scale.

200 seeded generated programs (a quarter of them bearing priced extern
calls), each decided two ways: the exhaustive oracle computes the
*exact* per-low-class leakage from every concrete trace, the analysis
derives its bound from the trail decomposition alone.  The bound must
dominate the truth on every single program — one under-report is a
soundness bug, zero tolerance.  The sabotage test closes the loop on
the harness itself: an engine rigged to claim zero leakage must be
caught by the same comparison, proving the sweep can actually fail.
"""

import pytest

from repro.diffcheck.campaign import CampaignConfig, run_campaign
from repro.diffcheck.differ import DiffConfig
from repro.diffcheck.generator import GeneratorConfig

pytestmark = pytest.mark.leakage

SWEEP_COUNT = 200

# Small programs decide the same invariant at a tenth of the wall
# clock; extern_prob matches the bench so cost-summary calls (including
# arrayRead) are represented in the population.
SWEEP = CampaignConfig(
    seed=11,
    count=SWEEP_COUNT,
    diff=DiffConfig(
        subjects=("blazer", "consttime", "leakage"), max_refinements=1
    ),
    generator=GeneratorConfig(
        max_stmts=3, max_depth=1, max_loops=1, extern_prob=0.25
    ),
    shrink=False,
)


@pytest.fixture(scope="module")
def sweep_report():
    return run_campaign(SWEEP, jobs=2)


def test_zero_under_reports_across_the_population(sweep_report):
    under = [
        o
        for o in sweep_report.outcomes
        if o.leakage_cells is not None
        and o.oracle_cells is not None
        and o.leakage_cells < o.oracle_cells
    ]
    assert not under, (
        "SOUNDNESS BUG: %d program(s) where the leakage bound claims "
        "fewer timing classes than the oracle distinguishes: %s"
        % (len(under), [o.name for o in under[:5]])
    )
    assert not sweep_report.soundness_bugs
    summary = sweep_report.to_dict()["summary"]
    assert summary["errors"] == 0
    assert summary["programs"] == SWEEP_COUNT


def test_population_exercises_every_status(sweep_report):
    summary = sweep_report.to_dict()["summary"]
    # The sweep is only meaningful if all three report values actually
    # occur: exact claims, pigeonhole upper bounds, and honest unknowns
    # (genuinely unbounded attack-split leaves).
    assert summary["leakage_exact"] > 0
    assert summary["leakage_upper_bound"] > 0
    assert summary["oracle_leaky"] > 0


def test_bound_dominates_on_every_decided_program(sweep_report):
    decided = [
        o
        for o in sweep_report.outcomes
        if o.leakage_cells is not None and o.oracle_cells is not None
    ]
    assert decided, "no program got both a bound and an oracle count"
    for outcome in decided:
        assert outcome.leakage_cells >= outcome.oracle_cells


def test_sabotaged_leakage_engine_is_caught():
    config = CampaignConfig(
        seed=11,
        count=30,
        diff=DiffConfig(
            subjects=("blazer", "consttime", "leakage"),
            max_refinements=1,
            break_engine="leakage-zero",
        ),
        generator=GeneratorConfig(
            max_stmts=3, max_depth=1, max_loops=1, extern_prob=0.25
        ),
        shrink=False,
    )
    report = run_campaign(config, jobs=2)
    assert report.soundness_bugs, (
        "an engine rigged to report zero leakage must surface as a "
        "soundness bug"
    )
    assert any(
        d.get("engine") == "leakage"
        for o in report.soundness_bugs
        for d in o.disagreements
        if d.get("kind") == "soundness_bug"
    )
    assert report.exit_code == 1
