"""Automata library unit tests: regex, NFA, DFA algebra, elimination."""

import itertools

import pytest

from repro.automata import (
    DFA,
    containing_symbol,
    dfa_to_regex,
    empty,
    from_regex,
    literal,
    regex_to_dfa,
    universal,
)
from repro.automata import regex as rx

AB = frozenset("ab")
ABCD = frozenset("abcd")


def words(alphabet, max_len):
    for n in range(max_len + 1):
        yield from itertools.product(sorted(alphabet), repeat=n)


class TestRegex:
    def test_smart_constructors_normalize(self):
        a = rx.sym("a")
        assert rx.concat(rx.EMPTY, a) is rx.EMPTY
        assert rx.concat(rx.EPSILON, a) == a
        assert rx.union(rx.EMPTY, a) == a
        assert rx.union(a, a) == a
        assert rx.star(rx.EMPTY) == rx.EPSILON
        assert rx.star(rx.star(a)) == rx.star(a)

    def test_nullable(self):
        assert rx.parse("a*").nullable()
        assert rx.parse("&|a").nullable()
        assert not rx.parse("a(b|c)").nullable()

    def test_symbols(self):
        assert rx.parse("a(b|c)*d").symbols() == frozenset("abcd")

    def test_parse_rejects_garbage(self):
        for bad in ("(", "a)", "*", "a|*"):
            with pytest.raises(ValueError):
                rx.parse(bad)

    def test_brute_matcher(self):
        regex = rx.parse("(a|b)*abb")
        assert rx.matches_brute(regex, tuple("abb"))
        assert rx.matches_brute(regex, tuple("babb"))
        assert not rx.matches_brute(regex, tuple("ab"))


class TestNFA:
    @pytest.mark.parametrize(
        "pattern", ["a(b|c)*d", "ab|ba", "(ab)*", "a*b*", "(a|b)*abb", "&", "∅fallback"]
    )
    def test_thompson_matches_brute(self, pattern):
        if pattern == "∅fallback":
            regex = rx.EMPTY
        else:
            regex = rx.parse(pattern)
        nfa = from_regex(regex)
        for word in words(ABCD, 4):
            assert nfa.accepts(word) == rx.matches_brute(regex, word), (pattern, word)

    def test_determinize_preserves_language(self):
        regex = rx.parse("a(b|c)*d|ad*")
        nfa = from_regex(regex)
        dfa = nfa.determinize()
        for word in words(ABCD, 4):
            assert dfa.accepts(word) == nfa.accepts(word)


class TestDFAAlgebra:
    def setup_method(self):
        self.a = regex_to_dfa(rx.parse("(a|b)*a"), AB)
        self.b = regex_to_dfa(rx.parse("a(a|b)*"), AB)

    def test_intersection(self):
        inter = self.a.intersect(self.b)
        for word in words(AB, 5):
            assert inter.accepts(word) == (self.a.accepts(word) and self.b.accepts(word))

    def test_union(self):
        un = self.a.union(self.b)
        for word in words(AB, 5):
            assert un.accepts(word) == (self.a.accepts(word) or self.b.accepts(word))

    def test_complement(self):
        comp = self.a.complement(AB)
        for word in words(AB, 5):
            assert comp.accepts(word) != self.a.accepts(word)

    def test_difference_and_inclusion(self):
        diff = self.a.difference(self.b)
        for word in words(AB, 5):
            assert diff.accepts(word) == (self.a.accepts(word) and not self.b.accepts(word))
        assert self.a.includes(self.a.intersect(self.b))
        assert self.a.union(self.b).includes(self.a)
        assert not self.a.includes(self.b)

    def test_equivalence(self):
        left = regex_to_dfa(rx.parse("(ab)*a|a(ba)*"), AB)
        right = regex_to_dfa(rx.parse("a(ba)*"), AB)
        assert left.equivalent(right)

    def test_emptiness_and_shortest(self):
        assert empty().is_empty()
        assert not self.a.is_empty()
        assert regex_to_dfa(rx.parse("(a|b)*abb"), AB).shortest_word() == tuple("abb")
        inter = self.a.intersect(self.a.complement(AB))
        assert inter.is_empty()

    def test_finiteness(self):
        assert regex_to_dfa(rx.parse("ab|ba"), AB).is_finite()
        assert not regex_to_dfa(rx.parse("ab*"), AB).is_finite()
        assert empty().is_finite()

    def test_minimization_preserves_language(self):
        dfa = regex_to_dfa(rx.parse("(a|b)*abb"), AB)
        minimal = dfa.minimized()
        assert minimal.num_states <= dfa.num_states
        for word in words(AB, 6):
            assert minimal.accepts(word) == dfa.accepts(word)

    def test_minimization_canonical_size(self):
        # (a|b)*abb has a 4-state minimal DFA.
        assert regex_to_dfa(rx.parse("(a|b)*abb"), AB).minimized().num_states == 4

    def test_enumerate_words(self):
        dfa = regex_to_dfa(rx.parse("ab|a"), AB)
        assert dfa.enumerate_words(2) == [("a",), ("a", "b")]


class TestHelpers:
    def test_literal(self):
        dfa = literal(tuple("abc"))
        assert dfa.accepts(tuple("abc"))
        assert not dfa.accepts(tuple("ab"))
        assert not dfa.accepts(tuple("abcd"))

    def test_universal(self):
        dfa = universal(AB)
        for word in words(AB, 3):
            assert dfa.accepts(word)

    def test_containing_symbol(self):
        dfa = containing_symbol(AB, "a")
        assert dfa.accepts(tuple("ba"))
        assert dfa.accepts(tuple("aaa"))
        assert not dfa.accepts(tuple("bbb"))
        assert not dfa.accepts(())

    def test_containing_symbol_partition(self):
        """occurrence-split components cover the universal language."""
        with_a = containing_symbol(AB, "a")
        without_a = with_a.complement(AB)
        union = with_a.union(without_a)
        assert union.includes(universal(AB))


class TestStateElimination:
    @pytest.mark.parametrize(
        "pattern", ["a", "ab", "a|b", "(ab)*", "a(b|c)*d", "(a|b)*abb", "ab(c|&)d*"]
    )
    def test_roundtrip_language(self, pattern):
        regex = rx.parse(pattern)
        dfa = regex_to_dfa(regex, ABCD)
        back = dfa_to_regex(dfa)
        dfa2 = regex_to_dfa(back, ABCD)
        for word in words(ABCD, 4):
            assert dfa.accepts(word) == dfa2.accepts(word), (pattern, word)

    def test_empty_language(self):
        assert dfa_to_regex(empty()) == rx.EMPTY
