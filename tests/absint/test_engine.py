"""Abstract-interpretation engine tests (incl. the trail oracle)."""

from repro.absint import Engine
from repro.automata import regex_to_dfa
from repro.automata import regex as rx
from repro.cfg import cfg_automaton, edge_alphabet
from repro.domains import DOMAINS, LinCons, LinExpr
from tests.helpers import COUNT_LOOP, compile_one

ZONE = DOMAINS["zone"]
x = LinExpr.var


class TestPlainAnalysis:
    def test_loop_exit_invariant(self):
        cfg = compile_one(COUNT_LOOP, "count")
        result = Engine(cfg, ZONE).analyze()
        exit_inv = result.block_invariant(cfg.exit_id)
        lo, hi = exit_inv.bounds_of(x("i") - x("low"))
        assert lo == 0  # i >= low at exit

    def test_infeasible_branch_is_bottom(self):
        source = """
        proc f(n: uint): int {
            if (n < 0) { return 1; }
            return 2;
        }
        """
        cfg = compile_one(source, "f")
        result = Engine(cfg, ZONE).analyze()
        # The "return 1" block must be unreachable.
        reachable = result.reachable_blocks()
        all_blocks = set(cfg.block_ids())
        assert reachable < all_blocks

    def test_branch_refinement_both_sides(self):
        source = """
        proc f(a: int): int {
            if (a > 10) { return a; }
            return a;
        }
        """
        cfg = compile_one(source, "f")
        result = Engine(cfg, ZONE).analyze()
        branch = cfg.branch_blocks()[0]
        taken, not_taken = cfg.branch_edges(branch)
        then_inv = result.block_invariant(taken[1])
        else_inv = result.block_invariant(not_taken[1])
        assert then_inv.entails(LinCons.ge(x("a"), 11))
        assert else_inv.entails(LinCons.le(x("a"), 10))

    def test_equality_branch_refinement(self):
        source = """
        proc f(a: int): int {
            if (a == 5) { return a; }
            return 0;
        }
        """
        cfg = compile_one(source, "f")
        result = Engine(cfg, ZONE).analyze()
        branch = cfg.branch_blocks()[0]
        taken, _ = cfg.branch_edges(branch)
        then_inv = result.block_invariant(taken[1])
        lo, hi = then_inv.var_bounds("a")
        assert lo == 5 and hi == 5

    def test_array_length_tracked(self):
        source = """
        proc f(a: byte[]): int {
            var n: int = len(a);
            return n;
        }
        """
        cfg = compile_one(source, "f")
        result = Engine(cfg, ZONE).analyze()
        exit_inv = result.block_invariant(cfg.exit_id)
        lo, hi = exit_inv.bounds_of(x("n") - x("a#len"))
        assert lo == 0 and hi == 0
        assert exit_inv.entails(LinCons.ge(x("n"), 0))

    def test_not_operator_flips_refinement(self):
        source = """
        proc f(a: int): int {
            if (!(a > 3)) { return a; }
            return 0;
        }
        """
        cfg = compile_one(source, "f")
        result = Engine(cfg, ZONE).analyze()
        branch = cfg.branch_blocks()[0]
        taken, _ = cfg.branch_edges(branch)
        then_inv = result.block_invariant(taken[1])
        assert then_inv.entails(LinCons.le(x("a"), 3))


class TestTrailOracle:
    def _split_dfas(self, cfg, branch_block):
        """Occurrence-split DFAs for a branch's taken edge."""
        from repro.automata.dfa import containing_symbol

        alphabet = edge_alphabet(cfg)
        taken, _ = cfg.branch_edges(branch_block)
        base = cfg_automaton(cfg)
        with_edge = base.intersect(containing_symbol(alphabet, taken))
        without_edge = base.intersect(
            containing_symbol(alphabet, taken).complement(alphabet)
        )
        return with_edge, without_edge

    def test_trail_restriction_sharpens_invariants(self):
        source = """
        proc f(a: int): int {
            var r: int = 0;
            if (a > 0) { r = 1; } else { r = 2; }
            return r;
        }
        """
        cfg = compile_one(source, "f")
        branch = cfg.branch_blocks()[0]
        with_then, without_then = self._split_dfas(cfg, branch)
        res_then = Engine(cfg, ZONE, trail_dfa=with_then).analyze()
        res_else = Engine(cfg, ZONE, trail_dfa=without_then).analyze()

        def exit_r(result, dfa):
            # Join only *accepting* exit nodes: non-accepted prefixes
            # also reach the exit block but are not trail members.
            inv = None
            for node, state in result.invariants.items():
                if node[0] != cfg.exit_id or node[1] not in dfa.accepting:
                    continue
                inv = state if inv is None else inv.join(state)
            assert inv is not None
            return inv.var_bounds("r")

        assert exit_r(res_then, with_then) == (1, 1)
        assert exit_r(res_else, without_then) == (2, 2)

    def test_forbidden_arcs_not_explored(self):
        cfg = compile_one(COUNT_LOOP, "count")
        # A trail of zero loop iterations: never take the loop-entry edge.
        (loop_branch,) = [
            b for b in cfg.branch_blocks()
        ]
        _, without_entry = self._split_dfas(cfg, loop_branch)
        result = Engine(cfg, ZONE, trail_dfa=without_entry).analyze()
        inv = None
        for node, state in result.invariants.items():
            if node[0] != cfg.exit_id or node[1] not in without_entry.accepting:
                continue
            inv = state if inv is None else inv.join(state)
        lo, hi = inv.var_bounds("i")
        assert (lo, hi) == (0, 0)  # i never incremented on this trail


class TestCollectMode:
    def test_collected_transition_relation(self):
        from repro.bounds.lemmas import seed_name

        cfg = compile_one(COUNT_LOOP, "count")
        engine = Engine(cfg, ZONE)
        main = engine.analyze()
        from repro.bounds.graphops import natural_loops

        adjacency = engine.product_graph()
        live = {n for n, s in main.invariants.items() if not s.is_bottom()}
        adj = {u: [e.dst for e in adjacency.get(u, [])] for u in live}
        (loop,) = natural_loops(engine.initial_node(), adj)
        seeded = main.invariants[loop.header]
        for var in ("i", "low"):
            seeded = seeded.assign(seed_name(var), LinExpr.var(var))
        back = set(loop.back_edges)
        result = engine.analyze(
            initial={loop.header: seeded},
            restrict=set(loop.body),
            collect=lambda s, d, e: (s, d) in back,
        )
        relation = result.collected_join()
        lo, hi = relation.bounds_of(x("i") - x(seed_name("i")))
        assert lo == 1 and hi == 1  # i advances by exactly 1 per iteration
        lo, hi = relation.bounds_of(x("low") - x(seed_name("low")))
        assert lo == 0 and hi == 0  # low is loop-invariant
