"""Transfer-function unit tests (cond defs, block rewriting, externs)."""

from repro.absint.transfer import CondDef, TransferFunctions, len_var, operand_expr
from repro.bounds.summaries import default_summaries
from repro.domains import DOMAINS, LinCons, LinExpr
from repro.ir import instr as ir
from tests.helpers import compile_one

ZONE = DOMAINS["zone"]
x = LinExpr.var


class TestOperands:
    def test_const_and_reg(self):
        cfg = compile_one("proc f(a: int) { var b: int = a; }", "f")
        assert operand_expr(ir.ConstInt(5), cfg) == LinExpr.constant(5)
        assert operand_expr(ir.Reg("a"), cfg) == x("a")

    def test_array_reg_is_not_numeric(self):
        cfg = compile_one("proc f(a: byte[]) { }", "f")
        assert operand_expr(ir.Reg("a"), cfg) is None
        assert operand_expr(ir.ConstNull(), cfg) is None

    def test_len_var_naming(self):
        assert len_var("guess") == "guess#len"


class TestCondDefs:
    def test_negation_and_swap(self):
        cond = CondDef(ir.CmpOp.LT, ir.Reg("a"), ir.Reg("b"))
        neg = cond.negated()
        assert neg.op is ir.CmpOp.GE
        assert neg.negated().op is ir.CmpOp.LT

    def test_constraint_generation(self):
        cfg = compile_one("proc f(a: int, b: int) { }", "f")
        cons = CondDef(ir.CmpOp.LT, ir.Reg("a"), ir.Reg("b")).constraint(cfg)
        state = ZONE.top().guard(cons)
        assert state.entails(LinCons.le(x("a") - x("b"), -1))

    def test_ne_yields_no_constraint(self):
        cfg = compile_one("proc f(a: int, b: int) { }", "f")
        assert CondDef(ir.CmpOp.NE, ir.Reg("a"), ir.Reg("b")).constraint(cfg) is None

    def test_array_comparison_yields_no_constraint(self):
        cfg = compile_one("proc f(a: byte[]) { }", "f")
        cond = CondDef(ir.CmpOp.EQ, ir.Reg("a"), ir.ConstNull())
        assert cond.constraint(cfg) is None


class TestBlockEffects:
    def test_cond_def_survives_copy(self):
        cfg = compile_one(
            "proc f(a: int): bool { var c: bool = a > 0; return c; }", "f"
        )
        transfer = TransferFunctions(cfg)
        state, conds = transfer.block_effect(cfg.entry, ZONE.top())
        assert "c" in conds  # copied from the compare temp

    def test_not_flips_cond_def(self):
        cfg = compile_one(
            "proc f(a: int): int { if (!(a > 0)) { return 1; } return 2; }", "f"
        )
        transfer = TransferFunctions(cfg)
        _, conds = transfer.block_effect(cfg.entry, ZONE.top())
        branch = cfg.branch_blocks()[0]
        cons = transfer.branch_constraint(branch, True, conds)
        state = ZONE.top().guard(cons)
        assert state.entails(LinCons.le(x("a"), 0))

    def test_rewrite_to_block_entry(self):
        cfg = compile_one(
            """
            proc f(a: byte[], i: int): int {
                var t: int = len(a);
                if (i < t) { return 1; }
                return 0;
            }
            """,
            "f",
        )
        transfer = TransferFunctions(cfg)
        expr = x("t") - x("i")
        rewritten = transfer.rewrite_to_block_entry(cfg.entry, expr)
        assert rewritten is not None
        assert "a#len" in rewritten.variables()
        assert "t" not in rewritten.variables()

    def test_rewrite_fails_through_array_load(self):
        cfg = compile_one(
            "proc f(a: byte[]): int { var v: int = a[0]; return v; }", "f"
        )
        transfer = TransferFunctions(cfg)
        assert transfer.rewrite_to_block_entry(cfg.entry, x("v")) is None


class TestExternFacts:
    def test_return_range_applied(self):
        source = (
            "extern bigBitLength(v: int): int;\n"
            "proc f(e: int): int { return bigBitLength(e); }"
        )
        cfg = compile_one(source, "f")
        transfer = TransferFunctions(cfg, default_summaries(256))
        state, _ = transfer.block_effect(cfg.entry, ZONE.top())
        call_dst = next(
            i.dst.name
            for _, i in cfg.iter_instrs()
            if isinstance(i, ir.CallInstr)
        )
        lo, hi = state.var_bounds(call_dst)
        assert lo == 256 and hi == 256

    def test_return_length_applied(self):
        source = (
            "extern md5(p: byte[]): byte[];\n"
            "proc f(p: byte[]): int { var h: byte[] = md5(p); return len(h); }"
        )
        cfg = compile_one(source, "f")
        transfer = TransferFunctions(cfg, default_summaries())
        state, _ = transfer.block_effect(cfg.entry, ZONE.top())
        lo, hi = state.var_bounds("h#len")
        assert lo == 16 and hi == 16

    def test_without_summary_result_is_top(self):
        source = "extern mystery(): int;\nproc f(): int { return mystery(); }"
        cfg = compile_one(source, "f")
        transfer = TransferFunctions(cfg)  # no summaries
        state, _ = transfer.block_effect(cfg.entry, ZONE.top())
        call_dst = next(
            i.dst.name
            for _, i in cfg.iter_instrs()
            if isinstance(i, ir.CallInstr)
        )
        assert state.var_bounds(call_dst) == (None, None)

    def test_entry_state_constraints(self):
        cfg = compile_one(
            "proc f(a: byte[], u: uint, b: bool, n: int) { }", "f"
        )
        transfer = TransferFunctions(cfg)
        state = transfer.entry_state(ZONE.top())
        assert state.entails(LinCons.ge(x("a#len"), 0))
        assert state.entails(LinCons.ge(x("u"), 0))
        assert state.entails(LinCons.le(x("b"), 1))
        assert state.var_bounds("n") == (None, None)
