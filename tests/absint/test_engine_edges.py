"""Engine edge cases: narrowing, divergence guard, degenerate CFGs."""

import pytest

from repro.absint import Engine
from repro.domains import DOMAINS, LinCons, LinExpr
from repro.util.errors import AnalysisError
from tests.helpers import compile_one

ZONE = DOMAINS["zone"]
x = LinExpr.var


class TestNarrowing:
    def test_narrowing_recovers_widened_bound(self):
        """Widening drops i <= n at the loop head; the narrowing passes
        must recover it (the classic decreasing iteration)."""
        source = """
        proc f(n: uint): int {
            var i: int = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        """
        cfg = compile_one(source, "f")
        with_narrowing = Engine(cfg, ZONE, narrowing_passes=2).analyze()
        exit_inv = with_narrowing.block_invariant(cfg.exit_id)
        lo, hi = exit_inv.bounds_of(x("i") - x("n"))
        assert (lo, hi) == (0, 0)

    def test_without_narrowing_weaker(self):
        source = """
        proc f(n: uint): int {
            var i: int = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        """
        cfg = compile_one(source, "f")
        without = Engine(cfg, ZONE, narrowing_passes=0).analyze()
        exit_inv = without.block_invariant(cfg.exit_id)
        _, hi = exit_inv.bounds_of(x("i") - x("n"))
        # Either the bound is weaker or (if widening never fired) equal;
        # the narrowed result must be at least as strong.
        with_n = Engine(cfg, ZONE, narrowing_passes=2).analyze()
        _, hi_n = with_n.block_invariant(cfg.exit_id).bounds_of(x("i") - x("n"))
        assert hi_n is not None
        assert hi is None or hi_n <= hi


class TestGuards:
    def test_max_iterations_raises(self):
        source = """
        proc f(n: uint): int {
            var i: int = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        """
        cfg = compile_one(source, "f")
        with pytest.raises(AnalysisError):
            Engine(cfg, ZONE, max_iterations=2).analyze()

    def test_straightline_cfg(self):
        cfg = compile_one("proc f(): int { return 1; }", "f")
        result = Engine(cfg, ZONE).analyze()
        assert cfg.exit_id in {n[0] for n in result.invariants}

    def test_interval_domain_runs_endtoend(self):
        """The non-relational domain must still terminate and be sound
        (it just cannot bound the loop)."""
        source = """
        proc f(n: uint): int {
            var i: int = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        """
        cfg = compile_one(source, "f")
        result = Engine(cfg, DOMAINS["interval"]).analyze()
        exit_inv = result.block_invariant(cfg.exit_id)
        lo, _ = exit_inv.var_bounds("i")
        assert lo is not None and lo >= 0  # i >= 0 still derivable

    def test_polyhedra_domain_runs_endtoend(self):
        source = """
        proc f(n: uint): int {
            var i: int = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        """
        cfg = compile_one(source, "f")
        result = Engine(cfg, DOMAINS["polyhedra"]).analyze()
        exit_inv = result.block_invariant(cfg.exit_id)
        lo, hi = exit_inv.bounds_of(x("i") - x("n"))
        assert (lo, hi) == (0, 0)


class TestProductGraphAPI:
    def test_product_graph_unrestricted(self):
        cfg = compile_one("proc f(a: int): int { if (a > 0) { return 1; } return 0; }", "f")
        engine = Engine(cfg, ZONE)
        adjacency = engine.product_graph()
        nodes = set(adjacency)
        assert engine.initial_node() in nodes
        # every reachable block appears
        assert {n[0] for n in nodes} == set(cfg.reverse_postorder())

    def test_edge_out_states(self):
        cfg = compile_one("proc f(a: int): int { if (a > 0) { return 1; } return 0; }", "f")
        engine = Engine(cfg, ZONE)
        result = engine.analyze()
        node = engine.initial_node()
        outs = engine.edge_out_states(node, result.invariants[node])
        assert len(outs) == 2
        for edge_info, state in outs:
            assert edge_info.src == node
