"""Differential battery of the incremental re-analysis plane.

Every generated program is analyzed twice — incremental plane on and
off — and the two runs must agree byte-for-byte at every refinement
round (docs/PERFORMANCE.md).  The acceptance sweep covers 300 seeded
programs serially; a prefix re-runs under ``--jobs 4`` on the same
pool machinery as the diffcheck campaign and must reproduce the serial
digests program-for-program.

The sabotage half proves the battery has teeth: a
``refine.delta:corrupt`` fault replaces exactly one reused parent
fixpoint with a zero-iteration claim, and both the equivalence sweep
and the diffcheck differ must flag it (the ``break_engine`` idiom of
``tests/diffcheck/test_differ.py``, aimed at the reuse tier instead of
the observer).
"""

import pytest

from repro.diffcheck.differ import DiffConfig, check_program
from repro.diffcheck.equivalence import (
    EquivalenceConfig,
    check_equivalence,
    run_sweep,
)
from repro.diffcheck.generator import GeneratorConfig, generate_program
from repro.perf import runtime
from repro.resilience import faults

pytestmark = pytest.mark.incremental

# The acceptance sweep (>= 300 programs, same seed and code path as
# `make incremental-sweep`), computed once for the whole module.
FULL = EquivalenceConfig(seed=0, count=300)
# The slice re-run under --jobs 4 and the sabotage sweep stay small:
# they re-analyze programs the full sweep already covers.
PREFIX_COUNT = 48
SABOTAGE_COUNT = 24

# Pinned sabotage subject: at seed 0, program index 24 analyzes to
# "attack" with a spotless diffcheck report, and a single corrupted
# reuse serve collapses a child loop bound so CHECKATTACK comes up
# empty — the oracle's gap of 129 then surfaces as a ``missed_attack``
# disagreement.  (Found by sweeping indices 0..40 under the fault plan;
# re-pin by rerunning that sweep if the generator ever changes.)
SABOTAGE_SEED = 0
SABOTAGE_INDEX = 24


@pytest.fixture(autouse=True)
def _fresh_process_state():
    """Faults off and memo tables cold around every test: the sweeps
    assert on process-global hit counters and fault events."""
    faults.clear()
    runtime.clear_caches()
    yield
    faults.clear()
    runtime.clear_caches()


@pytest.fixture(scope="module")
def full_serial_report():
    return run_sweep(FULL, jobs=1, backend="serial")


class TestEquivalenceSweep:
    def test_full_serial_sweep_is_divergence_free(self, full_serial_report):
        report = full_serial_report
        assert len(report.outcomes) >= 300
        assert [o.name for o in report.divergences] == []
        assert [o.name for o in report.errors] == []

    def test_sweep_exercises_the_reuse_tier(self, full_serial_report):
        # Zero probes would mean the battery tests nothing: the
        # refinement-heavy programs in the sweep must actually hit the
        # parent-artifact tier.
        assert full_serial_report.reuse_hits > 0

    def test_jobs4_matches_serial(self, full_serial_report):
        prefix = EquivalenceConfig(seed=FULL.seed, count=PREFIX_COUNT)
        parallel = run_sweep(prefix, jobs=4)
        assert [o.name for o in parallel.divergences] == []
        assert [o.name for o in parallel.errors] == []
        # Same digests program-for-program whatever the process layout:
        # the plane's answers cannot depend on which worker (with which
        # warm memo tables) an item landed on.
        serial_prefix = full_serial_report.outcomes[:PREFIX_COUNT]
        assert [
            (o.name, o.status_incremental, o.digest_incremental)
            for o in serial_prefix
        ] == [
            (o.name, o.status_incremental, o.digest_incremental)
            for o in parallel.outcomes
        ]

    def test_every_round_compared(self, full_serial_report):
        # The per-node comparison must see internal rounds, not just the
        # final leaves: refined programs contribute multi-node trees.
        assert max(o.nodes for o in full_serial_report.outcomes) > 1


class TestSabotage:
    """REPRO_FAULTS=refine.delta:corrupt — the battery must catch it."""

    def _sabotage_plan(self):
        return faults.FaultPlan.from_string("refine.delta:corrupt@1")

    def test_equivalence_sweep_flags_exactly_one(self):
        faults.install(self._sabotage_plan())
        before = runtime.STATS.events_snapshot()
        report = run_sweep(
            EquivalenceConfig(seed=0, count=SABOTAGE_COUNT),
            jobs=1,
            backend="serial",
        )
        fired = runtime.STATS.events_delta(before).get("fault.corrupt", 0)
        assert fired == 1
        assert len(report.divergences) == 1
        assert not report.errors

    def test_diffcheck_flags_corrupted_reuse(self):
        program = generate_program(
            SABOTAGE_SEED, SABOTAGE_INDEX, GeneratorConfig()
        )
        config = DiffConfig(subjects=("blazer",))

        clean = check_program(program, config)
        assert clean.clean, [d.to_dict() for d in clean.disagreements]

        runtime.clear_caches()  # the clean run must not mask the probe
        faults.install(self._sabotage_plan())
        before = runtime.STATS.events_snapshot()
        sabotaged = check_program(program, config)
        fired = runtime.STATS.events_delta(before).get("fault.corrupt", 0)

        assert fired == 1
        assert not sabotaged.clean
        assert "missed_attack" in {d.kind for d in sabotaged.disagreements}

    def test_corruption_diverges_the_pinned_program(self):
        # The same pinned program through the sweep worker: the
        # equivalence side must flag the corruption too (digest and
        # node-level divergence, not just a changed diffcheck verdict).
        name = "p%06d" % SABOTAGE_INDEX
        config = EquivalenceConfig(seed=SABOTAGE_SEED, count=1)
        clean = check_equivalence(name, config)
        assert clean.clean and clean.reuse_hits > 0

        runtime.clear_caches()
        faults.install(self._sabotage_plan())
        corrupted = check_equivalence(name, config)
        assert corrupted.diverged
        assert corrupted.divergent_nodes  # names the exact trail(s)
        assert corrupted.digest_incremental != corrupted.digest_scratch
