"""End-to-end soundness properties over randomly generated programs.

These are the paper's guarantees, checked empirically:

* every concrete trace's running time lies inside the static bound;
* every concrete trace's edge word lies in L(tr_mg);
* the driver's partitions cover every concrete trace, and taint-split
  ("safe") partitions are ψ_tcf-quotient on the sampled traces;
* a SAFE verdict implies empirical timing-channel freedom on the sample.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import compute_bound
from repro.core import Blazer, analyze_source
from repro.core.ksafety import is_quotient_partition, psi_tcf, tcf
from repro.domains import DOMAINS
from repro.interp import Interpreter
from repro.trails import Trail
from tests.helpers import compile_to_cfgs

ZONE = DOMAINS["zone"]

# Template programs parameterized by hypothesis-drawn constants; each is
# terminating by construction.  'h' is secret, 'l' public.
TEMPLATES = [
    # balanced secret branch
    """
    proc main(secret h: int, public l: uint): int {{
        var acc: int = {c0};
        while (acc < l) {{ acc = acc + 1; }}
        if (h > {c1}) {{ acc = acc + {c2}; }} else {{ acc = acc + {c2}; }}
        return acc;
    }}
    """,
    # leaky secret loop guard
    """
    proc main(secret h: int, public l: uint): int {{
        var acc: int = 0;
        if (h > {c0}) {{
            while (acc < l) {{ acc = acc + 1; }}
        }}
        return acc + {c1};
    }}
    """,
    # low split with different shapes per side
    """
    proc main(secret h: int, public l: int): int {{
        var acc: int = 0;
        if (l > {c0}) {{
            var i: int = 0;
            while (i < l) {{ i = i + {c2}; acc = acc + 1; }}
        }} else {{
            acc = {c1};
        }}
        return acc;
    }}
    """,
]

constants = st.integers(min_value=1, max_value=4)
template_ids = st.integers(0, len(TEMPLATES) - 1)
lows = st.lists(st.integers(0, 5), min_size=2, max_size=4)
highs = st.lists(st.integers(-2, 5), min_size=2, max_size=3)


def build(template_id, c0, c1, c2):
    return TEMPLATES[template_id].format(c0=c0, c1=c1, c2=c2)


def sample_traces(source, low_values, high_values):
    interp = Interpreter(compile_to_cfgs(source))
    return [
        interp.run("main", {"h": h, "l": l})
        for l in low_values
        for h in high_values
    ]


@settings(max_examples=30, deadline=None)
@given(template_ids, constants, constants, constants, lows, highs)
def test_static_bound_contains_concrete_times(tid, c0, c1, c2, ls, hs):
    source = build(tid, c0, c1, c2)
    cfgs = compile_to_cfgs(source)
    result = compute_bound(cfgs["main"], ZONE)
    assert result.feasible
    for trace in sample_traces(source, ls, hs):
        env = {"l": trace.input("l"), "h": trace.input("h")}
        lo, hi = result.bound.evaluate(env)
        assert lo <= trace.time, (trace, lo)
        if hi is not None:
            assert trace.time <= hi, (trace, hi)


@settings(max_examples=20, deadline=None)
@given(template_ids, constants, constants, constants, lows, highs)
def test_traces_in_most_general_trail(tid, c0, c1, c2, ls, hs):
    source = build(tid, c0, c1, c2)
    cfgs = compile_to_cfgs(source)
    trail = Trail.most_general(cfgs["main"])
    for trace in sample_traces(source, ls, hs):
        assert trail.accepts(trace.edges)


@settings(max_examples=15, deadline=None)
@given(template_ids, constants, constants, constants, lows, highs)
def test_partition_covers_and_is_quotient(tid, c0, c1, c2, ls, hs):
    source = build(tid, c0, c1, c2)
    blazer = Blazer.from_source(source)
    verdict = blazer.analyze("main")
    assert verdict.tree.covers_root()
    traces = sample_traces(source, ls, hs)
    leaves = verdict.tree.leaves()
    # Coverage: every concrete trace is a member of some leaf trail.
    membership = [
        [leaf.trail.accepts(t.edges) for leaf in leaves] for t in traces
    ]
    assert all(any(row) for row in membership)
    # Quotient property for taint-only partitions (Section 4.3's claim).
    if all(
        s.kind == "taint" for leaf in leaves for s in leaf.trail.splits
    ):
        components = [
            [t for t, row in zip(traces, membership) if row[i]]
            for i in range(len(leaves))
        ]
        components = [c for c in components if c]
        assert is_quotient_partition(traces, components, psi_tcf, 2)


@settings(max_examples=15, deadline=None)
@given(template_ids, constants, constants, constants, lows, highs)
def test_safe_verdict_implies_empirical_tcf(tid, c0, c1, c2, ls, hs):
    """Theorem 3.1, end to end: if the tool says SAFE, no sampled pair of
    low-equivalent traces may differ observably in running time."""
    source = build(tid, c0, c1, c2)
    verdict = analyze_source(source, "main")
    if verdict.status != "safe":
        return
    traces = sample_traces(source, ls, hs)
    epsilon = 32  # the micro observer's constant slack
    assert tcf(epsilon).holds(traces), verdict.render()
