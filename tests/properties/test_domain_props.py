"""Property-based soundness tests for the numeric abstract domains.

Strategy: generate a random straight-line command sequence (assignments
and guards over three variables), execute it both concretely (on a
random integer environment) and abstractly (in each domain).  Whenever
the concrete execution survives every guard, the abstract state must
*contain* the concrete environment — γ-soundness.  Join and widen must
contain both operands' concretizations.
"""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.domains import DOMAINS, LinCons, LinExpr

VARS = ["x", "y", "z"]

consts = st.integers(min_value=-8, max_value=8)
var_names = st.sampled_from(VARS)


@st.composite
def linexprs(draw):
    expr = LinExpr.constant(draw(consts))
    for var in VARS:
        if draw(st.booleans()):
            expr = expr + LinExpr.var(var) * draw(st.integers(-3, 3))
    return expr


@st.composite
def commands(draw):
    """A command: ('assign', var, expr|None) or ('guard', cons)."""
    if draw(st.booleans()):
        havoc = draw(st.integers(0, 9)) == 0
        return ("assign", draw(var_names), None if havoc else draw(linexprs()))
    expr = draw(linexprs())
    kind = draw(st.sampled_from(["le", "ge", "eq"]))
    rhs = draw(consts)
    if kind == "le":
        return ("guard", LinCons.le(expr, rhs))
    if kind == "ge":
        return ("guard", LinCons.ge(expr, rhs))
    return ("guard", LinCons.eq(expr, rhs))


programs = st.lists(commands(), min_size=1, max_size=6)
envs = st.fixed_dictionaries({v: st.integers(-6, 6) for v in VARS})


def run_concrete(program, env):
    """Execute; returns the final env or None if a guard failed.

    Havoc assignments pick an arbitrary fixed value (0) — the abstract
    run must cover that choice among all others.
    """
    env = dict(env)
    for cmd in program:
        if cmd[0] == "assign":
            _, var, expr = cmd
            env[var] = 0 if expr is None else int(expr.evaluate(env))
        else:
            if not cmd[1].holds(env):
                return None
    return env


def run_abstract(domain, program, initial_env):
    state = domain.top()
    for var, value in initial_env.items():
        state = state.guard(LinCons.eq(LinExpr.var(var), value))
    for cmd in program:
        if cmd[0] == "assign":
            state = state.assign(cmd[1], cmd[2])
        else:
            state = state.guard(cmd[1])
    return state


def contains(state, env):
    for cons in state.constraints():
        if not cons.holds(env):
            return False
    return True


@settings(max_examples=60, deadline=None)
@given(programs, envs, st.sampled_from(sorted(DOMAINS)))
def test_transfer_soundness(program, env, domain_name):
    domain = DOMAINS[domain_name]
    final = run_concrete(program, env)
    state = run_abstract(domain, program, env)
    if final is None:
        return  # concrete run filtered out; nothing to check
    assert not state.is_bottom(), "abstract state lost a feasible execution"
    assert contains(state, final)
    # bounds_of must cover the concrete value of every variable.
    for var in VARS:
        lo, hi = state.var_bounds(var)
        value = Fraction(final[var])
        assert lo is None or lo <= value
        assert hi is None or value <= hi


@settings(max_examples=40, deadline=None)
@given(envs, envs, st.sampled_from(sorted(DOMAINS)))
def test_join_and_widen_contain_both(env_a, env_b, domain_name):
    domain = DOMAINS[domain_name]

    def point(env):
        state = domain.top()
        for var, value in env.items():
            state = state.guard(LinCons.eq(LinExpr.var(var), value))
        return state

    a, b = point(env_a), point(env_b)
    joined = a.join(b)
    widened = a.widen(joined)
    for env in (env_a, env_b):
        assert contains(joined, env)
        assert contains(widened, env)
    assert a.leq(joined) and b.leq(joined)
    assert joined.leq(widened)


@settings(max_examples=40, deadline=None)
@given(programs, envs, st.sampled_from(sorted(DOMAINS)))
def test_leq_is_sound_wrt_membership(program, env, domain_name):
    domain = DOMAINS[domain_name]
    final = run_concrete(program, env)
    assume(final is not None)
    state = run_abstract(domain, program, env)
    bigger = state.join(domain.top())
    # top contains everything; state.leq(top-join) and membership carries.
    assert state.leq(bigger)
    assert contains(bigger, final)


@settings(max_examples=25, deadline=None)
@given(st.sampled_from(sorted(DOMAINS)))
def test_widening_terminates_on_increasing_chain(domain_name):
    """Widening an ever-growing interval chain must stabilize."""
    domain = DOMAINS[domain_name]
    x = LinExpr.var("x")
    state = domain.top().guard(LinCons.eq(x, 0))
    previous = state
    for k in range(1, 60):
        nxt = domain.top().guard(LinCons.ge(x, 0)).guard(LinCons.le(x, k))
        widened = previous.widen(previous.join(nxt))
        if nxt.leq(previous):
            break
        previous = widened
    else:
        raise AssertionError("widening did not stabilize within 60 steps")
