"""State/constraints round-trip properties for the relational domains.

For any state S reached by random operations, re-imposing S's own
constraint set on top must give back an equivalent state (constraints()
is a faithful description), and S must entail each of its constraints.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains import DOMAINS, LinCons, LinExpr

VARS = ["x", "y", "z"]
consts = st.integers(-6, 6)


@st.composite
def states(draw, domain_name):
    domain = DOMAINS[domain_name]
    state = domain.top()
    for _ in range(draw(st.integers(1, 5))):
        var = draw(st.sampled_from(VARS))
        choice = draw(st.integers(0, 3))
        if choice == 0:
            state = state.assign(var, LinExpr.constant(draw(consts)))
        elif choice == 1:
            other = draw(st.sampled_from(VARS))
            state = state.assign(var, LinExpr.var(other) + draw(consts))
        elif choice == 2:
            other = draw(st.sampled_from(VARS))
            state = state.guard(
                LinCons.le(LinExpr.var(var), LinExpr.var(other) + draw(consts))
            )
        else:
            state = state.guard(LinCons.ge(LinExpr.var(var), draw(consts)))
    return state


@settings(max_examples=40, deadline=None)
@given(st.data(), st.sampled_from(["zone", "octagon", "polyhedra"]))
def test_constraints_are_entailed(data, domain_name):
    state = data.draw(states(domain_name))
    if state.is_bottom():
        return
    for cons in state.constraints():
        assert state.entails(cons), (domain_name, str(cons), str(state))


@settings(max_examples=40, deadline=None)
@given(st.data(), st.sampled_from(["zone", "octagon"]))
def test_reimposing_constraints_is_identity(data, domain_name):
    domain = DOMAINS[domain_name]
    state = data.draw(states(domain_name))
    if state.is_bottom():
        return
    rebuilt = domain.top().guard_all(state.constraints())
    assert state.leq(rebuilt) and rebuilt.leq(state), (
        domain_name,
        str(state),
        str(rebuilt),
    )
