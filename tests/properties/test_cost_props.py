"""Property-based tests for the symbolic cost algebra.

The semantic contract of a CostBound at a valuation x (with the nonneg
symbols >= 0) is the interval  [min_i L_i(x), max(0, max_j U_j(x))].
Addition, join and scaling must be sound interval operations under this
reading; multiply must over-approximate the product with a non-negative
left factor.
"""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bounds.cost import CostBound, Poly

SYMS = ["n", "m"]
NONNEG = frozenset(SYMS)


@st.composite
def polys(draw):
    terms = {(): Fraction(draw(st.integers(-5, 20)))}
    for sym in SYMS:
        if draw(st.booleans()):
            terms[(sym,)] = Fraction(draw(st.integers(0, 6)))
    return Poly(terms)


@st.composite
def bounds(draw):
    lo = draw(polys())
    hi = lo + Poly.constant(draw(st.integers(0, 10)))
    if draw(st.booleans()):
        hi = hi + Poly.symbol(draw(st.sampled_from(SYMS)))
    return CostBound.range(lo, hi, NONNEG)


envs = st.fixed_dictionaries({s: st.integers(0, 9) for s in SYMS})


def interval(bound, env):
    lo, hi = bound.evaluate(env)
    assert hi is None or lo <= max(hi, lo)  # well-formedness
    return lo, hi


@settings(max_examples=80, deadline=None)
@given(bounds(), bounds(), envs)
def test_addition_is_interval_addition(a, b, env):
    lo_a, hi_a = interval(a, env)
    lo_b, hi_b = interval(b, env)
    lo, hi = interval(a + b, env)
    assert lo <= lo_a + lo_b
    assert hi >= hi_a + hi_b


@settings(max_examples=80, deadline=None)
@given(bounds(), bounds(), envs)
def test_join_contains_both(a, b, env):
    joined = a.join(b)
    lo, hi = interval(joined, env)
    for side in (a, b):
        s_lo, s_hi = interval(side, env)
        assert lo <= s_lo
        assert hi >= s_hi


@settings(max_examples=80, deadline=None)
@given(bounds(), envs, st.integers(0, 5))
def test_scale_is_pointwise(a, env, k):
    lo_a, hi_a = interval(a, env)
    lo, hi = interval(a.scale(k), env)
    assert lo <= k * lo_a
    assert hi >= k * hi_a


@settings(max_examples=80, deadline=None)
@given(bounds(), bounds(), envs)
def test_multiply_over_approximates_nonneg_product(body, iters, env):
    """For any achievable body cost c in [body] with c >= 0 and any
    achievable iteration count k in [iters] with k >= 0, the product
    c*k must lie inside body.multiply(iters)."""
    product = body.multiply(iters)
    b_lo, b_hi = interval(body, env)
    i_lo, i_hi = interval(iters, env)
    lo, hi = interval(product, env)
    # Sample achievable nonnegative values at the interval corners.
    for c in {max(b_lo, 0), max(b_hi, 0)}:
        for k in {max(i_lo, 0), max(i_hi, 0)}:
            assert lo <= c * k <= max(hi, 0), (c, k, lo, hi)


@settings(max_examples=60, deadline=None)
@given(bounds(), envs)
def test_upper_clamped_at_zero(a, env):
    _, hi = interval(a, env)
    assert hi >= 0  # the embedded zero polynomial


@settings(max_examples=60, deadline=None)
@given(bounds())
def test_degree_reflects_symbols(a):
    if a.degree() == 0:
        assert all(p.is_constant for p in a.upper)
    assert a.symbols() <= frozenset(SYMS)
