"""Inductive-invariant property: the engine's fixpoints really are
post-fixpoints.

For every product edge (u → v) with invariant states I(u), I(v), the
transferred state along the edge must be included in I(v) (up to the
domain's ``leq``).  This is the defining property of a sound abstract
fixpoint — if it ever fails, every downstream result is suspect.
Checked over randomly generated programs and every domain.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.absint import Engine
from repro.domains import DOMAINS
from tests.helpers import compile_to_cfgs

TEMPLATES = [
    """
    proc main(secret h: int, public l: uint): int {{
        var a: int = {c0};
        while (a < l) {{ a = a + {c1}; }}
        return a;
    }}
    """,
    """
    proc main(secret h: int, public l: int): int {{
        var a: int = 0;
        if (l > {c0}) {{
            a = {c1};
        }} else {{
            if (h > 0) {{ a = a + {c0}; }}
        }}
        while (a > 0) {{ a = a - 1; }}
        return a;
    }}
    """,
    """
    proc main(secret h: int, public l: uint): int {{
        var total: int = 0;
        for (var i: int = 0; i < l; i = i + 1) {{
            for (var j: int = 0; j < {c0}; j = j + 1) {{
                total = total + {c1};
            }}
        }}
        return total;
    }}
    """,
]

constants = st.integers(min_value=1, max_value=5)


def check_inductive(cfg, domain):
    engine = Engine(cfg, domain)
    result = engine.analyze()
    adjacency = engine.product_graph()
    for node, state in result.invariants.items():
        if state.is_bottom():
            continue
        for edge_info, out_state in engine.edge_out_states(node, state):
            if out_state.is_bottom():
                continue
            target = result.invariants.get(edge_info.dst)
            assert target is not None, "reachable node missing an invariant"
            assert out_state.leq(target), (
                "invariant not inductive along %s -> %s"
                % (edge_info.src, edge_info.dst)
            )


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, len(TEMPLATES) - 1),
    constants,
    constants,
    st.sampled_from(["interval", "zone", "octagon"]),
)
def test_invariants_are_inductive(tid, c0, c1, domain_name):
    source = TEMPLATES[tid].format(c0=c0, c1=c1)
    cfg = compile_to_cfgs(source)["main"]
    check_inductive(cfg, DOMAINS[domain_name])


@settings(max_examples=8, deadline=None)
@given(st.integers(0, len(TEMPLATES) - 1), constants, constants)
def test_invariants_are_inductive_polyhedra(tid, c0, c1):
    source = TEMPLATES[tid].format(c0=c0, c1=c1)
    cfg = compile_to_cfgs(source)["main"]
    check_inductive(cfg, DOMAINS["polyhedra"])
