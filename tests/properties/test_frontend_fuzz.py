"""Front-end robustness: arbitrary input must never crash with anything
but the library's own SourceError hierarchy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import frontend
from repro.lang.lexer import tokenize
from repro.util.errors import SourceError

# Text biased toward language-ish fragments plus raw unicode noise.
fragments = st.sampled_from(
    [
        "proc", "extern", "var", "if", "while", "for", "return", "int",
        "uint", "byte[]", "{", "}", "(", ")", ";", ":", "=", "==", "&&",
        "x", "f", "0", "42", '"s"', "//c\n", "/*", "*/", "len", "new",
        "secret", "public", "+", "-", "<", "null", ",",
    ]
)
noise = st.text(max_size=12)
soup = st.lists(st.one_of(fragments, noise), max_size=25).map(" ".join)


@settings(max_examples=150, deadline=None)
@given(soup)
def test_lexer_total(text):
    try:
        tokenize(text)
    except SourceError:
        pass  # the only acceptable failure mode


@settings(max_examples=150, deadline=None)
@given(soup)
def test_frontend_total(text):
    try:
        frontend(text)
    except SourceError:
        pass


@settings(max_examples=50, deadline=None)
@given(st.text(max_size=40))
def test_frontend_on_raw_unicode(text):
    try:
        frontend(text)
    except SourceError:
        pass
