"""Property-based round-trip tests for the language front-end."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import format_program, frontend
from repro.lang.parser import parse_program

idents = st.sampled_from(["a", "b", "c", "acc"])
consts = st.integers(min_value=0, max_value=99)


@st.composite
def expressions(draw, depth=0):
    """Well-typed int expressions over parameters a, b, c."""
    if depth >= 2 or draw(st.integers(0, 2)) == 0:
        if draw(st.booleans()):
            return str(draw(consts))
        return draw(idents)
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return "(%s %s %s)" % (left, op, right)


@st.composite
def conditions(draw):
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    return "%s %s %s" % (draw(expressions()), op, draw(expressions()))


@st.composite
def statements(draw, depth=0):
    kind = draw(st.integers(0, 3 if depth < 2 else 1))
    if kind == 0:
        return "acc = %s;" % draw(expressions())
    if kind == 1:
        return "acc = acc + 1;"
    if kind == 2:
        body = " ".join(draw(st.lists(statements(depth=depth + 1), min_size=1, max_size=2)))
        orelse = draw(st.booleans())
        if orelse:
            body2 = " ".join(
                draw(st.lists(statements(depth=depth + 1), min_size=1, max_size=2))
            )
            return "if (%s) { %s } else { %s }" % (draw(conditions()), body, body2)
        return "if (%s) { %s }" % (draw(conditions()), body)
    # A structurally terminating counter loop.
    body = " ".join(draw(st.lists(statements(depth=depth + 1), min_size=0, max_size=1)))
    return (
        "for (var i%d: int = 0; i%d < b; i%d = i%d + 1) { %s }"
        % (depth, depth, depth, depth, body)
    )


@st.composite
def programs(draw):
    body = " ".join(draw(st.lists(statements(), min_size=1, max_size=4)))
    return (
        "proc main(secret a: int, public b: int, public c: int): int {"
        " var acc: int = 0; %s return acc; }" % body
    )


@settings(max_examples=60, deadline=None)
@given(programs())
def test_pretty_print_parse_roundtrip(source):
    """format(parse(s)) is a fixpoint of format∘parse, and typechecks."""
    prog = frontend(source)
    text = format_program(prog)
    again = parse_program(text)
    assert format_program(again) == text
    frontend(text)


@settings(max_examples=30, deadline=None)
@given(programs())
def test_compile_pipeline_total(source):
    """Every generated program compiles, verifies, lifts, and preserves
    the bytecode-count/weight invariant."""
    from tests.helpers import compile_to_module
    from repro.ir import lift_code

    module = compile_to_module(source)
    code = module.code("main")
    cfg = lift_code(code, module)
    assert sum(b.cost for b in cfg.blocks.values()) == len(code.instrs)


@settings(max_examples=20, deadline=None)
@given(programs(), st.integers(-3, 3), st.integers(0, 4), st.integers(-3, 3))
def test_interpreter_total_and_deterministic(source, a, b, c):
    from tests.helpers import interpreter_for

    interp = interpreter_for(source)
    t1 = interp.run("main", {"a": a, "b": b, "c": c})
    t2 = interp.run("main", {"a": a, "b": b, "c": c})
    assert t1.time == t2.time
    assert t1.result == t2.result
