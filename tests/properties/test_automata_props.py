"""Property-based tests for the automata library."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import dfa_to_regex, from_regex, regex_to_dfa
from repro.automata import regex as rx

ALPHABET = "abc"
SYMBOLS = st.sampled_from(list(ALPHABET))


def regexes(depth=3):
    base = st.one_of(
        SYMBOLS.map(rx.sym),
        st.just(rx.EPSILON),
        st.just(rx.EMPTY),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: rx.concat(*p)),
            st.tuples(children, children).map(lambda p: rx.union(*p)),
            children.map(rx.star),
        )

    return st.recursive(base, extend, max_leaves=8)


def sample_words(max_len=4):
    out = []
    for n in range(max_len + 1):
        out.extend(itertools.product(ALPHABET, repeat=n))
    return out


WORDS = sample_words()


@settings(max_examples=60, deadline=None)
@given(regexes())
def test_nfa_agrees_with_derivative_matcher(regex):
    nfa = from_regex(regex)
    for word in WORDS:
        assert nfa.accepts(word) == rx.matches_brute(regex, word)


@settings(max_examples=40, deadline=None)
@given(regexes())
def test_determinize_and_minimize_preserve_language(regex):
    nfa = from_regex(regex)
    dfa = nfa.determinize(frozenset(ALPHABET))
    minimal = dfa.minimized()
    for word in WORDS:
        expected = rx.matches_brute(regex, word)
        assert dfa.accepts(word) == expected
        assert minimal.accepts(word) == expected


@settings(max_examples=30, deadline=None)
@given(regexes())
def test_state_elimination_roundtrip(regex):
    dfa = regex_to_dfa(regex, frozenset(ALPHABET))
    back = dfa_to_regex(dfa)
    dfa2 = regex_to_dfa(back, frozenset(ALPHABET))
    for word in WORDS:
        assert dfa.accepts(word) == dfa2.accepts(word)


@settings(max_examples=30, deadline=None)
@given(regexes(), regexes())
def test_boolean_algebra(r1, r2):
    a = regex_to_dfa(r1, frozenset(ALPHABET))
    b = regex_to_dfa(r2, frozenset(ALPHABET))
    inter = a.intersect(b)
    union = a.union(b)
    diff = a.difference(b)
    comp = a.complement(frozenset(ALPHABET))
    for word in WORDS:
        in_a, in_b = a.accepts(word), b.accepts(word)
        assert inter.accepts(word) == (in_a and in_b)
        assert union.accepts(word) == (in_a or in_b)
        assert diff.accepts(word) == (in_a and not in_b)
        assert comp.accepts(word) == (not in_a)


@settings(max_examples=30, deadline=None)
@given(regexes(), regexes())
def test_inclusion_consistent_with_membership(r1, r2):
    a = regex_to_dfa(r1, frozenset(ALPHABET))
    b = regex_to_dfa(r2, frozenset(ALPHABET))
    if b.includes(a):  # L(a) ⊆ L(b)
        for word in WORDS:
            if a.accepts(word):
                assert b.accepts(word)


@settings(max_examples=30, deadline=None)
@given(regexes())
def test_emptiness_and_shortest_word_agree(regex):
    dfa = regex_to_dfa(regex, frozenset(ALPHABET))
    shortest = dfa.shortest_word()
    if shortest is None:
        assert dfa.is_empty()
        for word in WORDS:
            assert not dfa.accepts(word)
    else:
        assert dfa.accepts(shortest)
        # No accepted sampled word is shorter.
        for word in WORDS:
            if dfa.accepts(word):
                assert len(word) >= len(shortest)
                break
