"""Admission control: token buckets and the queue-depth gate.

Clock-injected, so the token schedule is checked exactly — including
the ``retry_after`` arithmetic the ``overloaded`` protocol response is
built from.
"""

import pytest

from repro.service.admission import AdmissionController, TokenBucket

pytestmark = pytest.mark.service


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_is_available_immediately(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_empty_bucket_reports_exact_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire() == 0.0
        # One token at 2/s is half a second away.
        assert bucket.try_acquire() == pytest.approx(0.5)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        clock.advance(0.5)  # one token back
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_default_burst_covers_low_rates(self):
        # rate 0.1/s still admits one request up front.
        bucket = TokenBucket(rate=0.1, clock=FakeClock())
        assert bucket.burst == 1.0
        assert bucket.try_acquire() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_admits_below_the_limit(self):
        gate = AdmissionController(max_pending=4)
        assert gate.admit(0) is None
        assert gate.admit(3) is None
        assert gate.shed == 0

    def test_sheds_at_the_limit(self):
        gate = AdmissionController(max_pending=4, base_retry_after=0.25)
        assert gate.admit(4) == pytest.approx(0.25)
        assert gate.shed == 1

    def test_retry_after_scales_with_overshoot(self):
        gate = AdmissionController(max_pending=4, base_retry_after=0.25)
        light = gate.admit(4)
        heavy = gate.admit(8)  # 100% overshoot doubles the hint
        assert heavy == pytest.approx(2 * light)

    def test_retry_after_is_capped(self):
        gate = AdmissionController(
            max_pending=1, base_retry_after=1.0, max_retry_after=5.0
        )
        assert gate.admit(10_000) == 5.0

    def test_shed_counter_accumulates(self):
        gate = AdmissionController(max_pending=1)
        for depth in (1, 2, 3):
            gate.admit(depth)
        assert gate.shed == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
