"""The service CLI surface and the exit-code contract.

The contract (docs/RESILIENCE.md) must hold identically whether a
verdict comes from a one-shot ``analyze`` or from ``submit`` against a
daemon: 0 safe, 2 attack, 4 degraded, 130 interrupted.
"""

import os
import subprocess
import sys

import pytest

from repro.cli import EXIT_USAGE, build_parser, main
from repro.perf import runtime
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, parse_spec
from repro.service import AnalysisDaemon, ServiceClient
from repro.service.client import wait_for_service
from repro.service.protocol import unix_supported

SAFE_SRC = """
proc check(secret pin: int, public attempts: uint): int {
    var i: int = 0;
    while (i < attempts) { i = i + 1; }
    return i;
}
"""

LEAKY_SRC = """
proc check(secret pin: int, public attempts: uint): bool {
    if (pin == 1234) {
        var i: int = 0;
        while (i < attempts) { i = i + 1; }
        return true;
    }
    return false;
}
"""


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture
def sources(tmp_path):
    safe = tmp_path / "safe.rp"
    safe.write_text(SAFE_SRC)
    leaky = tmp_path / "leaky.rp"
    leaky.write_text(LEAKY_SRC)
    return {"safe": str(safe), "leaky": str(leaky)}


@pytest.fixture
def daemon(tmp_path):
    address = (
        "unix:%s" % (tmp_path / "svc.sock")
        if unix_supported()
        else "tcp:127.0.0.1:0"
    )
    d = AnalysisDaemon(address, workers=1).start()
    yield d
    d.stop()


class TestVersionAndUsage:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_no_subcommand_prints_help_and_exits_2(self, capsys):
        assert main([]) == EXIT_USAGE
        err = capsys.readouterr().err
        assert "usage:" in err and "analyze" in err and "serve" in err

    @pytest.mark.parametrize("value", ["0", "-1", "two"])
    def test_serve_rejects_bad_worker_counts(self, value, capsys):
        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(["serve", "--workers", value])
        assert info.value.code == 2
        assert "workers must be" in capsys.readouterr().err

    def test_table1_jobs_still_allows_zero(self):
        args = build_parser().parse_args(["table1", "--jobs", "0"])
        assert args.jobs == 0

    @pytest.mark.parametrize("value", ["-1", "many"])
    def test_table1_rejects_bad_jobs(self, value, capsys):
        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(["table1", "--jobs", value])
        assert info.value.code == 2
        assert "jobs must be" in capsys.readouterr().err


def _argv(mode, sources, daemon, case):
    """Build the analyze/submit argv for one contract row."""
    argv = [mode, sources["leaky" if case == "attack" else "safe"]]
    if mode == "submit":
        argv += ["--connect", daemon.address]
    if case == "attack":
        argv += ["--observer", "threshold"]
    elif case == "degraded":
        argv += ["--max-steps", "1"]
    return argv


class TestExitCodeContract:
    @pytest.mark.parametrize("mode", ["analyze", "submit"])
    @pytest.mark.parametrize(
        "case,expected", [("safe", 0), ("attack", 2), ("degraded", 4)]
    )
    def test_verdict_exit_codes(self, mode, case, expected, sources, daemon):
        assert main(_argv(mode, sources, daemon, case)) == expected

    def test_analyze_interrupt_exits_130(self, sources):
        # Earlier tests in this class analyze the same source in-process,
        # warming the process-global shared-bound tier — a cache hit
        # would skip the engine and the injected interrupt would never
        # fire, so this fault-site test must start cold.
        runtime.clear_caches()
        faults.install(FaultPlan([parse_spec("engine.step:interrupt")]))
        assert main(["analyze", sources["safe"]]) == 130

    def test_submit_interrupt_exits_130(self, sources, monkeypatch):
        monkeypatch.setattr(ServiceClient, "connect", lambda self: self)
        monkeypatch.setattr(
            ServiceClient,
            "submit",
            lambda self, *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        assert main(["submit", sources["safe"], "--connect", "unused.sock"]) == 130

    def test_submit_without_daemon_exits_1(self, sources, tmp_path, capsys):
        address = "unix:%s" % (tmp_path / "nothing.sock")
        assert main(["submit", sources["safe"], "--connect", address]) == 1
        assert "error:" in capsys.readouterr().err

    def test_submit_failed_job_exits_1(self, sources, daemon, capsys):
        faults.install(FaultPlan([parse_spec("worker.run:error:match=check")]))
        assert (
            main(["submit", sources["safe"], "--connect", daemon.address]) == 1
        )
        assert "failed" in capsys.readouterr().err


class TestStatusCommand:
    def test_overview_and_stats(self, sources, daemon, capsys):
        assert main(["submit", sources["safe"], "--connect", daemon.address]) == 0
        capsys.readouterr()
        assert main(["status", "--connect", daemon.address]) == 0
        out = capsys.readouterr().out
        assert "1 worker(s)" in out and "job-1 done" in out
        assert main(["status", "--connect", daemon.address, "--stats"]) == 0
        assert "executed: 1" in capsys.readouterr().out

    def test_single_job_and_json(self, sources, daemon, capsys):
        main(["submit", sources["safe"], "--connect", daemon.address])
        capsys.readouterr()
        assert main(["status", "--connect", daemon.address, "--job", "job-1"]) == 0
        assert capsys.readouterr().out.startswith("job-1 done")
        assert main(["status", "--connect", daemon.address, "--json"]) == 0
        assert '"ok": true' in capsys.readouterr().out

    def test_shutdown_flag(self, daemon, capsys):
        assert main(["status", "--connect", daemon.address, "--shutdown"]) == 0
        assert "stopping" in capsys.readouterr().out


@pytest.mark.service
class TestServiceSmoke:
    """Boot the real ``repro serve`` process and run the Fig. 1 login
    pair through it — the docs/SERVICE.md quick-start, verbatim."""

    def test_login_pair_round_trip(self, tmp_path):
        from repro.benchsuite.literature import LOGIN_SAFE, LOGIN_UNSAFE

        safe = tmp_path / "login_safe.rp"
        safe.write_text(LOGIN_SAFE)
        unsafe = tmp_path / "login_unsafe.rp"
        unsafe.write_text(LOGIN_UNSAFE)
        address = (
            "unix:%s" % (tmp_path / "svc.sock")
            if unix_supported()
            else "tcp:127.0.0.1:7391"
        )
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(main.__code__.co_filename)))
        env = dict(os.environ, PYTHONPATH=src_dir)
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                address,
                "--workers",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            wait_for_service(address, timeout=15.0)
            base = ["--connect", address]
            assert main(["submit", str(safe)] + base) == 0
            assert main(["submit", str(unsafe)] + base) == 2
            # The second identical submission must be a cache hit.
            with ServiceClient(address) as client:
                reply = client.submit(
                    LOGIN_SAFE,
                    observer="degree",
                    threshold=25_000,
                    max_input=4096,
                    max_bits=4096,
                    domain="zone",
                    wait=True,
                )
                assert reply["cached"] in ("memory", "disk")
                stats = client.stats()
                assert stats["executed"] == 2
                assert stats["hits_memory"] + stats["hits_disk"] >= 1
                client.shutdown()
            server.wait(timeout=15.0)
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()
