"""The blocking client's robustness contract against scripted daemons.

A tiny scripted unix-socket server plays the daemon: each accepted
connection runs one behavior (answer, answer-overloaded, hang up).
Sleeps are captured, never slept, so the backoff and ``retry_after``
arithmetic is asserted exactly.
"""

import json
import random
import socket
import threading

import pytest

from repro.service.client import (
    RETRY_BACKOFF,
    RETRY_BACKOFF_CAP,
    ServiceClient,
)
from repro.service.protocol import unix_supported
from repro.util.errors import ServiceError, ServiceOverloaded

pytestmark = [
    pytest.mark.service,
    pytest.mark.skipif(
        not unix_supported(), reason="scripted server uses unix sockets"
    ),
]


class ScriptedServer:
    """Serves one connection per scripted behavior, in order.

    A behavior is a list of response dicts for successive requests on
    that connection; the string ``"hangup"`` closes the connection
    after reading a request without answering (the mid-request drop).
    """

    def __init__(self, tmp_path, script):
        self.path = str(tmp_path / "scripted.sock")
        self.script = list(script)
        self.requests = []
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(self.path)
        self._sock.listen(8)
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def address(self):
        return "unix:%s" % self.path

    def _serve(self):
        for behavior in self.script:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                wire = conn.makefile("rwb")
                try:
                    steps = behavior if isinstance(behavior, list) else [behavior]
                    for step in steps:
                        line = wire.readline()
                        if not line:
                            break
                        self.requests.append(json.loads(line))
                        if step == "hangup":
                            break
                        wire.write((json.dumps(step) + "\n").encode("utf-8"))
                        wire.flush()
                finally:
                    # makefile() keeps the fd alive past ``with conn`` —
                    # close it so the peer sees EOF when we hang up.
                    wire.close()

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=2)


def _client(address, script_sleeps, retries=2, seed=7):
    return ServiceClient(
        address,
        retries=retries,
        sleep=script_sleeps.append,
        rng=random.Random(seed),
    )


class TestConnectFailures:
    def test_dead_daemon_fails_fast_after_bounded_retries(self, tmp_path):
        sleeps = []
        client = _client("unix:%s/nothing.sock" % tmp_path, sleeps, retries=2)
        with pytest.raises(ServiceError):
            client.ping()
        # Two retries -> two backoff sleeps, exponential and capped.
        assert len(sleeps) == 2
        assert 0 < sleeps[0] <= RETRY_BACKOFF
        assert sleeps[1] <= min(2 * RETRY_BACKOFF, RETRY_BACKOFF_CAP)

    def test_zero_retries_raise_immediately(self, tmp_path):
        sleeps = []
        client = _client("unix:%s/nothing.sock" % tmp_path, sleeps, retries=0)
        with pytest.raises(ServiceError):
            client.ping()
        assert sleeps == []


class TestTransportRetry:
    def test_mid_request_hangup_reconnects_and_succeeds(self, tmp_path):
        server = ScriptedServer(
            tmp_path,
            ["hangup", [{"ok": True, "op": "ping"}]],
        )
        try:
            sleeps = []
            client = _client(server.address, sleeps)
            assert client.ping()["ok"]
            assert len(sleeps) == 1  # one drop, one backoff, one success
            assert len(server.requests) == 2  # the request was resent
        finally:
            client.close()
            server.close()

    def test_persistent_hangups_exhaust_the_budget(self, tmp_path):
        server = ScriptedServer(tmp_path, ["hangup", "hangup", "hangup"])
        try:
            sleeps = []
            client = _client(server.address, sleeps, retries=2)
            with pytest.raises(ServiceError):
                client.ping()
            assert len(sleeps) == 2
        finally:
            client.close()
            server.close()


class TestOverloadRetry:
    def test_overloaded_then_ok_honors_retry_after_floor(self, tmp_path):
        server = ScriptedServer(
            tmp_path,
            [
                [
                    {
                        "ok": False,
                        "overloaded": True,
                        "retry_after": 0.7,
                        "error": "overloaded",
                    },
                    {"ok": True, "op": "ping"},
                ]
            ],
        )
        try:
            sleeps = []
            client = _client(server.address, sleeps)
            assert client.ping()["ok"]
            # The daemon's hint is a floor under the jittered backoff.
            assert len(sleeps) == 1
            assert sleeps[0] >= 0.7
        finally:
            client.close()
            server.close()

    def test_exhausted_overload_budget_raises_typed_error(self, tmp_path):
        shed = {
            "ok": False,
            "overloaded": True,
            "retry_after": 0.3,
            "error": "rate limited",
        }
        server = ScriptedServer(tmp_path, [[shed, shed, shed]])
        try:
            sleeps = []
            client = _client(server.address, sleeps, retries=2)
            with pytest.raises(ServiceOverloaded) as excinfo:
                client.ping()
            assert excinfo.value.retry_after == 0.3
            assert all(s >= 0.3 for s in sleeps)
        finally:
            client.close()
            server.close()

    def test_plain_error_is_not_retried(self, tmp_path):
        server = ScriptedServer(
            tmp_path, [[{"ok": False, "error": "unknown op 'frob'"}]]
        )
        try:
            sleeps = []
            client = _client(server.address, sleeps)
            with pytest.raises(ServiceError, match="unknown op"):
                client.ping()
            assert sleeps == []
        finally:
            client.close()
            server.close()


class TestBackoffSchedule:
    def test_backoff_is_capped_and_jittered(self):
        sleeps = []
        client = ServiceClient(
            "unix:/tmp/unused.sock",
            sleep=sleeps.append,
            rng=random.Random(3),
        )
        for attempt in range(1, 10):
            client._backoff(attempt)
        assert max(sleeps) <= RETRY_BACKOFF_CAP
        # Jitter keeps retries from synchronizing: not all equal.
        assert len({round(s, 6) for s in sleeps}) > 1

    def test_floor_dominates_small_backoffs(self):
        sleeps = []
        client = ServiceClient(
            "unix:/tmp/unused.sock",
            sleep=sleeps.append,
            rng=random.Random(3),
        )
        client._backoff(1, floor=5.0)
        assert sleeps[0] >= 5.0
