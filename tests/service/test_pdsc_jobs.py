"""The ``pdsc`` job kind: fingerprinting and worker dispatch."""

import pytest

from repro.service.jobs import intake_payload, job_key
from repro.service.worker import execute_job
from repro.util.errors import AnalysisError, ReproError

SRC = """
proc check(secret pin: int, public attempts: uint): int {
    var i: int = 0;
    while (i < attempts) { i = i + 1; }
    return i;
}
"""


class TestPdscJobKey:
    def test_kind_separates_fingerprints(self):
        # The same source under a different analysis is different work;
        # serving an analyze verdict for a pdsc request would be wrong.
        assert job_key({"source": SRC, "kind": "pdsc"}) != job_key({"source": SRC})

    def test_explicit_analyze_kind_coalesces_with_the_default(self):
        # Back-compat: pre-existing analyze fingerprints must not shift
        # now that payloads carry a kind discriminator.
        assert job_key({"source": SRC, "kind": "analyze"}) == job_key(
            {"source": SRC}
        )

    def test_pdsc_knobs_separate_keys(self):
        base = job_key({"source": SRC, "kind": "pdsc"})
        assert job_key({"source": SRC, "kind": "pdsc", "epsilon": 5}) != base
        assert (
            job_key({"source": SRC, "kind": "pdsc", "max_refinements": 9}) != base
        )
        assert job_key({"source": SRC, "kind": "pdsc", "max_pairs": 7}) != base

    def test_analyze_only_knobs_do_not_leak_into_pdsc_keys(self):
        base = job_key({"source": SRC, "kind": "pdsc"})
        assert job_key({"source": SRC, "kind": "pdsc", "observer": "threshold"}) == base

    def test_unknown_kind_is_rejected_at_submit_time(self):
        with pytest.raises(ReproError, match="kind"):
            job_key({"source": SRC, "kind": "frobnicate"})


class TestWireIntake:
    """Both front ends build job payloads through intake_payload; a
    submit message's kind and kind-specific knobs must survive it."""

    def test_pdsc_message_keeps_kind_and_pdsc_knobs(self):
        message = {
            "op": "submit",
            "source": SRC,
            "kind": "pdsc",
            "epsilon": 16,
            "max_pairs": 500,
            "wait": True,
            "priority": 3,
        }
        payload = intake_payload(message)
        assert payload["kind"] == "pdsc"
        assert payload["epsilon"] == 16
        assert payload["max_pairs"] == 500
        # Transport fields never reach the fingerprint.
        assert "op" not in payload and "wait" not in payload
        assert "priority" not in payload
        # And the payload fingerprints as a pdsc job, not an analyze.
        assert job_key(payload) != job_key({"source": SRC})

    def test_analyze_message_intake_is_unchanged(self):
        message = {"op": "submit", "source": SRC, "observer": "threshold"}
        payload = intake_payload(message)
        assert payload == {"source": SRC, "observer": "threshold"}

    def test_pdsc_intake_drops_analyze_only_knobs(self):
        payload = intake_payload(
            {"source": SRC, "kind": "pdsc", "observer": "threshold"}
        )
        assert "observer" not in payload

    def test_unknown_kind_passes_through_for_canonical_rejection(self):
        payload = intake_payload({"source": SRC, "kind": "frobnicate"})
        assert payload["kind"] == "frobnicate"
        with pytest.raises(ReproError, match="kind"):
            job_key(payload)


class TestPdscDispatch:
    def test_pdsc_job_executes_and_reports_the_verdict(self):
        record = execute_job({"source": SRC, "kind": "pdsc", "epsilon": 16})
        assert record["kind"] == "pdsc"
        assert record["proc"] == "check"
        assert record["status"] == "safe"
        assert record["outcome"] == "verified"
        assert record["digest"]

    def test_pdsc_digest_is_deterministic(self):
        payload = {"source": SRC, "kind": "pdsc", "epsilon": 16}
        assert execute_job(payload)["digest"] == execute_job(payload)["digest"]

    def test_analyze_dispatch_is_unchanged(self):
        record = execute_job({"source": SRC})
        assert record.get("kind", "analyze") != "pdsc"
        assert "status" in record

    def test_unknown_kind_fails_loudly_at_execution(self):
        with pytest.raises(AnalysisError, match="kind"):
            execute_job({"source": SRC, "kind": "frobnicate"})
