"""The daemon end to end: coalescing, persistence, crash isolation.

These run the real socket server in-process (daemon threads) against
real Blazer analyses of tiny programs, so they exercise the acceptance
path of docs/SERVICE.md: one execution for concurrent identical
submissions, disk-tier hits across restarts, and injected worker faults
failing exactly one job.
"""

import threading

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultPlan, parse_spec
from repro.service import AnalysisDaemon, ServiceClient
from repro.service.protocol import unix_supported
from repro.service.store import ResultStore, cacheable

SAFE_SRC = """
proc check(secret pin: int, public attempts: uint): int {
    var i: int = 0;
    while (i < attempts) { i = i + 1; }
    return i;
}
"""

LEAKY_SRC = """
proc check(secret pin: int, public attempts: uint): bool {
    if (pin == 1234) {
        var i: int = 0;
        while (i < attempts) { i = i + 1; }
        return true;
    }
    return false;
}
"""

FILLER_SRC = "proc filler(public x: int): int { return x; }\n"
BOOM_SRC = "proc boom(public x: int): int { return x; }\n"


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


def _address(tmp_path):
    if unix_supported():
        return "unix:%s" % (tmp_path / "svc.sock")
    return "tcp:127.0.0.1:0"  # pragma: no cover - non-POSIX


@pytest.fixture
def daemon(tmp_path):
    started = []

    def boot(**kwargs):
        d = AnalysisDaemon(_address(tmp_path), **kwargs).start()
        started.append(d)
        return d

    yield boot
    for d in started:
        d.stop()


class TestBasics:
    def test_ping_status_stats(self, daemon):
        d = daemon(workers=1)
        with ServiceClient(d.address) as client:
            assert client.ping()["ok"]
            status = client.status()
            assert status["workers"] == 1
            assert status["queue_depth"] == 0
            stats = client.stats()
            assert stats["submitted"] == 0
            assert stats["uptime_seconds"] >= 0

    def test_submit_and_result_verbs(self, daemon):
        d = daemon(workers=1)
        with ServiceClient(d.address) as client:
            reply = client.submit(SAFE_SRC, wait=True)
            assert reply["state"] == "done"
            assert reply["result"]["status"] == "safe"
            again = client.result(reply["job"])
            assert again["result"]["digest"] == reply["result"]["digest"]

    def test_memory_hit_on_resubmission(self, daemon):
        d = daemon(workers=1)
        with ServiceClient(d.address) as client:
            first = client.submit(SAFE_SRC, wait=True)
            second = client.submit(SAFE_SRC, wait=True)
            assert second["cached"] == "memory"
            assert second["result"]["digest"] == first["result"]["digest"]
            assert client.stats()["executed"] == 1

    def test_bad_program_rejected_at_submit(self, daemon):
        d = daemon(workers=1)
        with ServiceClient(d.address) as client:
            response = client.request({"op": "submit", "source": "proc oops("})
            assert response["ok"] is False
            assert client.stats()["executed"] == 0

    def test_unknown_op_rejected(self, daemon):
        d = daemon(workers=1)
        with ServiceClient(d.address) as client:
            response = client.request({"op": "frobnicate"})
            assert response["ok"] is False
            assert "unknown op" in response["error"]

    def test_tcp_address_reports_bound_port(self):
        d = AnalysisDaemon("tcp:127.0.0.1:0", workers=1).start()
        try:
            assert not d.address.endswith(":0")
            with ServiceClient(d.address) as client:
                assert client.ping()["ok"]
        finally:
            d.stop()


class TestCoalescing:
    def test_concurrent_identical_submissions_run_once(self, daemon):
        """Acceptance: two concurrent identical submissions → exactly one
        Blazer execution, digest-identical verdicts for both."""
        d = daemon(workers=1)
        # Pin the single worker on a filler job long enough for both
        # real submissions to be in flight together.
        faults.install(FaultPlan([parse_spec("worker.run:delay=0.8:match=filler")]))
        with ServiceClient(d.address) as warm:
            warm.submit(FILLER_SRC, wait=False)
        replies = []

        def submit():
            with ServiceClient(d.address) as client:
                replies.append(client.submit(SAFE_SRC, wait=True))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert len(replies) == 2
        assert all(r["state"] == "done" for r in replies)
        digests = {r["result"]["digest"] for r in replies}
        assert len(digests) == 1
        assert replies[0]["job"] == replies[1]["job"]
        with ServiceClient(d.address) as client:
            stats = client.stats()
        assert stats["executed"] == 2  # filler + ONE coalesced execution
        assert stats["coalesced"] == 1

    def test_coalesced_job_counts_waiters(self, daemon):
        d = daemon(workers=1)
        faults.install(FaultPlan([parse_spec("worker.run:delay=0.8:match=filler")]))
        with ServiceClient(d.address) as client:
            client.submit(FILLER_SRC, wait=False)
            first = client.submit(SAFE_SRC, wait=False)
            second = client.submit(SAFE_SRC, wait=False)
            assert first["job"] == second["job"]
            assert second["coalesced"] is True
            assert second["waiters"] == 2
            final = client.result(first["job"], wait=True, wait_timeout=30.0)
            assert final["state"] == "done"


class TestPersistence:
    def test_restart_serves_from_disk_without_rerunning(self, daemon, tmp_path):
        """Acceptance: after a daemon restart, resubmission is served
        from the persistent cache tier with zero executions."""
        cache_dir = str(tmp_path / "cache")
        d1 = daemon(workers=1, cache_dir=cache_dir)
        with ServiceClient(d1.address) as client:
            first = client.submit(SAFE_SRC, wait=True)
            assert first["state"] == "done"
        d1.stop()

        d2 = daemon(workers=1, cache_dir=cache_dir)
        with ServiceClient(d2.address) as client:
            second = client.submit(SAFE_SRC, wait=True)
            assert second["cached"] == "disk"
            assert second["result"]["digest"] == first["result"]["digest"]
            stats = client.stats()
            assert stats["executed"] == 0
            assert stats["hits_disk"] == 1

    def test_degraded_results_are_not_cached(self, daemon, tmp_path):
        d = daemon(workers=1, cache_dir=str(tmp_path / "cache"))
        with ServiceClient(d.address) as client:
            first = client.submit(SAFE_SRC, wait=True, max_steps=1)
            assert first["result"]["degraded"] is True
            second = client.submit(SAFE_SRC, wait=True, max_steps=1)
            assert second.get("cached") is None  # re-analyzed, not served stale
            assert client.stats()["executed"] == 2


class TestCrashIsolation:
    def test_injected_fault_fails_only_that_job(self, daemon):
        """Acceptance: a worker.run fault fails the affected job while
        the daemon keeps serving everything else."""
        d = daemon(workers=1)
        faults.install(FaultPlan([parse_spec("worker.run:error:match=boom")]))
        with ServiceClient(d.address) as client:
            doomed = client.submit(BOOM_SRC, wait=True)
            assert doomed["state"] == "failed"
            assert "InjectedFault" in doomed["error"]
            healthy = client.submit(SAFE_SRC, wait=True)
            assert healthy["state"] == "done"
            assert healthy["result"]["status"] == "safe"
            stats = client.stats()
            assert stats["failed"] == 1 and stats["completed"] == 1
            assert client.ping()["ok"]

    def test_failed_jobs_are_not_cached(self, daemon):
        d = daemon(workers=1)
        faults.install(FaultPlan([parse_spec("worker.run:error:once:match=boom")]))
        with ServiceClient(d.address) as client:
            assert client.submit(BOOM_SRC, wait=True)["state"] == "failed"
            # The fault was once-only: a resubmission re-executes (no
            # poisoned cache entry) and succeeds.
            retry = client.submit(BOOM_SRC, wait=True)
            assert retry["state"] == "done"
            assert retry.get("cached") is None

    def test_retry_policy_heals_transient_faults(self, daemon):
        d = daemon(workers=1, retries=1)
        faults.install(FaultPlan([parse_spec("worker.run:error:once:match=boom")]))
        with ServiceClient(d.address) as client:
            reply = client.submit(BOOM_SRC, wait=True)
            assert reply["state"] == "done"
            assert reply["attempts"] == 2
            assert client.stats()["retried"] == 1

    def test_process_isolation_survives_real_worker_crash(
        self, daemon, monkeypatch
    ):
        """Acceptance, the hard way: REPRO_FAULTS worker.run:crash makes
        the pool worker ``os._exit`` mid-job.  The job fails as a
        WorkerCrashed, the pool is rebuilt, the daemon keeps serving."""
        from repro.perf.parallel import process_pool_usable

        if not process_pool_usable():
            pytest.skip("process pools unusable on this platform")
        monkeypatch.setenv("REPRO_FAULTS", "worker.run:crash:match=boom")
        d = daemon(workers=1, isolation="process")
        with ServiceClient(d.address) as client:
            doomed = client.submit(BOOM_SRC, wait=True)
            assert doomed["state"] == "failed"
            assert "WorkerCrashed" in doomed["error"]
            healthy = client.submit(SAFE_SRC, wait=True)
            assert healthy["state"] == "done"
            assert healthy["result"]["status"] == "safe"

    def test_retries_under_process_isolation_stay_in_the_pool(
        self, daemon, monkeypatch
    ):
        """A job that crashes its worker on *every* attempt consumes its
        retries inside the pool: each attempt kills a pool worker, the
        job settles as WorkerCrashed, the daemon survives.  (Retries
        must never fall back to in-daemon execution — here that would
        ``os._exit`` the daemon itself.)"""
        from repro.perf.parallel import process_pool_usable

        if not process_pool_usable():
            pytest.skip("process pools unusable on this platform")
        monkeypatch.setenv("REPRO_FAULTS", "worker.run:crash:match=boom")
        d = daemon(workers=1, isolation="process", retries=1)
        with ServiceClient(d.address) as client:
            doomed = client.submit(BOOM_SRC, wait=True)
            assert doomed["state"] == "failed"
            assert "WorkerCrashed" in doomed["error"]
            healthy = client.submit(SAFE_SRC, wait=True)
            assert healthy["state"] == "done"
            stats = client.stats()
            # Both attempts of the doomed job executed through the pool
            # path, plus the healthy job: three pool executions.
            assert stats["executed"] == 3
            assert stats["retried"] == 1

    def test_interrupt_fault_fails_job_not_daemon(self, daemon):
        d = daemon(workers=1)
        faults.install(FaultPlan([parse_spec("worker.run:interrupt:match=boom")]))
        with ServiceClient(d.address) as client:
            doomed = client.submit(BOOM_SRC, wait=True)
            assert doomed["state"] == "failed"
            assert client.ping()["ok"]


class TestShutdown:
    def test_shutdown_verb_stops_daemon(self, daemon):
        d = daemon(workers=1)
        with ServiceClient(d.address) as client:
            assert client.shutdown()["stopping"] is True
        deadline = threading.Event()
        deadline.wait(0.1)
        d.stop()  # idempotent with the wire-initiated stop
        assert not d.running


class TestResultStore:
    def test_memory_then_disk_promotion(self, tmp_path):
        path = str(tmp_path / "verdicts.jsonl")
        store = ResultStore(path)
        store.put("k", {"status": "safe", "degraded": False})
        fresh = ResultStore(path)
        result, tier = fresh.get("k")
        assert tier == "disk" and result["status"] == "safe"
        _, tier2 = fresh.get("k")
        assert tier2 == "memory"  # promoted on first disk hit

    def test_degraded_results_dropped(self, tmp_path):
        store = ResultStore(str(tmp_path / "verdicts.jsonl"))
        assert store.put("k", {"status": "unknown", "degraded": True}) is False
        assert store.get("k") == (None, None)
        assert not cacheable({"degraded": True})
        assert cacheable({"status": "safe", "degraded": False})

    def test_memory_only_store(self):
        store = ResultStore(None)
        store.put("k", {"status": "safe"})
        assert store.get("k")[1] == "memory"
        assert "disk_entries" not in store.stats()

    def test_memory_tier_is_a_bounded_lru(self, tmp_path):
        store = ResultStore(str(tmp_path / "verdicts.jsonl"), max_memory=2)
        store.put("a", {"status": "safe"})
        store.put("b", {"status": "safe"})
        assert store.get("a")[1] == "memory"  # refresh a
        store.put("c", {"status": "safe"})  # evicts b (LRU)
        assert store.stats()["memory_entries"] == 2
        assert store.get("a")[1] == "memory"
        # b was evicted from memory but persists on disk; the disk hit
        # promotes it back (evicting c, now the least recently used).
        assert store.get("b")[1] == "disk"
        assert store.stats()["memory_entries"] == 2
        assert store.get("c")[1] == "disk"

    def test_memory_only_lru_drops_oldest(self):
        store = ResultStore(None, max_memory=1)
        store.put("a", {"status": "safe"})
        store.put("b", {"status": "safe"})
        assert store.get("a") == (None, None)
        assert store.get("b")[1] == "memory"
