"""Job fingerprints and the coalescing priority queue."""

import threading

import pytest

from repro.service.jobs import Job, JobQueue, job_key
from repro.util.errors import ReproError

SRC = """
proc check(secret pin: int, public attempts: uint): int {
    var i: int = 0;
    while (i < attempts) { i = i + 1; }
    return i;
}
"""

# The same program, reformatted and commented — a different *request
# text*, the same *content*.
SRC_REFORMATTED = """
// totally different spelling
proc check(secret pin: int,
           public attempts: uint): int {
  var i: int = 0;
  while (i < attempts) {
      i = i + 1;
  }
  return i;  // same loop
}
"""


class TestJobKey:
    def test_stable(self):
        assert job_key({"source": SRC}) == job_key({"source": SRC})

    def test_formatting_and_comments_coalesce(self):
        assert job_key({"source": SRC}) == job_key({"source": SRC_REFORMATTED})

    def test_callee_bodies_are_part_of_the_key(self):
        """Same entry procedure, different callee implementation →
        different keys: the analysis reads callee bodies through
        interprocedural summaries, so serving one program's verdict for
        the other would be wrong."""
        caller = """
        proc main(secret s: int, public n: int): int { return helper(n); }
        """
        slow = "proc helper(public n: int): int { var i: int = 0; while (i < n) { i = i + 1; } return i; }\n"
        fast = "proc helper(public n: int): int { return n; }\n"
        key_slow = job_key({"source": slow + caller, "proc": "main"})
        key_fast = job_key({"source": fast + caller, "proc": "main"})
        assert key_slow != key_fast

    def test_unreachable_procs_do_not_change_the_key(self):
        """Procedures the entry point cannot reach are not part of its
        content — adding one still coalesces."""
        base = job_key({"source": SRC, "proc": "check"})
        extra = SRC + "\nproc unrelated(public x: int): int { return x; }\n"
        assert job_key({"source": extra, "proc": "check"}) == base

    def test_knobs_separate_keys(self):
        base = job_key({"source": SRC})
        assert job_key({"source": SRC, "deadline": 5.0}) != base
        assert job_key({"source": SRC, "observer": "threshold"}) != base
        assert job_key({"source": SRC, "domain": "interval"}) != base

    def test_none_knobs_are_absent_knobs(self):
        assert job_key({"source": SRC, "deadline": None}) == job_key({"source": SRC})

    def test_rejects_empty_source(self):
        with pytest.raises(ReproError, match="source"):
            job_key({"source": "   "})

    def test_rejects_malformed_program(self):
        with pytest.raises(ReproError):
            job_key({"source": "proc oops("})

    def test_rejects_unknown_proc(self):
        with pytest.raises(ReproError, match="no procedure"):
            job_key({"source": SRC, "proc": "nope"})


def _job(queue, key, priority=0):
    job, coalesced = queue.submit({"source": SRC}, key, priority=priority)
    return job, coalesced


class TestJobQueue:
    def test_fifo_within_priority(self):
        queue = JobQueue()
        a, _ = _job(queue, "a")
        b, _ = _job(queue, "b")
        assert queue.pop(timeout=0.1) is a
        assert queue.pop(timeout=0.1) is b

    def test_higher_priority_first(self):
        queue = JobQueue()
        _job(queue, "low", priority=0)
        urgent, _ = _job(queue, "urgent", priority=10)
        assert queue.pop(timeout=0.1) is urgent

    def test_coalescing_onto_queued_job(self):
        queue = JobQueue()
        a, coalesced_a = _job(queue, "same")
        b, coalesced_b = _job(queue, "same")
        assert a is b
        assert not coalesced_a and coalesced_b
        assert a.waiters == 2
        assert queue.coalesced == 1
        assert queue.depth() == 1  # one heap entry, not two

    def test_coalescing_onto_running_job(self):
        queue = JobQueue()
        a, _ = _job(queue, "same")
        assert queue.pop(timeout=0.1) is a  # now running
        b, coalesced = _job(queue, "same")
        assert b is a and coalesced

    def test_settled_jobs_do_not_absorb(self):
        queue = JobQueue()
        a, _ = _job(queue, "same")
        queue.pop(timeout=0.1)
        queue.finish(a, result={"status": "safe"})
        b, coalesced = _job(queue, "same")
        assert b is not a and not coalesced

    def test_finish_settles_and_signals(self):
        queue = JobQueue()
        a, _ = _job(queue, "a")
        queue.pop(timeout=0.1)
        queue.finish(a, error="boom")
        assert a.state == "failed" and a.settled and a.error == "boom"
        assert a.done.is_set()

    def test_pop_times_out(self):
        assert JobQueue().pop(timeout=0.05) is None

    def test_close_wakes_blocked_pop(self):
        queue = JobQueue()
        popped = []
        waiter = threading.Thread(target=lambda: popped.append(queue.pop()))
        waiter.start()
        queue.close()
        waiter.join(timeout=2.0)
        assert not waiter.is_alive()
        assert popped == [None]

    def test_closed_queue_rejects_submissions(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(ReproError, match="closed"):
            queue.submit({"source": SRC}, "k")

    def test_close_drains_queued_jobs_first(self):
        queue = JobQueue()
        a, _ = _job(queue, "a")
        queue.close()
        assert queue.pop(timeout=0.1) is a
        assert queue.pop(timeout=0.1) is None

    def test_settled_jobs_are_evicted_beyond_retention(self):
        queue = JobQueue(max_settled=2)
        jobs = []
        for name in ("a", "b", "c"):
            job, _ = _job(queue, name)
            queue.pop(timeout=0.1)
            queue.finish(job, result={"status": "safe"})
            jobs.append(job)
        # Oldest settled record evicted; the two newest remain.
        assert queue.get(jobs[0].id) is None
        assert queue.get(jobs[1].id) is jobs[1]
        assert queue.get(jobs[2].id) is jobs[2]
        # Eviction dropped only the queue's reference — the settled
        # object itself (a waiter's handle) is untouched.
        assert jobs[0].state == "done" and jobs[0].done.is_set()

    def test_active_jobs_never_evicted(self):
        queue = JobQueue(max_settled=1)
        active, _ = _job(queue, "active")  # stays queued throughout
        for name in ("a", "b", "c"):
            job, _ = _job(queue, name, priority=1)
            queue.pop(timeout=0.1)
            queue.finish(job, result={"status": "safe"})
        assert queue.get(active.id) is active

    def test_snapshot_is_json_shaped(self):
        job = Job(id="job-1", key="k", payload={"proc": "check"}, priority=2)
        snap = job.snapshot()
        assert snap["job"] == "job-1"
        assert snap["state"] == "queued"
        assert snap["proc"] == "check"
        assert snap["priority"] == 2
