"""Job fingerprints and the coalescing priority queue."""

import threading

import pytest

from repro.service.jobs import Job, JobQueue, job_key
from repro.util.errors import ReproError

SRC = """
proc check(secret pin: int, public attempts: uint): int {
    var i: int = 0;
    while (i < attempts) { i = i + 1; }
    return i;
}
"""

# The same program, reformatted and commented — a different *request
# text*, the same *content*.
SRC_REFORMATTED = """
// totally different spelling
proc check(secret pin: int,
           public attempts: uint): int {
  var i: int = 0;
  while (i < attempts) {
      i = i + 1;
  }
  return i;  // same loop
}
"""


class TestJobKey:
    def test_stable(self):
        assert job_key({"source": SRC}) == job_key({"source": SRC})

    def test_formatting_and_comments_coalesce(self):
        assert job_key({"source": SRC}) == job_key({"source": SRC_REFORMATTED})

    def test_knobs_separate_keys(self):
        base = job_key({"source": SRC})
        assert job_key({"source": SRC, "deadline": 5.0}) != base
        assert job_key({"source": SRC, "observer": "threshold"}) != base
        assert job_key({"source": SRC, "domain": "interval"}) != base

    def test_none_knobs_are_absent_knobs(self):
        assert job_key({"source": SRC, "deadline": None}) == job_key({"source": SRC})

    def test_rejects_empty_source(self):
        with pytest.raises(ReproError, match="source"):
            job_key({"source": "   "})

    def test_rejects_malformed_program(self):
        with pytest.raises(ReproError):
            job_key({"source": "proc oops("})

    def test_rejects_unknown_proc(self):
        with pytest.raises(ReproError, match="no procedure"):
            job_key({"source": SRC, "proc": "nope"})


def _job(queue, key, priority=0):
    job, coalesced = queue.submit({"source": SRC}, key, priority=priority)
    return job, coalesced


class TestJobQueue:
    def test_fifo_within_priority(self):
        queue = JobQueue()
        a, _ = _job(queue, "a")
        b, _ = _job(queue, "b")
        assert queue.pop(timeout=0.1) is a
        assert queue.pop(timeout=0.1) is b

    def test_higher_priority_first(self):
        queue = JobQueue()
        _job(queue, "low", priority=0)
        urgent, _ = _job(queue, "urgent", priority=10)
        assert queue.pop(timeout=0.1) is urgent

    def test_coalescing_onto_queued_job(self):
        queue = JobQueue()
        a, coalesced_a = _job(queue, "same")
        b, coalesced_b = _job(queue, "same")
        assert a is b
        assert not coalesced_a and coalesced_b
        assert a.waiters == 2
        assert queue.coalesced == 1
        assert queue.depth() == 1  # one heap entry, not two

    def test_coalescing_onto_running_job(self):
        queue = JobQueue()
        a, _ = _job(queue, "same")
        assert queue.pop(timeout=0.1) is a  # now running
        b, coalesced = _job(queue, "same")
        assert b is a and coalesced

    def test_settled_jobs_do_not_absorb(self):
        queue = JobQueue()
        a, _ = _job(queue, "same")
        queue.pop(timeout=0.1)
        queue.finish(a, result={"status": "safe"})
        b, coalesced = _job(queue, "same")
        assert b is not a and not coalesced

    def test_finish_settles_and_signals(self):
        queue = JobQueue()
        a, _ = _job(queue, "a")
        queue.pop(timeout=0.1)
        queue.finish(a, error="boom")
        assert a.state == "failed" and a.settled and a.error == "boom"
        assert a.done.is_set()

    def test_pop_times_out(self):
        assert JobQueue().pop(timeout=0.05) is None

    def test_close_wakes_blocked_pop(self):
        queue = JobQueue()
        popped = []
        waiter = threading.Thread(target=lambda: popped.append(queue.pop()))
        waiter.start()
        queue.close()
        waiter.join(timeout=2.0)
        assert not waiter.is_alive()
        assert popped == [None]

    def test_closed_queue_rejects_submissions(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(ReproError, match="closed"):
            queue.submit({"source": SRC}, "k")

    def test_close_drains_queued_jobs_first(self):
        queue = JobQueue()
        a, _ = _job(queue, "a")
        queue.close()
        assert queue.pop(timeout=0.1) is a
        assert queue.pop(timeout=0.1) is None

    def test_snapshot_is_json_shaped(self):
        job = Job(id="job-1", key="k", payload={"proc": "check"}, priority=2)
        snap = job.snapshot()
        assert snap["job"] == "job-1"
        assert snap["state"] == "queued"
        assert snap["proc"] == "check"
        assert snap["priority"] == 2
