"""The NDJSON wire protocol: framing, responses, addresses, sockets."""

import io
import socket

import pytest

from repro.service import protocol
from repro.util.errors import ProtocolError


class TestFraming:
    def test_round_trip(self):
        message = {"op": "submit", "source": "proc f() {}", "wait": True}
        line = protocol.encode_message(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert protocol.decode_message(line.strip()) == message

    def test_encoding_is_canonical(self):
        a = protocol.encode_message({"b": 1, "a": 2})
        b = protocol.encode_message({"a": 2, "b": 1})
        assert a == b

    def test_unencodable_message_raises(self):
        with pytest.raises(ProtocolError, match="unencodable"):
            protocol.encode_message({"op": object()})

    def test_garbage_line_raises(self):
        with pytest.raises(ProtocolError, match="malformed"):
            protocol.decode_message(b"{not json")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_message(b"[1, 2, 3]")

    def test_read_eof_is_none(self):
        wire = io.BytesIO(b"")
        assert protocol.read_message(wire) is None

    def test_read_blank_line_is_empty_dict(self):
        wire = io.BytesIO(b"\n")
        assert protocol.read_message(wire) == {}

    def test_read_write_pair(self):
        wire = io.BytesIO()
        protocol.send_message(wire, {"op": "ping"})
        wire.seek(0)
        assert protocol.read_message(wire) == {"op": "ping"}


class TestResponses:
    def test_ok_response(self):
        response = protocol.ok_response("stats", executed=3)
        assert response["ok"] is True
        assert response["op"] == "stats"
        assert response["v"] == protocol.PROTOCOL_VERSION
        assert response["executed"] == 3

    def test_error_response(self):
        response = protocol.error_response("submit", "bad program")
        assert response["ok"] is False
        assert response["error"] == "bad program"


class TestAddresses:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("unix:/tmp/x.sock", ("unix", "/tmp/x.sock")),
            ("/tmp/x.sock", ("unix", "/tmp/x.sock")),
            ("svc.sock", ("unix", "svc.sock")),
            ("tcp:127.0.0.1:9000", ("tcp", "127.0.0.1", 9000)),
            ("localhost:0", ("tcp", "localhost", 0)),
        ],
    )
    def test_parse(self, text, expected):
        assert protocol.parse_address(text) == expected

    @pytest.mark.parametrize(
        "text", ["", "unix:", "tcp:nohost", "tcp:h:notaport", "tcp:h:70000", "plain"]
    )
    def test_parse_rejects(self, text):
        with pytest.raises(ProtocolError):
            protocol.parse_address(text)

    def test_format_round_trips(self):
        for text in ("unix:/tmp/x.sock", "tcp:127.0.0.1:9000"):
            assert protocol.format_address(protocol.parse_address(text)) == text


class TestSockets:
    def test_tcp_bind_and_connect(self):
        server = protocol.bind_socket(("tcp", "127.0.0.1", 0))
        try:
            port = server.getsockname()[1]
            client = protocol.connect_socket(("tcp", "127.0.0.1", port), timeout=2.0)
            client.close()
        finally:
            server.close()

    @pytest.mark.skipif(
        not protocol.unix_supported(), reason="no AF_UNIX on this platform"
    )
    def test_unix_bind_and_connect(self, tmp_path):
        path = str(tmp_path / "svc.sock")
        server = protocol.bind_socket(("unix", path))
        try:
            client = protocol.connect_socket(("unix", path), timeout=2.0)
            client.close()
        finally:
            server.close()

    def test_connect_refused_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            protocol.connect_socket(("unix", str(tmp_path / "nothing.sock")))
