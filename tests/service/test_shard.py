"""Shards and the fingerprint router: stable homes, quarantine walks.

Thread isolation throughout — these are routing and lifecycle tests,
not pool-crash tests (the asyncio daemon tests and the loadgen chaos
runs cover real crashes).
"""

import pytest

from repro.service.jobs import job_key
from repro.service.shard import Shard, ShardManager

pytestmark = pytest.mark.service

SAFE_SRC = """
proc check(secret pin: int, public attempts: uint): int {
    var i: int = 0;
    while (i < attempts) { i = i + 1; }
    return i;
}
"""


@pytest.fixture
def manager():
    m = ShardManager(count=3, workers_per_shard=1, isolation="thread")
    yield m
    m.shutdown()


class TestShard:
    def test_thread_shard_executes_a_job(self):
        shard = Shard(0, isolation="thread")
        try:
            payload = {"source": SAFE_SRC, "proc": "check"}
            result = shard.submit(payload).result(timeout=60)
            assert result["status"] == "safe"
            assert shard.executed == 1
        finally:
            shard.shutdown()

    def test_rebuild_replaces_the_executor(self):
        shard = Shard(0, isolation="thread")
        try:
            first = shard.executor()
            shard.rebuild()
            assert shard.executor() is not first
            assert shard.rebuilds == 1
            # The fresh pool genuinely runs work.
            payload = {"source": SAFE_SRC, "proc": "check"}
            assert shard.submit(payload).result(timeout=60)["status"] == "safe"
        finally:
            shard.shutdown()

    def test_thread_shard_is_never_broken(self):
        shard = Shard(0, isolation="thread")
        try:
            shard.executor()
            assert shard.broken() is False
        finally:
            shard.shutdown()

    def test_snapshot_fields(self):
        shard = Shard(2, workers=1, isolation="thread")
        try:
            snap = shard.snapshot()
            assert snap["shard"] == 2
            assert snap["isolation"] == "thread"
            assert snap["state"] == "closed"
            assert snap["inflight"] == 0
            assert snap["rebuilds"] == 0
        finally:
            shard.shutdown()


class TestRouting:
    def test_home_is_stable(self, manager):
        key = job_key({"source": SAFE_SRC, "proc": "check"})
        homes = {manager.home(key).index for _ in range(10)}
        assert len(homes) == 1

    def test_route_prefers_the_home_shard(self, manager):
        key = job_key({"source": SAFE_SRC, "proc": "check"})
        assert manager.route(key) is manager.home(key)

    def test_route_walks_past_an_open_breaker(self, manager):
        key = job_key({"source": SAFE_SRC, "proc": "check"})
        home = manager.home(key)
        for _ in range(home.breaker.failure_threshold):
            home.breaker.record_failure()
        rerouted = manager.route(key)
        assert rerouted is not None
        assert rerouted is not home
        # The walk is deterministic: the next live index after home.
        expected = manager.shards[(home.index + 1) % manager.count]
        assert rerouted is expected
        assert manager.quarantined() == 1

    def test_route_none_when_all_quarantined(self, manager):
        key = job_key({"source": SAFE_SRC, "proc": "check"})
        for shard in manager.shards:
            for _ in range(shard.breaker.failure_threshold):
                shard.breaker.record_failure()
        assert manager.route(key) is None
        assert manager.quarantined() == manager.count

    def test_recovered_home_takes_its_range_back(self, manager):
        key = job_key({"source": SAFE_SRC, "proc": "check"})
        home = manager.home(key)
        for _ in range(home.breaker.failure_threshold):
            home.breaker.record_failure()
        assert manager.route(key) is not home
        home.breaker.force_probe()  # rebuild finished: probe trial
        assert manager.route(key) is home
        home.breaker.record_success()
        assert manager.route(key) is home

    def test_key_space_spreads_over_shards(self, manager):
        # Synthetic hex fingerprints cover every shard index.
        keys = ["%016x" % n for n in range(64)]
        indexes = {manager.home(k).index for k in keys}
        assert indexes == {0, 1, 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardManager(count=0)

    def test_prewarm_builds_every_executor(self, manager):
        manager.prewarm()
        for shard in manager.shards:
            assert shard._executor is not None
