"""The loadgen harness: workload, ledger audit, and small real runs.

The full-scale scenarios (1000 clients, chaos plans) live in
``benchmarks/bench_service.py`` and ``make smoke-service-load``; here
the same machinery runs at a size a unit-test budget tolerates, plus
pure-function tests of the audit itself.  Marked ``service_load`` so
the end-to-end runs can be selected (or skipped) as a tier.
"""

import pytest

from repro.resilience import faults
from repro.service.loadgen import (
    LoadgenConfig,
    build_workload,
    compute_expected,
    run_loadgen,
    verify_ledger,
    write_report,
)

pytestmark = [pytest.mark.service, pytest.mark.service_load]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


class TestWorkload:
    def test_mix_spans_benchmarks_and_generated(self):
        config = LoadgenConfig(generated=3)
        programs = build_workload(config)
        names = [p["name"] for p in programs]
        assert len(names) == len(set(names))
        assert len(programs) > 3  # micro benchmarks plus the generated
        assert sum(1 for p in programs if p["proc"] == "main") >= 3

    def test_expected_digests_are_deterministic(self):
        config = LoadgenConfig(generated=1)
        programs = build_workload(config)[:3]
        first = compute_expected(programs)
        second = compute_expected(programs)
        assert first == second
        for name, want in first.items():
            assert want["digest"]
            assert want["status"]


class TestVerifyLedger:
    def _report(self, **overrides):
        report = {
            "requests": 10,
            "requests_settled": 10,
            "requests_failed": 0,
            "requests_lost": 0,
            "wrong_digests": 0,
            "duplicate_entries": 0,
        }
        report.update(overrides)
        return report

    def test_clean_report_passes(self):
        assert verify_ledger(self._report(), faults_active=False) == []

    def test_lost_requests_are_violations(self):
        violations = verify_ledger(
            self._report(requests_settled=9, requests_lost=1),
            faults_active=True,
        )
        assert any("lost" in v for v in violations)

    def test_accounting_must_close(self):
        violations = verify_ledger(
            self._report(requests_settled=8), faults_active=False
        )
        assert any("accounts for" in v for v in violations)

    def test_wrong_digest_is_a_violation_even_under_faults(self):
        violations = verify_ledger(
            self._report(wrong_digests=2), faults_active=True
        )
        assert any("digest" in v for v in violations)

    def test_failures_need_an_active_fault_plan(self):
        report = self._report(requests_failed=3)
        assert verify_ledger(report, faults_active=True) == []
        assert any(
            "no fault plan" in v
            for v in verify_ledger(report, faults_active=False)
        )

    def test_duplicates_are_violations(self):
        violations = verify_ledger(
            self._report(duplicate_entries=1), faults_active=False
        )
        assert any("duplicate" in v for v in violations)


class TestSmallRuns:
    def test_clean_run_settles_everything(self, tmp_path):
        config = LoadgenConfig(
            clients=12,
            requests_per_client=2,
            shards=2,
            isolation="thread",
            generated=1,
            cache_dir=str(tmp_path / "cache"),
            deadline=60.0,
        )
        report = run_loadgen(config)
        assert report["ok"], report["violations"]
        assert report["requests_done"] == config.total_requests
        assert report["requests_failed"] == 0
        assert report["requests_lost"] == 0
        latency = report["latency_seconds"]
        assert latency["count"] == config.total_requests
        assert latency["p50"] is not None
        assert latency["p99"] >= latency["p50"]
        assert latency["histogram_p50"] is not None
        # Coalescing and the cache tiers absorb the duplicate mix.
        daemon = report["daemon"]
        assert daemon["executed"] < config.total_requests
        report_path = tmp_path / "report.json"
        write_report(report, str(report_path))
        assert report_path.exists()

    def test_chaos_run_loses_nothing(self, tmp_path):
        config = LoadgenConfig(
            clients=8,
            requests_per_client=2,
            shards=2,
            isolation="thread",
            generated=1,
            cache_dir=str(tmp_path / "cache"),
            faults="worker.run:delay=0.05:p=0.3,worker.run:error:once",
            deadline=60.0,
        )
        report = run_loadgen(config)
        assert report["ok"], report["violations"]
        assert report["requests_lost"] == 0
        assert report["wrong_digests"] == 0
        # The fault plan was active during the run and cleared after.
        assert report["faults"]
        assert faults.active() is None

    def test_rolling_restart_rides_through(self, tmp_path):
        config = LoadgenConfig(
            clients=8,
            requests_per_client=3,
            shards=2,
            isolation="thread",
            generated=1,
            cache_dir=str(tmp_path / "cache"),
            restart_after=6,
            deadline=90.0,
        )
        report = run_loadgen(config)
        assert report["ok"], report["violations"]
        assert report["restarts"] >= 1
        assert report["requests_lost"] == 0
        # The post-restart daemon answered some repeats from disk.
        assert report["daemon"]["hits_disk"] >= 0
