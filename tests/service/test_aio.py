"""The asyncio sharded tier end to end, on real sockets.

Each test boots a real :class:`AsyncAnalysisDaemon` inside
``asyncio.run`` (no pytest-asyncio in the toolchain) and talks to it
with the pipelining :class:`AsyncServiceClient`.  Thread-isolation
shards keep the tests cheap; crash *routing* is driven deterministically
by sabotaging ``Shard.submit``, and real process-pool crashes are the
loadgen chaos suite's business (``test_loadgen.py``).
"""

import asyncio

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultPlan, parse_spec
from repro.service.aio import AsyncAnalysisDaemon, AsyncJob
from repro.service.aioclient import AsyncServiceClient
from repro.service.protocol import unix_supported
from repro.util.errors import ServiceError

pytestmark = pytest.mark.service

SAFE_SRC = """
proc check(secret pin: int, public attempts: uint): int {
    var i: int = 0;
    while (i < attempts) { i = i + 1; }
    return i;
}
"""

FILLER_SRC = "proc filler(public x: int): int { return x; }\n"
BOOM_SRC = "proc boom(public x: int): int { return x; }\n"


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


def _address(tmp_path):
    if unix_supported():
        return "unix:%s" % (tmp_path / "aio.sock")
    return "tcp:127.0.0.1:0"  # pragma: no cover - non-POSIX


def _boot(tmp_path, **kwargs):
    kwargs.setdefault("isolation", "thread")
    return AsyncAnalysisDaemon(_address(tmp_path), **kwargs)


class TestVerbs:
    def test_ping_health_ready(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path)
            await daemon.start()
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    assert (await client.ping())["ok"]
                    health = await client.health()
                    assert health["state"] == "running"
                    assert health["pending"] == 0
                    assert len(health["shards"]) == 2
                    assert await client.ready() is True
            finally:
                await daemon.stop()

        asyncio.run(scenario())

    def test_submit_then_cached_resubmission(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path)
            await daemon.start()
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    first = await client.submit(SAFE_SRC, wait=True)
                    assert first["state"] == "done"
                    assert first["result"]["status"] == "safe"
                    second = await client.submit(SAFE_SRC, wait=True)
                    assert second["cached"] == "memory"
                    assert (
                        second["result"]["digest"] == first["result"]["digest"]
                    )
                    stats = await client.stats()
                    assert stats["executed"] == 1
                    assert stats["hits_memory"] == 1
            finally:
                await daemon.stop()

        asyncio.run(scenario())

    def test_status_and_result_verbs(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path)
            await daemon.start()
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    reply = await client.submit(SAFE_SRC, wait=False)
                    job = reply["job"]
                    settled = await client.result(job, wait=True)
                    assert settled["state"] == "done"
                    assert settled["result"]["status"] == "safe"
                    status = await client.status(job)
                    assert status["state"] == "done"
                    overview = await client.status()
                    assert overview["queue_depth"] == 0
            finally:
                await daemon.stop()

        asyncio.run(scenario())

    def test_bad_program_rejected(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path)
            await daemon.start()
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    response = await client.request(
                        {"op": "submit", "source": "proc oops("}
                    )
                    assert response["ok"] is False
                    assert (await client.stats())["executed"] == 0
            finally:
                await daemon.stop()

        asyncio.run(scenario())

    def test_metrics_exposition(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path)
            await daemon.start()
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    await client.submit(SAFE_SRC, wait=True)
                    text = (await client.metrics())["text"]
                    assert "repro_service_submit_seconds" in text
                    assert "repro_service_shards" in text
                    snapshot = (await client.metrics(format="json"))["metrics"]
                    assert "repro_service_queue_depth" in snapshot
            finally:
                await daemon.stop()

        asyncio.run(scenario())


class TestPipelining:
    def test_concurrent_submissions_share_one_socket(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path)
            await daemon.start()
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    replies = await asyncio.gather(
                        client.submit(SAFE_SRC, wait=True),
                        client.submit(FILLER_SRC, wait=True),
                        client.submit(BOOM_SRC, wait=True),
                        client.ping(),
                    )
                    assert replies[0]["result"]["status"] == "safe"
                    assert replies[1]["state"] == "done"
                    assert replies[2]["state"] == "done"
                    assert replies[3]["ok"]
            finally:
                await daemon.stop()

        asyncio.run(scenario())

    def test_identical_concurrent_submissions_coalesce(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path)
            await daemon.start()
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    replies = await asyncio.gather(
                        *(client.submit(SAFE_SRC, wait=True) for _ in range(8))
                    )
                    digests = {r["result"]["digest"] for r in replies}
                    assert len(digests) == 1
                    stats = await client.stats()
                    # One execution; the rest were coalesced waiters or
                    # memory hits depending on arrival order.
                    assert stats["executed"] == 1
                    assert stats["coalesced"] + stats["hits_memory"] == 7
            finally:
                await daemon.stop()

        asyncio.run(scenario())


class TestAdmission:
    def test_rate_limited_submission_is_shed(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path, rate=0.01, burst=1)
            await daemon.start()
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    first = await client.submit(SAFE_SRC, wait=True)
                    assert first["state"] == "done"
                    shed = await client.request(
                        {"op": "submit", "source": SAFE_SRC}
                    )
                    assert shed["ok"] is False
                    assert shed["overloaded"] is True
                    assert shed["retry_after"] > 0
            finally:
                await daemon.stop()

        asyncio.run(scenario())

    def test_queue_depth_gate_sheds(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path, max_pending=2)
            await daemon.start()
            try:
                # Fill the pending index with synthetic unsettled jobs:
                # the gate reads depth, not job contents.
                for n in range(2):
                    daemon._active["f" * 63 + str(n)] = AsyncJob(
                        id="fake-%d" % n, key="k%d" % n, payload={}
                    )
                async with AsyncServiceClient(daemon.address) as client:
                    shed = await client.request(
                        {"op": "submit", "source": SAFE_SRC}
                    )
                    assert shed["ok"] is False
                    assert shed["overloaded"] is True
                    assert shed["pending"] == 2
                daemon._active.clear()
                assert daemon.admission.shed == 1
            finally:
                await daemon.stop()

        asyncio.run(scenario())

    def test_shard_backlog_backpressure(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path)
            await daemon.start()
            daemon.shard_inflight = 0  # any new job exceeds the bound
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    shed = await client.request(
                        {"op": "submit", "source": SAFE_SRC}
                    )
                    assert shed["ok"] is False
                    assert shed["error"] == "shard backlog"
            finally:
                await daemon.stop()

        asyncio.run(scenario())


class TestQuarantine:
    def test_job_failure_does_not_blame_the_shard(self, tmp_path):
        async def scenario():
            faults.install(
                FaultPlan([parse_spec("worker.run:error:match=boom")])
            )
            daemon = _boot(tmp_path)
            await daemon.start()
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    doomed = await client.submit(BOOM_SRC, wait=True)
                    assert doomed["state"] == "failed"
                    assert "InjectedFault" in doomed["error"]
                    # An injected job fault is a fact about the job:
                    # every shard breaker stays closed.
                    for shard in daemon.shards.shards:
                        assert shard.breaker.state == "closed"
                    fine = await client.submit(SAFE_SRC, wait=True)
                    assert fine["state"] == "done"
            finally:
                await daemon.stop()

        asyncio.run(scenario())

    def test_crash_quarantines_rebuilds_and_recovers(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path, shards=1)
            await daemon.start()
            shard = daemon.shards.shards[0]
            real_submit = shard.submit

            def sabotaged(payload):
                raise RuntimeError("worker pool gone")

            shard.submit = sabotaged
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    doomed = await client.submit(SAFE_SRC, wait=True)
                    assert doomed["state"] == "failed"
                    assert "WorkerCrashed" in doomed["error"]
                    # Each rerouted attempt blamed the only shard, so the
                    # breaker tripped and a background rebuild ran.
                    assert shard.breaker.trips >= 1
                    shard.submit = real_submit
                    # Wait out the background rebuild; it ends with a
                    # force_probe so the next submission is the trial.
                    for _ in range(200):
                        if not daemon._rebuilding:
                            break
                        await asyncio.sleep(0.05)
                    assert not daemon._rebuilding
                    recovered = await client.submit(FILLER_SRC, wait=True)
                    assert recovered["state"] == "done"
                    assert shard.breaker.state == "closed"
                    assert (await client.stats())["retried"] >= 1
            finally:
                shard.submit = real_submit
                await daemon.stop()

        asyncio.run(scenario())

    def test_all_shards_quarantined_sheds(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path)
            await daemon.start()
            try:
                for shard in daemon.shards.shards:
                    for _ in range(shard.breaker.failure_threshold):
                        shard.breaker.record_failure()
                async with AsyncServiceClient(daemon.address) as client:
                    shed = await client.request(
                        {"op": "submit", "source": SAFE_SRC}
                    )
                    assert shed["ok"] is False
                    assert shed["error"] == "all shards quarantined"
                    stats = await client.stats()
                    assert stats["quarantined"] == 2
                    # Operator clears the breakers: traffic flows again.
                    for shard in daemon.shards.shards:
                        shard.breaker.reset()
                    fine = await client.submit(SAFE_SRC, wait=True)
                    assert fine["state"] == "done"
            finally:
                await daemon.stop()

        asyncio.run(scenario())


class TestDrainAndRestart:
    def test_drain_rejects_new_work_but_stays_readable(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path)
            await daemon.start()
            try:
                async with AsyncServiceClient(daemon.address) as client:
                    done = await client.submit(SAFE_SRC, wait=True)
                    drained = await client.drain()
                    assert drained["draining"] is True
                    assert await client.ready() is False
                    assert (await client.health())["state"] == "draining"
                    shed = await client.request(
                        {"op": "submit", "source": FILLER_SRC}
                    )
                    assert shed["ok"] is False
                    assert shed["draining"] is True
                    # Reads keep working on the live connection.
                    settled = await client.result(done["job"])
                    assert settled["state"] == "done"
            finally:
                await daemon.stop()

        asyncio.run(scenario())

    def test_stop_settles_inflight_work(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path, cache_dir=str(tmp_path / "cache"))
            await daemon.start()
            async with AsyncServiceClient(daemon.address) as client:
                reply = await client.submit(SAFE_SRC, wait=False)
                job_id = reply["job"]
            await daemon.stop()
            job = daemon._jobs[job_id]
            assert job.settled
            assert job.state == "done"
            # The verdict is durable: the store was flushed on the way out.
            cached, tier = daemon.store.get(job.key)
            assert cached is not None

        asyncio.run(scenario())

    def test_restart_on_same_address_serves_from_disk(self, tmp_path):
        async def scenario():
            cache = str(tmp_path / "cache")
            first = _boot(tmp_path, cache_dir=cache)
            await first.start()
            async with AsyncServiceClient(first.address) as client:
                before = await client.submit(SAFE_SRC, wait=True)
                assert before["state"] == "done"
            await first.stop()
            # Same socket path, same cache dir: the socket was unlinked
            # on stop, and the verdict must come back from the disk tier.
            second = _boot(tmp_path, cache_dir=cache)
            await second.start()
            try:
                async with AsyncServiceClient(second.address) as client:
                    after = await client.submit(SAFE_SRC, wait=True)
                    assert after["cached"] == "disk"
                    assert (
                        after["result"]["digest"]
                        == before["result"]["digest"]
                    )
                    assert (await client.stats())["executed"] == 0
            finally:
                await second.stop()

        asyncio.run(scenario())

    def test_client_fails_loudly_after_final_shutdown(self, tmp_path):
        async def scenario():
            daemon = _boot(tmp_path)
            await daemon.start()
            address = daemon.address
            await daemon.stop()
            client = AsyncServiceClient(address, retries=0)
            with pytest.raises(ServiceError):
                await client.ping()
            await client.close()

        asyncio.run(scenario())
