"""Bounded state under concurrency: queue eviction, LRU races, restarts.

The resident daemon's promise is that its footprint tracks *concurrent*
load, not lifetime traffic — settled job records and memory-tier
verdicts are both bounded.  These tests hammer those bounds from many
threads and prove a drained restart still answers from the disk tier.
"""

import threading

import pytest

from repro.service.jobs import SETTLED_RETENTION, JobQueue
from repro.service.store import MEMORY_TIER_LIMIT, ResultStore

pytestmark = pytest.mark.service


def _payload(n):
    return {"source": "src-%d" % n, "proc": "p"}


class TestSettledEviction:
    def test_settled_jobs_evict_oldest_first(self):
        queue = JobQueue(max_settled=5)
        finished = []
        for n in range(12):
            job, coalesced = queue.submit(_payload(n), key="k%d" % n)
            assert not coalesced
            assert queue.pop(timeout=1) is job
            queue.finish(job, result={"n": n})
            finished.append(job.id)
        # Only the five youngest settled records survive.
        for old_id in finished[:-5]:
            assert queue.get(old_id) is None
        for young_id in finished[-5:]:
            assert queue.get(young_id) is not None
        assert len(queue.jobs()) == 5

    def test_active_jobs_are_never_evicted(self):
        queue = JobQueue(max_settled=2)
        survivor, _ = queue.submit(_payload(999), key="survivor")
        for n in range(10):
            job, _ = queue.submit(_payload(n), key="k%d" % n)
        # Settle everything except the survivor (priority order is
        # irrelevant here; pop until the heap only holds the survivor).
        settled = 0
        while settled < 10:
            job = queue.pop(timeout=1)
            if job is survivor:
                # Put it conceptually back: just finish the others.
                continue
            queue.finish(job, result={})
            settled += 1
        assert queue.get(survivor.id) is survivor
        assert queue.pending() == 1

    def test_eviction_drops_only_the_queue_reference(self):
        queue = JobQueue(max_settled=1)
        first, _ = queue.submit(_payload(1), key="k1")
        queue.pop(timeout=1)
        queue.finish(first, result={"keep": True})
        second, _ = queue.submit(_payload(2), key="k2")
        queue.pop(timeout=1)
        queue.finish(second, result={})
        # ``first`` was evicted from the index, but a handler holding the
        # object still reads its settled state.
        assert queue.get(first.id) is None
        assert first.settled
        assert first.result == {"keep": True}
        assert first.done.is_set()

    def test_default_retention_matches_module_constant(self):
        assert JobQueue()._max_settled == SETTLED_RETENTION

    def test_resubmission_after_eviction_is_a_fresh_job(self):
        queue = JobQueue(max_settled=1)
        first, _ = queue.submit(_payload(1), key="same")
        queue.pop(timeout=1)
        queue.finish(first, result={})
        again, coalesced = queue.submit(_payload(1), key="same")
        assert not coalesced  # settled jobs never absorb submissions
        assert again.id != first.id


class TestStoreLRURaces:
    def test_memory_tier_stays_bounded_under_concurrent_churn(self, tmp_path):
        store = ResultStore(str(tmp_path / "verdicts.jsonl"), max_memory=8)
        errors = []
        barrier = threading.Barrier(6)

        def churn(worker):
            try:
                barrier.wait(timeout=5)
                for n in range(120):
                    key = "w%d-k%d" % (worker, n % 20)
                    store.put(key, {"worker": worker, "n": n % 20})
                    result, tier = store.get(key)
                    assert result is not None
                    assert tier in ("memory", "disk")
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(w,)) for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = store.stats()
        assert stats["memory_entries"] <= 8
        # Nothing was lost: every key evicted from memory re-reads from
        # disk and promotes back into the LRU.
        for worker in range(6):
            for n in range(20):
                result, tier = store.get("w%d-k%d" % (worker, n))
                assert result == {"worker": worker, "n": n}

    def test_eviction_prefers_least_recently_used(self, tmp_path):
        store = ResultStore(str(tmp_path / "verdicts.jsonl"), max_memory=2)
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        store.get("a")  # refresh a: b is now the LRU entry
        store.put("c", {"v": 3})  # evicts b from memory
        assert store.get("a")[1] == "memory"
        assert store.get("c")[1] == "memory"
        assert store.get("b")[1] == "disk"  # survived on disk, promoted

    def test_default_capacity_matches_module_constant(self):
        assert ResultStore()._max_memory == MEMORY_TIER_LIMIT


class TestRestartMidCampaign:
    def test_fresh_store_on_same_path_serves_prior_verdicts(self, tmp_path):
        path = str(tmp_path / "verdicts.jsonl")
        first = ResultStore(path)
        for n in range(25):
            first.put("key-%d" % n, {"digest": "d%d" % n})
        receipt = first.flush()
        assert receipt["disk_entries"] == 25
        # The restarted daemon builds a cold store over the same file:
        # every verdict answers from disk and promotes into memory.
        second = ResultStore(path)
        assert second.stats()["memory_entries"] == 0
        for n in range(25):
            result, tier = second.get("key-%d" % n)
            assert result == {"digest": "d%d" % n}
            assert tier == "disk"
        result, tier = second.get("key-7")
        assert tier == "memory"

    def test_degraded_results_never_persist_across_restart(self, tmp_path):
        path = str(tmp_path / "verdicts.jsonl")
        first = ResultStore(path)
        assert first.put("tired", {"status": "unknown", "degraded": True}) is False
        assert first.put("fresh", {"status": "safe"}) is True
        second = ResultStore(path)
        assert second.get("tired") == (None, None)
        assert second.get("fresh")[0] == {"status": "safe"}

    def test_concurrent_writers_one_reader_across_restart(self, tmp_path):
        # Two stores share the file (the daemon and a worker process in
        # miniature); a third, booted later, folds both in via refresh.
        path = str(tmp_path / "verdicts.jsonl")
        writer_a = ResultStore(path)
        writer_b = ResultStore(path)
        done = threading.Barrier(2)

        def write(store, prefix):
            for n in range(30):
                store.put("%s-%d" % (prefix, n), {"from": prefix})
            done.wait(timeout=5)

        threads = [
            threading.Thread(target=write, args=(writer_a, "a")),
            threading.Thread(target=write, args=(writer_b, "b")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        restarted = ResultStore(path)
        stats = restarted.flush()
        assert stats["disk_entries"] == 60
        assert restarted.get("a-29")[0] == {"from": "a"}
        assert restarted.get("b-0")[0] == {"from": "b"}
