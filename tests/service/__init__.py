"""Tests for the analysis service (daemon, queue, protocol, client)."""
